//! Deterministic corpus driver: runs every fuzz check over its
//! encoder-produced seeds plus seeded mutants, under plain `cargo test`.
//!
//! `REEF_TEST_SEED=<n>` varies the mutation stream (and is printed on
//! failure so any crash is replayable); the default stream is fixed, so
//! CI runs are reproducible byte for byte.

use reef_fuzz::{corpus, mutate};
use reef_sim::SimRng;

const MUTANTS_PER_SEED: usize = 48;

fn env_seed() -> u64 {
    match std::env::var("REEF_TEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("REEF_TEST_SEED must be a u64, got {s:?}")),
        Err(_) => 0,
    }
}

fn hex_preview(data: &[u8]) -> String {
    let shown: String = data.iter().take(96).map(|b| format!("{b:02x}")).collect();
    if data.len() > 96 {
        format!("{shown}… ({} bytes)", data.len())
    } else {
        format!("{shown} ({} bytes)", data.len())
    }
}

/// Run `check` over each seed and `MUTANTS_PER_SEED` mutants of it; on
/// panic, re-panic with the target label, the seed/mutant coordinates,
/// the `REEF_TEST_SEED` that reproduces the stream, and the input hex.
fn drive(label: &str, seeds: &[Vec<u8>], check: fn(&[u8])) {
    let env = env_seed();
    let mut rng = SimRng::new(0x5EED_F00D_u64 ^ env.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    assert!(!seeds.is_empty(), "{label}: empty seed corpus");
    for (i, seed) in seeds.iter().enumerate() {
        run_one(label, &format!("seed[{i}]"), env, seed, check);
        for m in 0..MUTANTS_PER_SEED {
            let mutant = mutate::mutate(seed, &mut rng);
            run_one(
                label,
                &format!("seed[{i}] mutant[{m}]"),
                env,
                &mutant,
                check,
            );
        }
    }
}

fn run_one(label: &str, id: &str, env: u64, data: &[u8], check: fn(&[u8])) {
    if let Err(panic) = std::panic::catch_unwind(|| check(data)) {
        eprintln!(
            "fuzz corpus failure: target={label} {id} REEF_TEST_SEED={env}\n  input: {}",
            hex_preview(data)
        );
        std::panic::resume_unwind(panic);
    }
}

/// Degenerate inputs every target must shrug off.
fn edge_inputs() -> Vec<Vec<u8>> {
    vec![
        vec![],
        vec![0x00],
        vec![0xFF],
        vec![0x00; 64],
        vec![0xFF; 64],
        vec![0x80; 16], // endless varint continuations
    ]
}

#[test]
fn frame_decoder_corpus() {
    let mut seeds = corpus::frame_streams();
    seeds.extend(edge_inputs());
    drive("frame_decoder", &seeds, reef_fuzz::check_frame_decoder);
}

#[test]
fn codec_frames_corpus() {
    let mut seeds = corpus::codec_payloads();
    seeds.extend(edge_inputs());
    drive("codec_frames", &seeds, reef_fuzz::check_codec_frames);
}

#[test]
fn click_upload_v2_corpus() {
    let mut seeds = corpus::click_upload_payloads();
    seeds.extend(edge_inputs());
    drive("click_upload_v2", &seeds, reef_fuzz::check_click_upload_v2);
}

#[test]
fn wal_recovery_corpus() {
    let mut seeds = corpus::wal_images();
    seeds.extend(edge_inputs());
    drive("wal_recovery", &seeds, reef_fuzz::check_wal_recovery);
}

/// Regression for the max-frame cap: a header claiming 15 MiB against a
/// 4 KiB cap must be rejected *before* any buffer is reserved for the
/// claim. The tight allocation bound fails if the length prefix ever
/// reaches an allocator.
#[test]
fn max_frame_cap_rejects_before_allocating() {
    use reef_wire::{Frame, FrameDecoder};

    let mut lying = Vec::new();
    lying.extend_from_slice(&(15u32 * 1024 * 1024).to_be_bytes());
    lying.push(0x02); // version byte
    lying.extend_from_slice(&[0xAB; 32]); // a little payload, nowhere near the claim

    reef_fuzz::alloc_track::bounded_by("max_frame_cap(decoder)", 256 * 1024, || {
        let mut dec = FrameDecoder::with_max_frame(4096);
        dec.extend(&lying);
        assert!(
            dec.next_frame().is_err(),
            "15 MiB claim must error under a 4 KiB cap"
        );
    });

    reef_fuzz::alloc_track::bounded_by("max_frame_cap(read_from_capped)", 256 * 1024, || {
        let mut cursor = std::io::Cursor::new(lying.as_slice());
        assert!(
            Frame::read_from_capped(&mut cursor, 4096).is_err(),
            "15 MiB claim must error under a 4 KiB cap"
        );
    });
}
