//! Fuzz the v2 compressed click-upload decoder.

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| { reef_fuzz::check_click_upload_v2(data) });
