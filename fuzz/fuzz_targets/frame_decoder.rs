//! Fuzz the incremental frame decoder against the blocking reader.

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| { reef_fuzz::check_frame_decoder(data) });
