//! Fuzz WAL/snapshot recovery: arbitrary on-disk bytes must recover
//! cleanly and leave the store writable.

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| { reef_fuzz::check_wal_recovery(data) });
