//! Fuzz both codecs' full frame surface (client, server, peer).

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| { reef_fuzz::check_codec_frames(data) });
