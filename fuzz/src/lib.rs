//! Structure-aware fuzzing of every byte-level parser in the workspace.
//!
//! Four surfaces take attacker-controlled bytes: the frame decoder,
//! the two codecs' full message surface, the v2 compressed click-upload
//! path (the §3.1 attention-upload extension), and WAL/snapshot
//! recovery. Each gets a check body here, shared between
//!
//! * `fuzz_targets/*.rs` — libfuzzer-style binaries (via the offline
//!   `vendor/libfuzzer` shim; point the workspace dependency back at
//!   crates.io to run them coverage-guided under `cargo fuzz`), and
//! * `fuzz/tests/corpus.rs` — a deterministic, `cargo test`-runnable
//!   driver that mutates encoder-produced seeds with the same seeded
//!   PRNG the simulation harness uses (`REEF_TEST_SEED` varies the
//!   stream, failures print the reproducing seed).
//!
//! The contract every check enforces: no panic, allocations bounded
//! even when length fields lie (a counting global allocator measures
//! peak usage per input), and `encode(decode(x))` a fixpoint wherever
//! a decode succeeds.

#![warn(missing_docs)]

pub mod alloc_track;
pub mod corpus;
pub mod mutate;
pub mod targets;

pub use targets::{
    check_click_upload_v2, check_codec_frames, check_frame_decoder, check_wal_recovery,
};
