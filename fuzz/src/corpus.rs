//! Seed corpora built from the real encoders.
//!
//! Every seed starts life as valid bytes produced by the workspace's
//! own encoders, covering each enum variant, both codecs, every
//! [`Op`], every [`reef_pubsub::Value`] kind, the click-batch delta
//! flags, and real
//! WAL segment/snapshot images. The mutation engine then perturbs them;
//! mutants of valid inputs probe far deeper than random bytes because
//! they keep most framing intact while breaking one invariant at a
//! time.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use reef_attention::{Click, ClickBatch, DurableClickStore, PersistConfig, UploadReceipt};
use reef_core::AutoSubMode;
use reef_pubsub::{
    BrokerStatsSnapshot, Event, EventId, Filter, GlobalSubId, Op, PeerMsg, PublishedEvent,
    SubscriptionId,
};
use reef_simweb::UserId;
use reef_wire::codec::BinaryCodec;
use reef_wire::{
    AutoSubEntry, AutoSubPolicy, AutoSubReceipt, ClientFrame, CodecKind, Deliver, FeedChange,
    Frame, Request, Response, ServerFrame, WireCodec,
};

/// A fresh scratch directory unique to this process and call.
pub fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reef-fuzz-{label}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sample_events() -> Vec<Event> {
    vec![
        Event::builder().build(),
        Event::builder()
            .attr("topic", "news/reef")
            .attr("price", 12.5)
            .attr("volume", 42i64)
            .attr("halted", false)
            .build(),
        Event::builder()
            .attr("sym", "ACME")
            .attr("delta", -3.25)
            .attr("count", i64::MIN)
            .attr("live", true)
            .build(),
        Event::builder()
            .attr("unicode", "päperclip ☂ 日本語")
            .attr("tiny", f64::MIN_POSITIVE)
            .attr("huge", f64::MAX)
            .build(),
    ]
}

fn sample_filters() -> Vec<Filter> {
    let mut filters = vec![
        Filter::new(),
        Filter::topic("news/reef"),
        Filter::keyword("title", "federation"),
        Filter::new().and_exists("price"),
    ];
    // One predicate per operator, cycling through the value kinds so
    // every (Op, Value) pairing the codec can express shows up.
    let mut all_ops = Filter::new();
    for (i, op) in Op::ALL.into_iter().enumerate() {
        all_ops = match i % 4 {
            0 => all_ops.and(format!("s{i}"), op, "needle"),
            1 => all_ops.and(format!("i{i}"), op, -7i64),
            2 => all_ops.and(format!("f{i}"), op, 2.5f64),
            _ => all_ops.and(format!("b{i}"), op, true),
        };
    }
    filters.push(all_ops);
    filters
}

/// Click batches exercising the v2 delta coder's whole flag surface:
/// referrer present/absent, user differing from the batch user,
/// referrer equal to the previous click's referrer, shared URL
/// prefixes, and non-monotonic tick deltas (zigzag-negative).
pub fn sample_click_batches() -> Vec<ClickBatch> {
    let click = |user: u32, day: u32, tick: u64, url: &str, referrer: Option<&str>| Click {
        user: UserId(user),
        day,
        tick,
        url: url.to_string(),
        referrer: referrer.map(str::to_string),
    };
    vec![
        ClickBatch {
            user: UserId(1),
            clicks: vec![],
        },
        ClickBatch {
            user: UserId(1),
            clicks: vec![click(1, 0, 10, "https://reef.example/a", None)],
        },
        ClickBatch {
            user: UserId(2),
            clicks: vec![
                click(2, 3, 100, "https://reef.example/feed/alpha", None),
                // Shared prefix with the previous URL, referrer appears.
                click(
                    2,
                    3,
                    90, // tick goes backwards: negative zigzag delta
                    "https://reef.example/feed/beta",
                    Some("https://reef.example/feed/alpha"),
                ),
                // Referrer identical to the previous click's referrer.
                click(
                    7, // user differs from the batch user
                    4,
                    90,
                    "https://reef.example/feed/beta/2",
                    Some("https://reef.example/feed/alpha"),
                ),
                click(2, u32::MAX, u64::MAX, "short", Some("")),
            ],
        },
    ]
}

fn sample_client_frames() -> Vec<ClientFrame> {
    let mut frames = vec![
        ClientFrame {
            corr: 0,
            request: Request::Hello {
                version: 2,
                client: "fuzz-corpus".into(),
            },
        },
        ClientFrame {
            corr: u64::MAX,
            request: Request::Unsubscribe {
                subscription: SubscriptionId(7),
            },
        },
        ClientFrame {
            corr: 3,
            request: Request::AutoSubscribe {
                user: UserId(9),
                policy: None,
            },
        },
        ClientFrame {
            corr: 4,
            request: Request::AutoSubscribe {
                user: UserId(9),
                policy: Some(AutoSubPolicy {
                    recommender: AutoSubMode::Content,
                    max_filters: 5,
                    half_life_secs: 60.0,
                    min_score: 0.25,
                }),
            },
        },
        ClientFrame {
            corr: 5,
            request: Request::AutoUnsubscribe { user: UserId(9) },
        },
        ClientFrame {
            corr: 6,
            request: Request::Stats,
        },
        ClientFrame {
            corr: 7,
            request: Request::Ping,
        },
        ClientFrame {
            corr: 8,
            request: Request::Bye,
        },
        ClientFrame {
            corr: 9,
            request: Request::PeerHello {
                version: 2,
                broker: "reefd-peer".into(),
                broker_id: 42,
            },
        },
    ];
    for filter in sample_filters() {
        frames.push(ClientFrame {
            corr: 10,
            request: Request::Subscribe { filter },
        });
    }
    for event in sample_events() {
        frames.push(ClientFrame {
            corr: 11,
            request: Request::Publish { event },
        });
    }
    for batch in sample_click_batches() {
        frames.push(ClientFrame {
            corr: 12,
            request: Request::UploadClicks { batch },
        });
    }
    frames
}

fn sample_server_frames() -> Vec<ServerFrame> {
    let receipt = AutoSubReceipt {
        user: UserId(9),
        entries: vec![AutoSubEntry {
            filter: Filter::topic("news/reef"),
            reason: "topic affinity".into(),
            score: 0.75,
        }],
    };
    let mut frames = vec![
        ServerFrame::Reply {
            corr: 1,
            response: Response::Hello {
                version: 2,
                server: "reefd".into(),
                subscriber: 4,
            },
        },
        ServerFrame::Reply {
            corr: 2,
            response: Response::Subscribed {
                subscription: SubscriptionId(1),
            },
        },
        ServerFrame::Reply {
            corr: 3,
            response: Response::Unsubscribed {
                filter: Filter::topic("news/reef"),
            },
        },
        ServerFrame::Reply {
            corr: 4,
            response: Response::Published {
                id: EventId(9),
                delivered: 3,
                dropped: 1,
            },
        },
        ServerFrame::Reply {
            corr: 5,
            response: Response::ClicksAccepted {
                receipt: UploadReceipt {
                    user: UserId(1),
                    accepted: 5,
                    rejected: 1,
                    wire_bytes: 120,
                    total_stored: 5,
                },
            },
        },
        ServerFrame::Reply {
            corr: 6,
            response: Response::Stats {
                broker: BrokerStatsSnapshot::default(),
                wire: Default::default(),
                federation: Default::default(),
            },
        },
        ServerFrame::Reply {
            corr: 7,
            response: Response::AutoSubscribed {
                receipt: receipt.clone(),
            },
        },
        ServerFrame::Reply {
            corr: 8,
            response: Response::AutoUnsubscribed {
                receipt: receipt.clone(),
            },
        },
        ServerFrame::Reply {
            corr: 9,
            response: Response::Pong,
        },
        ServerFrame::Reply {
            corr: 10,
            response: Response::Bye,
        },
        ServerFrame::Reply {
            corr: 11,
            response: Response::PeerWelcome {
                version: 2,
                broker: "reefd-b".into(),
                broker_id: 7,
            },
        },
        ServerFrame::Reply {
            corr: 12,
            response: Response::Error {
                message: "no such subscription".into(),
            },
        },
        ServerFrame::FeedChanged(FeedChange {
            user: UserId(9),
            installed: receipt.entries.clone(),
            retired: vec![],
        }),
    ];
    for event in sample_events() {
        frames.push(ServerFrame::Deliver(Deliver {
            event: PublishedEvent {
                id: EventId(77),
                published_at: 123,
                event,
            },
        }));
    }
    frames
}

fn sample_peer_msgs() -> Vec<PeerMsg> {
    let mut msgs = vec![
        PeerMsg::UnsubFwd {
            sub: GlobalSubId(3),
        },
        PeerMsg::Ping { nonce: u64::MAX },
        PeerMsg::Pong { nonce: 0 },
    ];
    for (i, filter) in sample_filters().into_iter().enumerate() {
        msgs.push(PeerMsg::SubFwd {
            sub: GlobalSubId(i as u64),
            filter: filter.clone(),
        });
        msgs.push(PeerMsg::SubAdv {
            sub: GlobalSubId(i as u64),
            filter,
            path: vec![1, 2, 3],
        });
    }
    for event in sample_events() {
        msgs.push(PeerMsg::EventFwd {
            event: PublishedEvent {
                id: EventId(5),
                published_at: 9,
                event,
            },
            hops: 2,
        });
    }
    msgs
}

/// Payload seeds for the codec-surface target: every client, server,
/// and peer message encoded by both codecs.
pub fn codec_payloads() -> Vec<Vec<u8>> {
    let mut payloads = Vec::new();
    for kind in [CodecKind::Json, CodecKind::Binary] {
        let codec = kind.codec();
        for cf in sample_client_frames() {
            payloads.push(codec.encode_client(&cf).expect("encode client").payload);
        }
        for sf in sample_server_frames() {
            payloads.push(codec.encode_server(&sf).expect("encode server").payload);
        }
        for pm in sample_peer_msgs() {
            payloads.push(codec.encode_peer(&pm).expect("encode peer").payload);
        }
    }
    payloads
}

/// Payload seeds for the v2 click-upload target: compressed and
/// uncompressed encodings of the sample batches.
pub fn click_upload_payloads() -> Vec<Vec<u8>> {
    let mut payloads = Vec::new();
    for batch in sample_click_batches() {
        let cf = ClientFrame {
            corr: 1,
            request: Request::UploadClicks { batch },
        };
        payloads.push(
            BinaryCodec
                .encode_client(&cf)
                .expect("encode compressed")
                .payload,
        );
        payloads.push(
            BinaryCodec
                .encode_client_uncompressed(&cf)
                .expect("encode uncompressed")
                .payload,
        );
    }
    payloads
}

/// Byte-stream seeds for the frame-decoder target: concatenations of
/// real frames (both versions), a lone header, and a split frame.
pub fn frame_streams() -> Vec<Vec<u8>> {
    let mut frames: Vec<Frame> = Vec::new();
    for payload in codec_payloads().into_iter().take(8) {
        frames.push(Frame {
            version: if frames.len().is_multiple_of(2) { 1 } else { 2 },
            payload,
        });
    }
    let mut streams = Vec::new();
    // Each frame alone.
    for f in &frames {
        let mut buf = Vec::new();
        f.write_to(&mut buf).expect("write frame");
        streams.push(buf);
    }
    // All frames back to back.
    let mut all = Vec::new();
    for f in &frames {
        f.write_to(&mut all).expect("write frame");
    }
    streams.push(all.clone());
    // A torn stream: everything minus the last few bytes.
    all.truncate(all.len().saturating_sub(3));
    streams.push(all);
    // A bare header claiming more payload than follows.
    streams.push(vec![0x00, 0x00, 0x00, 0x10, 0x01]);
    streams
}

/// File-image seeds for the WAL-recovery target: real segment and
/// snapshot bytes written by a live [`DurableClickStore`].
pub fn wal_images() -> Vec<Vec<u8>> {
    let dir = scratch_dir("corpus-wal");
    let mut images = Vec::new();
    {
        let mut cfg = PersistConfig::new(&dir);
        cfg.segment_bytes = 256; // force several segments
        cfg.snapshot_every = 2; // force a snapshot + post-snapshot segment
        let mut store = DurableClickStore::open(cfg).expect("open corpus store");
        for batch in sample_click_batches() {
            if batch.clicks.is_empty() {
                continue;
            }
            store.ingest_upload(batch).expect("ingest corpus batch");
        }
        store.snapshot_now().expect("corpus snapshot");
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("read corpus dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    paths.sort();
    for path in paths {
        images.push(fs::read(&path).expect("read corpus image"));
    }
    fs::remove_dir_all(&dir).ok();
    assert!(
        images.len() >= 2,
        "corpus store should leave at least one segment and one snapshot"
    );
    images
}
