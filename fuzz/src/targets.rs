//! The check bodies shared by the libfuzzer-style binaries and the
//! `cargo test` corpus drivers.
//!
//! Each takes raw attacker-controlled bytes and asserts the parser
//! contract: no panic, allocations bounded (enforced by
//! [`crate::alloc_track`]), errors instead of garbage, and
//! `encode(decode(x))` a fixpoint wherever a decode succeeds.

use std::fs;

use reef_attention::{Click, ClickBatch, DurableClickStore, PersistConfig};
use reef_simweb::UserId;
use reef_wire::codec::BinaryCodec;
use reef_wire::{CodecKind, Frame, FrameDecoder, Request, WireError};

use crate::alloc_track;
use crate::corpus::scratch_dir;

/// FNV-1a of `data`: the only per-input entropy the checks use, so a
/// given input always exercises the same chunking schedule.
fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn drain(dec: &mut FrameDecoder) -> (Vec<Frame>, Option<WireError>) {
    let mut frames = Vec::new();
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

/// Differential check of the incremental [`FrameDecoder`] against the
/// blocking [`Frame::read_from`] reader, plus a capped decoder that
/// must reject oversized length prefixes before reserving space.
pub fn check_frame_decoder(data: &[u8]) {
    alloc_track::bounded("frame_decoder", || {
        // Reference: the blocking reader over the same byte stream. A
        // clean EOF or the first corrupt byte ends the stream for both
        // readers (the decoder reports trailing partial frames as
        // "waiting for more bytes", which is the same stream prefix).
        let mut reference = Vec::new();
        let mut cursor = std::io::Cursor::new(data);
        while let Ok(Some(f)) = Frame::read_from(&mut cursor) {
            reference.push(f);
        }

        // Whole buffer in one extend.
        let mut dec = FrameDecoder::new();
        dec.extend(data);
        let (whole, _) = drain(&mut dec);
        assert_eq!(
            whole, reference,
            "FrameDecoder(whole) and Frame::read_from disagree"
        );

        // Same bytes dribbled in data-derived chunk sizes: framing must
        // not depend on read boundaries.
        let mut seed = fnv(data);
        let mut dec = FrameDecoder::new();
        let mut chunked = Vec::new();
        let mut rest = data;
        let mut failed = false;
        while !rest.is_empty() && !failed {
            seed = seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(0x9e37_79b9);
            let take = 1 + (seed % 7) as usize;
            let (chunk, tail) = rest.split_at(take.min(rest.len()));
            dec.extend(chunk);
            let (mut frames, err) = drain(&mut dec);
            chunked.append(&mut frames);
            failed = err.is_some();
            rest = tail;
        }
        assert_eq!(
            chunked, reference,
            "FrameDecoder(chunked) and Frame::read_from disagree"
        );
    });

    // Capped decoder: with a 4 KiB ceiling, a header claiming megabytes
    // must error before any buffer is reserved for it. The bound leaves
    // room for the decoder's own buffer of the input, never the claim.
    const CAP: usize = 4096;
    alloc_track::bounded_by(
        "frame_decoder(capped)",
        2 * data.len() + 16 * CAP + 256 * 1024,
        || {
            let mut dec = FrameDecoder::with_max_frame(CAP);
            dec.extend(data);
            let (frames, _) = drain(&mut dec);
            for f in frames {
                assert!(
                    f.payload.len() < CAP,
                    "capped decoder yielded an oversized frame"
                );
            }
            let mut cursor = std::io::Cursor::new(data);
            while let Ok(Some(f)) = Frame::read_from_capped(&mut cursor, CAP) {
                assert!(
                    f.payload.len() < CAP,
                    "read_from_capped yielded an oversized frame"
                );
            }
        },
    );
}

/// Decode `frame` on every surface of `codec`; wherever a decode
/// succeeds, `encode(decode(·))` must be a fixpoint.
///
/// Fixpoint-of-bytes rather than structural equality: v2 floats decode
/// bit-exactly (NaN payloads included, and NaN breaks `==`), and text
/// formatting is only guaranteed stable after one print/parse cycle.
fn check_codec_roundtrips(codec: &dyn reef_wire::WireCodec, frame: &Frame) {
    if let Ok(x1) = codec.decode_client(frame) {
        let e1 = codec.encode_client(&x1).expect("re-encode client");
        let x2 = codec
            .decode_client(&e1)
            .expect("decode of re-encoded client");
        let e2 = codec.encode_client(&x2).expect("re-re-encode client");
        assert_eq!(e1, e2, "client encode/decode is not a fixpoint");
    }
    if let Ok(x1) = codec.decode_server(frame) {
        let e1 = codec.encode_server(&x1).expect("re-encode server");
        let x2 = codec
            .decode_server(&e1)
            .expect("decode of re-encoded server");
        let e2 = codec.encode_server(&x2).expect("re-re-encode server");
        assert_eq!(e1, e2, "server encode/decode is not a fixpoint");
    }
    if let Ok(x1) = codec.decode_peer(frame) {
        let e1 = codec.encode_peer(&x1).expect("re-encode peer");
        let x2 = codec.decode_peer(&e1).expect("decode of re-encoded peer");
        let e2 = codec.encode_peer(&x2).expect("re-re-encode peer");
        assert_eq!(e1, e2, "peer encode/decode is not a fixpoint");
    }
}

/// Throw `data` at both codecs' full frame surface (client, server,
/// peer) under both version headers.
pub fn check_codec_frames(data: &[u8]) {
    alloc_track::bounded("codec_frames", || {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let frame = Frame {
                version: kind.version(),
                payload: data.to_vec(),
            };
            check_codec_roundtrips(kind.codec(), &frame);
        }
    });
}

/// Focus on the v2 compressed click-upload decoder: `data` is used both
/// as a raw client payload and as the body of an `UploadClicks` request
/// (corr 0, tag 4), through the compressed and uncompressed paths.
pub fn check_click_upload_v2(data: &[u8]) {
    alloc_track::bounded("click_upload_v2", || {
        let direct = Frame {
            version: CodecKind::Binary.version(),
            payload: data.to_vec(),
        };
        // Steer the bytes into the batch decoder: corr varint 0, then
        // the UploadClicks tag.
        let mut steered_payload = vec![0x00, 0x04];
        steered_payload.extend_from_slice(data);
        let steered = Frame {
            version: CodecKind::Binary.version(),
            payload: steered_payload,
        };
        for frame in [&direct, &steered] {
            check_codec_roundtrips(&BinaryCodec, frame);
            if let Ok(x1) = BinaryCodec.decode_client_uncompressed(frame) {
                if matches!(x1.request, Request::UploadClicks { .. }) {
                    let e1 = BinaryCodec
                        .encode_client_uncompressed(&x1)
                        .expect("re-encode uncompressed");
                    let x2 = BinaryCodec
                        .decode_client_uncompressed(&e1)
                        .expect("decode of re-encoded uncompressed");
                    let e2 = BinaryCodec
                        .encode_client_uncompressed(&x2)
                        .expect("re-re-encode uncompressed");
                    assert_eq!(e1, e2, "uncompressed upload is not a fixpoint");
                }
            }
        }
    });
}

/// Recovery must accept arbitrary on-disk bytes — never error, never
/// panic — and, crucially, the store must remain *writable*: a batch
/// acknowledged after recovery must survive the next reopen whatever
/// state the old files were in. (The deterministic-simulation harness
/// found exactly this failing for zero-length segments, seed 15.)
pub fn check_wal_recovery(data: &[u8]) {
    alloc_track::bounded("wal_recovery", || {
        let marker = UserId(0xDEAD_BEEF);
        let batch = ClickBatch {
            user: marker,
            clicks: vec![
                Click {
                    user: marker,
                    day: 1,
                    tick: 10,
                    url: "https://reef.example/fuzz-marker".into(),
                    referrer: None,
                },
                Click {
                    user: marker,
                    day: 1,
                    tick: 11,
                    url: "https://reef.example/fuzz-marker/2".into(),
                    referrer: Some("https://reef.example/fuzz-marker".into()),
                },
            ],
        };

        // Variant 1: the bytes are a WAL segment.
        let dir = scratch_dir("wal");
        fs::write(dir.join("wal-0000000000000001.log"), data).expect("write fuzzed segment");
        {
            let mut store =
                DurableClickStore::open(PersistConfig::new(&dir)).expect("recovery must not error");
            store
                .ingest_upload(batch.clone())
                .expect("post-recovery ingest");
        }
        {
            let store = DurableClickStore::open(PersistConfig::new(&dir))
                .expect("second recovery must not error");
            let clicks = store.store().clicks_of(marker);
            assert!(
                clicks.len() >= 2 && clicks[clicks.len() - 2..] == batch.clicks[..],
                "acknowledged batch lost across reopen (segment variant)"
            );
        }
        fs::remove_dir_all(&dir).ok();

        // Variant 2: the bytes are a snapshot (plus recovery must cope
        // with the snapshot and a live segment disagreeing).
        let dir = scratch_dir("snap");
        fs::write(dir.join("snapshot-0000000000000001.snap"), data).expect("write fuzzed snapshot");
        {
            let mut store = DurableClickStore::open(PersistConfig::new(&dir))
                .expect("snapshot recovery must not error");
            store
                .ingest_upload(batch.clone())
                .expect("post-snapshot ingest");
        }
        {
            let store = DurableClickStore::open(PersistConfig::new(&dir))
                .expect("second snapshot recovery must not error");
            let clicks = store.store().clicks_of(marker);
            assert!(
                clicks.len() >= 2 && clicks[clicks.len() - 2..] == batch.clicks[..],
                "acknowledged batch lost across reopen (snapshot variant)"
            );
        }
        fs::remove_dir_all(&dir).ok();
    });
}
