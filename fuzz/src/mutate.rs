//! Structure-aware mutations over encoder-produced seeds.
//!
//! With no coverage feedback available offline, the mutations encode
//! what we know about the formats instead: every byte-level parser in
//! the workspace reads length prefixes (frame headers, LEB128 varints,
//! WAL record headers), so the operators are biased toward the
//! mistakes those make possible — torn tails, inflated length fields,
//! runaway varint continuations, spliced 32-bit length bombs.

use reef_sim::SimRng;

/// Produce one mutant of `input` using `rng`'s stream.
pub fn mutate(input: &[u8], rng: &mut SimRng) -> Vec<u8> {
    let mut out = input.to_vec();
    if out.is_empty() {
        return vec![rng.next_u64() as u8];
    }
    match rng.below(7) {
        // Torn tail: the truncation every crash and half-flushed socket
        // produces.
        0 => {
            let keep = rng.below(out.len());
            out.truncate(keep);
        }
        // A few random bit flips (corrupt CRCs, tags, bools, UTF-8).
        1 => {
            for _ in 0..=rng.below(4) {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
        }
        // 0xFF run: maximizes any length field or varint it lands on.
        2 => {
            let i = rng.below(out.len());
            let n = 1 + rng.below(8.min(out.len() - i));
            for b in &mut out[i..i + n] {
                *b = 0xFF;
            }
        }
        // Insert a lone varint continuation byte: shifts every later
        // field and can stretch a varint past its 10-byte limit.
        3 => {
            let i = rng.below(out.len() + 1);
            out.insert(i, 0x80);
        }
        // Duplicate a slice elsewhere (repeated records, doubled tags).
        4 => {
            let i = rng.below(out.len());
            let n = 1 + rng.below((out.len() - i).min(16));
            let slice = out[i..i + n].to_vec();
            let j = rng.below(out.len() + 1);
            for (k, b) in slice.into_iter().enumerate() {
                out.insert(j + k, b);
            }
        }
        // Length bomb: overwrite four bytes with a huge value, hitting
        // u32 frame/record headers in either endianness often enough.
        5 => {
            let i = rng.below(out.len());
            let bomb: u32 = if rng.chance(0.5) {
                0x7FFF_FFF0
            } else {
                0xFFFF_FFF0
            };
            for (k, b) in bomb.to_be_bytes().into_iter().enumerate() {
                if i + k < out.len() {
                    out[i + k] = b;
                }
            }
        }
        // Single random byte.
        _ => {
            let i = rng.below(out.len());
            out[i] = rng.next_u64() as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let input = b"hello byte-level world".to_vec();
        let a: Vec<Vec<u8>> = {
            let mut rng = SimRng::new(9);
            (0..32).map(|_| mutate(&input, &mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = SimRng::new(9);
            (0..32).map(|_| mutate(&input, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_grows() {
        let mut rng = SimRng::new(1);
        assert!(!mutate(&[], &mut rng).is_empty());
    }
}
