//! A counting global allocator: every fuzz run asserts its allocations
//! stay bounded, so a hostile length prefix that *would* reserve
//! gigabytes fails the run even when the decode "merely" errors slowly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Bytes one fuzz input may allocate above its starting baseline. The
/// parsers' own ceilings (16 MiB frames, 32 MiB decoded click strings,
/// 64 MiB WAL records) all sit far below this; anything above it means
/// a length field reached an allocator unchecked.
pub const ALLOC_BOUND: usize = 256 * 1024 * 1024;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Pass-through [`System`] allocator that tracks live and peak bytes.
pub struct TrackingAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

// SAFETY: defers every allocation to `System` unchanged; only counters
// are updated around the calls.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new = unsafe { System.realloc(ptr, layout, new_size) };
        if !new.is_null() {
            LIVE.fetch_sub(layout.size(), Relaxed);
            on_alloc(new_size);
        }
        new
    }
}

#[global_allocator]
static TRACKER: TrackingAlloc = TrackingAlloc;

/// Bytes currently allocated process-wide.
pub fn live() -> usize {
    LIVE.load(Relaxed)
}

/// Run `f` and panic if it allocates more than [`ALLOC_BOUND`] bytes
/// above the current baseline.
pub fn bounded<R>(label: &str, f: impl FnOnce() -> R) -> R {
    bounded_by(label, ALLOC_BOUND, f)
}

/// Run `f` and panic if it allocates more than `bound` bytes above the
/// current baseline. Peak is measured, not final: a huge buffer that is
/// allocated and immediately dropped still counts.
pub fn bounded_by<R>(label: &str, bound: usize, f: impl FnOnce() -> R) -> R {
    let base = live();
    PEAK.store(base, Relaxed);
    let out = f();
    let grew = PEAK.load(Relaxed).saturating_sub(base);
    assert!(
        grew <= bound,
        "{label}: peak allocation {grew} bytes above baseline, bound {bound}"
    );
    out
}
