//! # reef — automatic subscriptions in publish-subscribe systems
//!
//! A from-scratch Rust reproduction of Brenna, Gurrin, Johansen &
//! Zagorodnov, *Automatic Subscriptions In Publish-Subscribe Systems*,
//! ICDCS Workshops 2006 — the **Reef** architecture, which watches a
//! user's attention (browsing history) and automatically creates, refines
//! and removes subscriptions in a publish-subscribe system.
//!
//! This crate is a façade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`pubsub`] | `reef-pubsub` | events, filters, matchers, broker, overlay, simulated network |
//! | [`simweb`] | `reef-simweb` | topic model, synthetic Web, browsing workload |
//! | [`textindex`] | `reef-textindex` | tokenizer, Porter stemmer, BM25, Offer Weight, metrics |
//! | [`feeds`] | `reef-feeds` | XML parser, RSS/Atom/RDF, WAIF FeedEvents proxy |
//! | [`attention`] | `reef-attention` | clicks, recorders, click store, attention parser |
//! | [`core`] | `reef-core` | crawler, recommenders, frontend, centralized & distributed Reef |
//! | [`videonews`] | `reef-videonews` | synthetic TRECVid archive, §3.3 ranking experiment |
//!
//! # Quickstart
//!
//! ```
//! use reef::core::{CentralizedReef, ReefConfig};
//! use reef::simweb::browse::generate_history;
//! use reef::simweb::{BrowseConfig, WebConfig, WebUniverse};
//!
//! // A small synthetic Web and two users browsing it for three days.
//! let universe = WebUniverse::generate(WebConfig::default(), 7);
//! let mut browse = BrowseConfig::default();
//! browse.users = 2;
//! browse.days = 3;
//! browse.mean_page_views_per_day = 25.0;
//! let history = generate_history(&universe, &browse, 7);
//!
//! // The centralized Reef loop: record → upload → crawl → recommend →
//! // subscribe → poll feeds → deliver → react.
//! let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 7);
//! for day in 0..history.days {
//!     let report = reef.run_day(&universe, &history, day);
//!     println!("day {day}: {} events delivered", report.events_delivered);
//! }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every result of the paper.

#![warn(missing_docs)]

pub use reef_attention as attention;
pub use reef_core as core;
pub use reef_feeds as feeds;
pub use reef_pubsub as pubsub;
pub use reef_simweb as simweb;
pub use reef_textindex as textindex;
pub use reef_videonews as videonews;
pub use reef_wire as wire;
