//! Broker federation over real sockets: the §5.3 wide-area substrate as
//! deployable daemons.
//!
//! Three in-process `BrokerServer`s stand in for three `reefd` instances
//! on three machines, chained exactly like
//!
//! ```text
//! reefd --name tokyo  --listen A
//! reefd --name berlin --listen B --peer A
//! reefd --name boston --listen C --peer B
//! ```
//!
//! A subscriber in Tokyo places one wide filter and several narrow ones;
//! covering-based pruning means only the wide one is advertised along the
//! chain, and a publish in Boston still reaches every matching
//! subscription two broker hops away.
//!
//! Run with: `cargo run --example federation`

use reef::pubsub::{Event, Filter, Op};
use reef::wire::{BrokerServer, Client};
use std::time::{Duration, Instant};

fn main() {
    let tokyo = BrokerServer::builder()
        .name("tokyo")
        .bind("127.0.0.1:0")
        .expect("bind tokyo");
    let berlin = BrokerServer::builder()
        .name("berlin")
        .peer(tokyo.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind berlin");
    let boston = BrokerServer::builder()
        .name("boston")
        .peer(berlin.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind boston");
    println!("three brokers federated:");
    for server in [&tokyo, &berlin, &boston] {
        let stats = server.federation_stats();
        println!(
            "  {} (broker id {:#010x}), {} peer link(s)",
            server.local_addr(),
            stats.broker_id,
            stats.peers
        );
    }

    // A subscriber in Tokyo: one wide filter and three narrow ones the
    // wide one covers.
    let subscriber = Client::connect_as(tokyo.local_addr(), "tokyo-sub").expect("connect");
    subscriber
        .subscribe(Filter::new().and("price", Op::Gt, 10.0))
        .expect("wide subscription");
    for threshold in [50.0, 100.0, 500.0] {
        subscriber
            .subscribe(Filter::new().and("price", Op::Gt, threshold))
            .expect("narrow subscription");
    }

    // Wait for the advertisement to reach the far end of the chain.
    let deadline = Instant::now() + Duration::from_secs(5);
    while boston.federation_stats().routing_entries == 0 {
        assert!(Instant::now() < deadline, "advertisement never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("\ncovering pruning along the chain (4 local subscriptions):");
    for (name, server) in [("tokyo", &tokyo), ("berlin", &berlin), ("boston", &boston)] {
        let stats = server.federation_stats();
        println!(
            "  {name}: {} routing entries, {} advertisements held",
            stats.routing_entries, stats.advertisements
        );
    }

    // Publish in Boston; the event crosses two peer links back to Tokyo.
    let publisher = Client::connect_as(boston.local_addr(), "boston-pub").expect("connect");
    publisher
        .publish(
            Event::builder()
                .attr("sym", "REEF")
                .attr("price", 640.25)
                .build(),
        )
        .expect("publish");
    let mut copies = 0;
    while let Some(event) = subscriber.recv_delivery(Duration::from_secs(2)) {
        copies += 1;
        println!(
            "\ntokyo subscriber received copy {copies}: sym={} price={}",
            event.event.get("sym").unwrap(),
            event.event.get("price").unwrap()
        );
        if copies == 4 {
            break;
        }
    }
    assert_eq!(copies, 4, "one copy per matching subscription");

    let berlin_stats = berlin.federation_stats();
    println!(
        "\nberlin relayed {} event(s), forwarded {} subscription advertisement(s)",
        berlin_stats.events_received, berlin_stats.subs_forwarded
    );

    drop(subscriber);
    drop(publisher);
    boston.shutdown();
    berlin.shutdown();
    tokyo.shutdown();
    println!("all brokers shut down cleanly");
}
