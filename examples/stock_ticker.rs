//! The §2.2 example: "in a publish-subscribe system that delivers stock
//! quotes, the attention parser would be looking for known stock symbols
//! in the attention data."
//!
//! Demonstrates that Reef's attention parser is generic over any
//! well-defined publish-subscribe interface: given the stock-quote
//! schema, it extracts symbol tokens from browsing text, places
//! subscriptions, and the broker delivers matching quotes — while
//! rejecting events and filters that violate the schema.
//!
//! Run with: `cargo run --example stock_ticker`

use reef::attention::AttentionParser;
use reef::pubsub::{stock_quote_schema, Broker, Event, Filter, Op};
use std::collections::BTreeSet;

fn main() {
    let schema = stock_quote_schema(["ACME", "GLOBEX", "HOOLI"]);
    let parser = AttentionParser::new(schema.clone());

    // What the user read this morning.
    let pages = [
        "Acme Corp beats expectations as acme shares surge on earnings",
        "Analysts downgrade GLOBEX after supply chain troubles",
        "Top ten pasta recipes for busy weeknights",
        "Is hooli overvalued? A contrarian take on HOOLI stock",
        "ENRON retrospective: lessons from a collapse", // not in the schema domain
    ];

    let mut symbols: BTreeSet<String> = BTreeSet::new();
    for page in pages {
        for pair in parser.parse_text(page) {
            symbols.insert(pair.value.to_string());
        }
    }
    println!("symbols found in attention data: {symbols:?} (ENRON rejected by schema)");

    // Place one subscription per discovered symbol, plus a price alert.
    let broker = Broker::builder().schema(schema).build();
    let (me, inbox) = broker.register();
    for symbol in &symbols {
        broker
            .subscribe(me, Filter::new().and("symbol", Op::Eq, symbol.as_str()))
            .expect("parser output is schema-valid");
    }
    broker
        .subscribe(
            me,
            Filter::new()
                .and("symbol", Op::Eq, "ACME")
                .and("price", Op::Gt, 100.0),
        )
        .expect("valid alert filter");

    // The market opens.
    let quotes = [
        ("ACME", 98.0),
        ("ACME", 104.5), // also trips the price alert
        ("GLOBEX", 55.2),
        ("HOOLI", 310.0),
        ("INITECH", 1.2), // outside the schema domain: rejected
    ];
    for (symbol, price) in quotes {
        let event = Event::builder().attr("symbol", symbol).attr("price", price).build();
        match broker.publish(event) {
            Ok(outcome) => println!("published {symbol} @ {price}: {} deliveries", outcome.delivered),
            Err(e) => println!("rejected {symbol} @ {price}: {e}"),
        }
    }

    println!("\nticker inbox:");
    for delivery in inbox.drain() {
        println!("  {delivery}");
    }
}
