//! The §2.2 example, now served over real sockets: "in a publish-subscribe
//! system that delivers stock quotes, the attention parser would be looking
//! for known stock symbols in the attention data."
//!
//! Where this example used to call a broker in-process, it now spawns the
//! `reefd` daemon (a `reef_wire::BrokerServer` on an ephemeral loopback
//! port) and runs **two real TCP clients** against it:
//!
//! * a *subscriber* whose attention data yields stock symbols, which it
//!   turns into subscriptions over the wire;
//! * a *publisher* feeding the day's quotes into the broker.
//!
//! The broker carries the stock-quote schema, so events and filters
//! outside the interface are rejected server-side, across the socket.
//!
//! Run with: `cargo run --example stock_ticker`

use reef::attention::AttentionParser;
use reef::pubsub::{stock_quote_schema, Broker, Event, Filter, Op};
use reef::wire::{BrokerServer, Client, WireError};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let schema = stock_quote_schema(["ACME", "GLOBEX", "HOOLI"]);
    let parser = AttentionParser::new(schema.clone());

    // --- The daemon: a schema-validating broker behind a TCP listener. ---
    let broker = Arc::new(Broker::builder().schema(schema).build());
    let server = BrokerServer::builder()
        .broker(broker)
        .name("reefd-stock-ticker")
        .bind("127.0.0.1:0")
        .expect("spawn daemon on an ephemeral port");
    println!("reefd listening on {}", server.local_addr());

    // --- The subscriber: attention data in, subscriptions out. ---
    let ticker = Client::connect_as(server.local_addr(), "ticker").expect("connect subscriber");
    println!("ticker connected as subscriber #{}", ticker.subscriber());

    // What the user read this morning.
    let pages = [
        "Acme Corp beats expectations as acme shares surge on earnings",
        "Analysts downgrade GLOBEX after supply chain troubles",
        "Top ten pasta recipes for busy weeknights",
        "Is hooli overvalued? A contrarian take on HOOLI stock",
        "ENRON retrospective: lessons from a collapse", // not in the schema domain
    ];
    let mut symbols: BTreeSet<String> = BTreeSet::new();
    for page in pages {
        for pair in parser.parse_text(page) {
            symbols.insert(pair.value.to_string());
        }
    }
    println!("symbols found in attention data: {symbols:?} (ENRON rejected by schema)");

    // Place one subscription per discovered symbol, plus a price alert —
    // each one a Subscribe frame over the socket.
    for symbol in &symbols {
        ticker
            .subscribe(Filter::new().and("symbol", Op::Eq, symbol.as_str()))
            .expect("parser output is schema-valid");
    }
    ticker
        .subscribe(
            Filter::new()
                .and("symbol", Op::Eq, "ACME")
                .and("price", Op::Gt, 100.0),
        )
        .expect("valid alert filter");
    // The schema also protects the wire: invalid filters bounce.
    match ticker.subscribe(Filter::new().and("symbol", Op::Eq, "INITECH")) {
        Err(WireError::Remote(message)) => println!("rejected filter over the wire: {message}"),
        other => panic!("schema should reject INITECH, got {other:?}"),
    }

    // --- The publisher: a second process-like client. The market opens.
    // The whole day's tape goes out as one pipelined window
    // (`publish_nowait`): every quote is on the wire before the first
    // broker outcome is awaited, so the socket round-trip is paid once
    // per window instead of once per quote.
    let exchange = Client::connect_as(server.local_addr(), "exchange").expect("connect publisher");
    println!(
        "exchange speaks the {} codec (protocol v{})",
        exchange.codec(),
        exchange.codec().version()
    );
    let quotes = [
        ("ACME", 98.0),
        ("ACME", 104.5), // also trips the price alert
        ("GLOBEX", 55.2),
        ("HOOLI", 310.0),
        ("INITECH", 1.2), // outside the schema domain: rejected
    ];
    let in_flight: Vec<_> = quotes
        .iter()
        .map(|(symbol, price)| {
            let event = Event::builder()
                .attr("symbol", *symbol)
                .attr("price", *price)
                .build();
            exchange.publish_nowait(event).expect("frame written")
        })
        .collect();
    for ((symbol, price), pending) in quotes.iter().zip(in_flight) {
        match pending.wait() {
            Ok(outcome) => {
                println!(
                    "published {symbol} @ {price}: {} deliveries",
                    outcome.delivered
                )
            }
            Err(e) => println!("rejected {symbol} @ {price}: {e}"),
        }
    }

    // --- Deliveries arrive on the subscriber's socket. ---
    println!("\nticker inbox:");
    while let Some(delivery) = ticker.recv_delivery(Duration::from_millis(500)) {
        println!("  {delivery}");
    }

    // --- The daemon accounted for every frame and byte. ---
    let wire = server.stats();
    println!("\ndaemon wire stats: {wire}");
    for conn in server.connection_stats() {
        println!("  {} ({}): {}", conn.client, conn.peer, conn.wire);
    }

    ticker.close().expect("clean close");
    exchange.close().expect("clean close");
    server.shutdown();
}
