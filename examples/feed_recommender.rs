//! The §3.2 case study: automatic topic-based subscriptions to Web feeds.
//!
//! Reproduces the paper's pipeline at small scale and narrates it:
//! browsing history → click upload → crawler (flagging ad/spam hosts,
//! autodiscovering feeds) → rate-limited recommendations → WAIF
//! FeedEvents proxy polling RSS/Atom/RDF and pushing items through the
//! broker into sidebars, with the closed feedback loop unsubscribing
//! ignored feeds.
//!
//! Run with: `cargo run --example feed_recommender`

use reef::core::{CentralizedReef, ReefConfig};
use reef::simweb::browse::generate_history;
use reef::simweb::{browsing_stats, BrowseConfig, WebConfig, WebUniverse};

fn main() {
    let seed = 2006;
    let universe = WebUniverse::generate(WebConfig::default(), seed);
    let browse = BrowseConfig {
        users: 3,
        days: 21,
        mean_page_views_per_day: 50.0,
        favourites_per_user: 60,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &browse, seed);

    let stats = browsing_stats(&universe, &history);
    println!("three weeks of browsing by three users:\n{stats}\n");

    let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), seed);
    let mut total_events = 0;
    let mut total_recs = 0;
    let mut total_unsubs = 0;
    for day in 0..history.days {
        let r = reef.run_day(&universe, &history, day);
        total_events += r.events_delivered;
        total_recs += r.subscribe_recs;
        total_unsubs += r.unsubscribe_recs;
    }

    println!(
        "feeds discovered by the crawler : {}",
        reef.server().feeds_discovered()
    );
    println!(
        "hosts flagged (ad/spam/mm)      : {}",
        reef.server().flagged_hosts()
    );
    println!("feed subscriptions recommended  : {total_recs}");
    println!("subscriptions removed by loop   : {total_unsubs}");
    println!("feed events delivered           : {total_events}");
    println!(
        "recommendation rate             : {:.2} per user per day (paper: ≈1)",
        total_recs as f64 / (browse.users as f64 * browse.days as f64)
    );
    for (user, active) in reef.subscription_counts() {
        println!("  {user}: {active} active subscriptions");
    }
}
