//! The §3.2 case study over real sockets: automatic topic-based
//! subscriptions served by a live broker daemon.
//!
//! Earlier revisions ran the recommenders in-process; this example
//! drives the whole loop through the wire surface instead. Browsing
//! histories are uploaded with `UploadClicks`, each user enrolls with
//! `AutoSubscribe`, and the *daemon* derives feed subscriptions,
//! installs them on the broker, delivers matching items with no manual
//! `Subscribe`, and — as the un-reinforced interests decay — retires
//! them again, announcing every change with an unsolicited
//! `FeedChanged` notice. This is the closed feedback loop of the paper
//! running server-side.
//!
//! Run with: `cargo run --example feed_recommender`

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, TOPIC_ATTR};
use reef::simweb::browse::generate_history;
use reef::simweb::{browsing_stats, BrowseConfig, UserId, WebConfig, WebUniverse};
use reef::wire::{AutoSubPolicy, AutosubOptions, BrokerServer, Client};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn main() {
    let seed = 2006;
    let universe = WebUniverse::generate(WebConfig::default(), seed);
    let browse = BrowseConfig {
        users: 3,
        days: 21,
        mean_page_views_per_day: 50.0,
        favourites_per_user: 60,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &browse, seed);
    let stats = browsing_stats(&universe, &history);
    println!("three weeks of browsing by three users:\n{stats}\n");

    // A reefd-style daemon with the auto-subscription subsystem enabled,
    // refreshing interests ten times a second. The aggressive half-life
    // makes the decay half of the loop watchable in seconds.
    let server = BrokerServer::builder()
        .name("feed-recommender")
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_millis(100)))
        .bind("127.0.0.1:0")
        .expect("bind daemon");
    println!("daemon listening on {} (autosub on)\n", server.local_addr());
    let policy = AutoSubPolicy {
        half_life_secs: 0.4,
        ..AutoSubPolicy::default()
    };

    // Each user uploads their clicks and enrolls; the receipt lists what
    // the daemon derived and why.
    let mut per_user: BTreeMap<u32, Vec<Click>> = BTreeMap::new();
    for request in &history.requests {
        per_user
            .entry(request.user.0)
            .or_default()
            .push(Click::from_request(request));
    }
    let mut readers = Vec::new();
    for (&user, clicks) in &per_user {
        let client =
            Client::connect_as(server.local_addr(), &format!("user-{user}")).expect("connect");
        for chunk in clicks.chunks(2000) {
            client
                .upload_clicks(ClickBatch {
                    user: UserId(user),
                    clicks: chunk.to_vec(),
                })
                .expect("upload clicks");
        }
        let receipt = client
            .auto_subscribe(UserId(user), Some(policy.clone()))
            .expect("auto-subscribe");
        println!(
            "user {user}: {} clicks uploaded, {} feeds derived",
            clicks.len(),
            receipt.entries.len()
        );
        for entry in &receipt.entries {
            println!("    {:5.0}  {}", entry.score, entry.reason);
        }
        readers.push((user, client, receipt));
    }

    // The derived filters are real broker subscriptions: a feed item
    // published by anyone reaches the interested users although none of
    // them ever sent a Subscribe.
    let publisher = Client::connect_as(server.local_addr(), "feed-proxy").expect("connect proxy");
    let mut published = 0;
    for (_, _, receipt) in &readers {
        for entry in &receipt.entries {
            if let Some((_, topic)) = entry.filter.eq_attrs().find(|(a, _)| *a == TOPIC_ATTR) {
                if let Some(feed) = topic.as_str() {
                    publisher
                        .publish(Event::topical(feed, "fresh item"))
                        .expect("publish");
                    published += 1;
                }
            }
        }
    }
    let mut delivered = 0;
    for (user, client, _) in &readers {
        let mut n = 0;
        while client.recv_delivery(Duration::from_millis(300)).is_some() {
            n += 1;
        }
        println!("user {user}: {n} feed items delivered without a manual Subscribe");
        delivered += n;
    }
    println!("published {published} items, delivered {delivered}\n");

    // No new clicks arrive, so every interest decays below the score
    // floor; the daemon retires the subscriptions and pushes FeedChanged
    // notices — the paper's automatic unsubscription, unprompted.
    println!("waiting for the un-reinforced interests to decay...");
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut retired = 0;
    let total: usize = readers.iter().map(|(_, _, r)| r.entries.len()).sum();
    while retired < total && Instant::now() < deadline {
        for (user, client, _) in &readers {
            while let Some(change) = client.try_feed_change() {
                for entry in &change.retired {
                    println!("user {user}: retired  {}", entry.reason);
                    retired += 1;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let gauges = server.stats();
    println!(
        "\nautosub gauges: {} users enrolled, {} active, {} derived, {} retired",
        gauges.autosub_users, gauges.autosub_active, gauges.autosub_derived, gauges.autosub_retired
    );

    for (_, client, _) in readers {
        client.close().expect("close");
    }
    publisher.close().expect("close");
    server.shutdown();
}
