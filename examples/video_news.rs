//! The §3.3 case study: content-based queries rank video news stories.
//!
//! Builds a browsing history for one user, selects interest terms with
//! Robertson's Offer Weight (TF-integrated, per the paper's footnote 1),
//! and ranks a 500-story synthetic TRECVid-like archive with BM25,
//! reporting the precision improvement over airing order for several
//! query sizes.
//!
//! Run with: `cargo run --release --example video_news`

use reef::simweb::browse::generate_history;
use reef::simweb::{BrowseConfig, RequestKind, TopicId, WebConfig, WebUniverse};
use reef::textindex::OfferWeightMode;
use reef::videonews::{ArchiveConfig, ExperimentConfig, VideoArchive, VideoExperiment};
use std::collections::HashSet;

fn main() {
    let seed = 2006;
    let universe = WebUniverse::generate(WebConfig::paper_e2(), seed);
    let browse = BrowseConfig {
        days: 14,
        ..BrowseConfig::paper_e2()
    };
    let history = generate_history(&universe, &browse, seed);
    let profile = &history.profiles[0];

    // History: the distinct pages the user viewed.
    let mut seen = HashSet::new();
    let mut texts = Vec::new();
    for r in history
        .requests
        .iter()
        .filter(|r| r.kind == RequestKind::Page)
    {
        if seen.insert(r.url.as_str()) {
            if let Some(p) = universe.fetch(&r.url) {
                if p.content_type == "text/html" && !p.text.is_empty() {
                    texts.push(p.text.as_str());
                }
            }
        }
    }
    let background: Vec<&str> = universe
        .pages()
        .iter()
        .filter(|p| p.content_type == "text/html" && !seen.contains(p.url.as_str()))
        .step_by(4)
        .take(1200)
        .map(|p| p.text.as_str())
        .collect();

    let archive = VideoArchive::generate(universe.model(), ArchiveConfig::default(), seed);
    let interests: Vec<TopicId> = profile.interests.iter().map(|(t, _)| *t).collect();
    let judgments = archive.noisy_judgments(&interests, 0.445, 0.25, seed);
    println!(
        "user browsed {} distinct pages; interests: {:?}",
        texts.len(),
        interests
    );

    let experiment = VideoExperiment::prepare(
        &archive,
        texts.iter().copied(),
        background.iter().copied(),
        judgments,
        ExperimentConfig::default(),
    );

    println!("\ntop-10 interest terms (Offer Weight, TF-integrated):");
    for term in experiment.query_terms(10, OfferWeightMode::TfIntegrated) {
        println!(
            "  {:<14} weight {:>8.1}  (history df {}, background df {})",
            term.term, term.weight, term.history_df, term.background_df
        );
    }

    println!("\nprecision improvement over airing order:");
    for point in experiment.sweep(&[5, 10, 30, 100, 500], OfferWeightMode::TfIntegrated) {
        println!("  {point}");
    }
}
