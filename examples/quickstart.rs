//! Quickstart: the smallest complete Reef loop.
//!
//! Generates a tiny synthetic Web, lets one user browse it for a week,
//! and runs the centralized Reef pipeline: the browser extension records
//! clicks, the server crawls the visited pages, discovers feeds,
//! recommends subscriptions, the feed proxy polls them, and events land
//! in the user's sidebar — zero-click subscriptions end to end.
//!
//! Run with: `cargo run --example quickstart`

use reef::core::{CentralizedReef, ReefConfig};
use reef::simweb::browse::generate_history;
use reef::simweb::{BrowseConfig, WebConfig, WebUniverse};

fn main() {
    let seed = 7;
    let universe = WebUniverse::generate(WebConfig::default(), seed);
    let browse = BrowseConfig {
        users: 1,
        days: 7,
        mean_page_views_per_day: 60.0,
        favourites_per_user: 40,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &browse, seed);
    println!(
        "one user, {} days, {} requests over {} servers",
        history.days,
        history.requests.len(),
        universe.servers().len()
    );

    let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), seed);
    for day in 0..history.days {
        let r = reef.run_day(&universe, &history, day);
        println!(
            "day {day}: {} clicks recorded, {} feeds recommended, {} events in sidebar \
             ({} clicked, {} deleted)",
            r.clicks, r.subscribe_recs, r.events_delivered, r.clicked, r.deleted
        );
    }

    let (user, subs) = reef.subscription_counts()[0];
    println!("\nafter one week, {user} holds {subs} automatic subscriptions");
    println!(
        "server-side click database: {} clicks",
        reef.server_resident_clicks()
    );
    println!("traffic: {}", reef.traffic());
}
