//! The §4 design: distributed, privacy-preserving Reef.
//!
//! Every user's attention stays on their own host; local peers analyze
//! the browser cache, recommend subscriptions, and periodically exchange
//! feed suggestions within interest-similar peer groups (the I-SPY-style
//! community model of §5.2). Compare the traffic line at the end with
//! `cargo run --example quickstart`.
//!
//! Run with: `cargo run --example distributed_reef`

use reef::core::{DistributedReef, ReefConfig};
use reef::simweb::browse::generate_history;
use reef::simweb::{BrowseConfig, WebConfig, WebUniverse};

fn main() {
    let seed = 1717;
    let universe = WebUniverse::generate(WebConfig::default(), seed);
    let browse = BrowseConfig {
        users: 6,
        days: 21,
        mean_page_views_per_day: 45.0,
        favourites_per_user: 50,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &browse, seed);

    let config = ReefConfig {
        exchange_every_days: 7,
        ..ReefConfig::default()
    };
    let mut reef = DistributedReef::new(&history.profiles, config, seed);
    // Peers weigh terms against a public reference corpus, not other
    // users' data.
    reef.seed_background(
        universe
            .pages()
            .iter()
            .filter(|p| p.content_type == "text/html")
            .step_by(23)
            .take(300)
            .map(|p| p.text.as_str()),
    );

    let mut recs = 0u64;
    let mut events = 0u64;
    for day in 0..history.days {
        let r = reef.run_day(&universe, &history, day);
        recs += r.subscribe_recs;
        events += r.events_delivered;
        if day % 7 == 0 && day > 0 {
            println!("day {day}: peer-group exchange round completed");
        }
    }

    println!("\nsix peers, three weeks:");
    println!("  feed subscriptions recommended : {recs}");
    println!("  feed events delivered          : {events}");
    for (user, active) in reef.subscription_counts() {
        println!("  {user}: {active} active subscriptions");
    }
    println!("\nprivacy & traffic:");
    println!(
        "  attention held off-host        : {} clicks",
        reef.server_resident_clicks()
    );
    println!("  clicks kept on user hosts      : {}", reef.local_clicks());
    println!("  network traffic                : {}", reef.traffic());
}
