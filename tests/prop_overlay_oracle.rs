//! Oracle property: a distributed broker overlay must deliver exactly the
//! same events as a single flat broker, for any workload and any tree
//! topology — covering optimization on or off.

use proptest::prelude::*;
use reef::pubsub::{Broker, ClientId, Event, Filter, Op, Overlay, Value};
use std::collections::BTreeMap;

const ATTRS: [&str; 3] = ["x", "y", "z"];

#[derive(Debug, Clone)]
struct WorkloadSub {
    client: usize,
    filter: Filter,
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop::collection::vec((0usize..3, 0usize..4, -3i64..4), 0..3).prop_map(|preds| {
        let mut f = Filter::new();
        for (attr, op, val) in preds {
            let op = [Op::Eq, Op::Ne, Op::Lt, Op::Gt][op];
            f = f.and(ATTRS[attr], op, val);
        }
        f
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::vec((0usize..3, -3i64..4), 1..4).prop_map(|pairs| {
        let mut e = Event::new();
        for (attr, val) in pairs {
            e.set(ATTRS[attr], Value::from(val));
        }
        e
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlay_matches_flat_broker(
        n_brokers in 2usize..6,
        covering in any::<bool>(),
        subs in prop::collection::vec((0usize..6, arb_filter()), 1..10),
        events in prop::collection::vec((0usize..6, arb_event()), 1..12),
        topology_seed in 0u64..1000,
    ) {
        let subs: Vec<WorkloadSub> = subs
            .into_iter()
            .map(|(client, filter)| WorkloadSub { client, filter })
            .collect();
        let n_clients = 6usize;

        // --- Overlay under test: random tree over n_brokers. ---
        let mut overlay = Overlay::new(covering);
        let brokers: Vec<_> = (0..n_brokers).map(|_| overlay.add_broker()).collect();
        // Random tree: parent of node i is some j < i.
        let mut state = topology_seed.wrapping_add(7);
        for i in 1..n_brokers {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let parent = (state >> 33) as usize % i;
            overlay.link(brokers[parent], brokers[i], 1 + (i as u64 % 3)).expect("tree link");
        }
        let clients: Vec<ClientId> = (0..n_clients)
            .map(|i| overlay.attach_client(brokers[i % n_brokers]).expect("attach"))
            .collect();
        for sub in &subs {
            overlay.subscribe(clients[sub.client], sub.filter.clone()).expect("subscribe");
        }
        overlay.run_until_idle();
        for (publisher, event) in &events {
            overlay.publish(clients[*publisher], event.clone()).expect("publish");
        }
        overlay.run_until_idle();

        // --- Oracle: one flat broker with the same subscriptions. ---
        let flat = Broker::new();
        let flat_clients: Vec<_> = (0..n_clients).map(|_| flat.register()).collect();
        for sub in &subs {
            flat.subscribe(flat_clients[sub.client].0, sub.filter.clone()).expect("subscribe");
        }
        for (_, event) in &events {
            flat.publish(event.clone()).expect("publish");
        }

        // Compare delivery multisets per client (event payloads, order-free).
        for (i, client) in clients.iter().enumerate() {
            let mut got: BTreeMap<String, usize> = BTreeMap::new();
            for delivery in overlay.take_delivered(*client).expect("client") {
                *got.entry(delivery.event.to_string()).or_insert(0) += 1;
            }
            let mut want: BTreeMap<String, usize> = BTreeMap::new();
            for delivery in flat_clients[i].1.drain() {
                *want.entry(delivery.event.to_string()).or_insert(0) += 1;
            }
            prop_assert_eq!(
                &got, &want,
                "client {} deliveries diverge (covering={}, brokers={})",
                i, covering, n_brokers
            );
        }
    }
}
