//! Deterministic-simulation scenarios: the seeded smoke sweep plus
//! virtual-time ports of the flakiest wall-clock integration suites
//! (ring failover, crash-recovery kill points, mesh churn).
//!
//! Every run here is a pure function of a `u64` seed. On failure the
//! harness prints the seed and a minimized step trace; replay it with
//! `REEF_SIM_SEED=<seed> cargo test --test sim_scenarios seeded`.

use reef_sim::{run_seed, LinkFaults, SimPlan, SimStep};
use std::collections::BTreeSet;

/// How many seeds the smoke sweep covers. Each seed derives its own
/// topology (3–5 brokers), per-link fault profiles (drop, duplicate,
/// delay), and 10–15 perturbation steps (partitions, kills with torn
/// WAL tails, restarts, uploads), with all four oracles checked at
/// every quiescent point.
const SMOKE_SEEDS: u64 = 200;

#[test]
fn seeded_smoke_sweep() {
    // A single failing seed can be replayed alone via the env override.
    if let Ok(seed) = std::env::var("REEF_SIM_SEED") {
        let seed: u64 = seed.parse().expect("REEF_SIM_SEED must be a u64");
        if let Err(failure) = run_seed(seed) {
            panic!("{failure}");
        }
        return;
    }
    let mut probes = 0;
    let mut restarts = 0;
    let mut resets = 0;
    let mut dropped = 0;
    let mut duplicated = 0;
    for seed in 0..SMOKE_SEEDS {
        match run_seed(seed) {
            Ok(stats) => {
                probes += stats.probes;
                restarts += stats.restarts;
                resets += stats.link_resets;
                dropped += stats.net.dropped;
                duplicated += stats.net.duplicated;
            }
            Err(failure) => panic!("{failure}"),
        }
    }
    // The sweep must actually exercise the fault space, not tiptoe
    // around it — otherwise green means nothing.
    assert!(probes >= 2 * SMOKE_SEEDS, "probes: {probes}");
    assert!(restarts > 0, "no broker was ever kill/restarted");
    assert!(resets > 0, "no link was ever reset by a drop fault");
    assert!(dropped > 0, "no message was ever dropped");
    assert!(duplicated > 0, "no message was ever duplicated");
}

#[test]
fn replaying_a_seed_reproduces_the_exact_run() {
    for seed in [2, 77, 123] {
        let first = run_seed(seed).unwrap_or_else(|f| panic!("{f}"));
        let second = run_seed(seed).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(
            first, second,
            "seed {seed}: replay diverged — determinism is broken"
        );
    }
}

fn clean() -> LinkFaults {
    LinkFaults::default()
}

fn ring(brokers: usize) -> Vec<(usize, usize, LinkFaults)> {
    (0..brokers)
        .map(|a| {
            let b = (a + 1) % brokers;
            (a.min(b), a.max(b), clean())
        })
        .collect()
}

/// Port of the `wire_federation` ring-failover scenario: a 4-broker
/// ring loses one link, traffic must converge onto the long way round
/// (3 hops between the severed neighbors), then heal back to 1 hop.
/// The sim's convergence oracle checks the shortest-path lengths at
/// both quiescent points, which the TCP variant could only approximate
/// with sleeps.
#[test]
fn ring_failover_reroutes_the_long_way_round() {
    let plan = SimPlan {
        seed: 0,
        brokers: 4,
        links: ring(4),
        steps: vec![
            SimStep::LinkDown { a: 0, b: 1 },
            SimStep::LinkUp {
                a: 0,
                b: 1,
                faults: clean(),
            },
        ],
    };
    let stats = reef_sim::execute_plan(&plan).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(stats.steps, 2);
}

/// Port of the `crash_recovery` kill-point scenario: a broker ingests
/// acked uploads, dies with a torn WAL tail at several different byte
/// offsets, and each recovery must yield a batch-boundary prefix of
/// exactly what was acked — while the surviving brokers keep routing.
#[test]
fn crash_recovery_kill_points_preserve_acked_prefix() {
    for torn in [0u16, 1, 7, 24, 64] {
        let plan = SimPlan {
            seed: u64::from(torn),
            brokers: 3,
            links: ring(3),
            steps: vec![
                SimStep::ClickUpload {
                    broker: 1,
                    forged: false,
                },
                SimStep::ClickUpload {
                    broker: 1,
                    forged: true,
                },
                SimStep::ClickUpload {
                    broker: 1,
                    forged: false,
                },
                SimStep::Kill { broker: 1, torn },
                SimStep::Restart { broker: 1 },
                SimStep::ClickUpload {
                    broker: 1,
                    forged: false,
                },
            ],
        };
        let stats =
            reef_sim::execute_plan(&plan).unwrap_or_else(|e| panic!("kill point torn={torn}: {e}"));
        assert_eq!(stats.restarts, 1, "torn={torn}");
    }
}

/// Port of the `prop_mesh_churn` reachability property: relentless
/// link churn and a partition over a chorded 5-broker mesh, with lossy
/// links throughout. After every step the convergence and delivery
/// oracles prove reachability — the property the wall-clock suite
/// could only sample.
#[test]
fn mesh_churn_keeps_survivors_connected() {
    let lossy = LinkFaults {
        drop_p: 0.2,
        dup_p: 0.2,
        delay_min: 0,
        delay_max: 3,
    };
    let mut links = ring(5);
    links.push((0, 2, lossy));
    links.push((1, 3, lossy));
    links.sort_by_key(|&(a, b, _)| (a, b));
    let group: BTreeSet<usize> = [4].into_iter().collect();
    let plan = SimPlan {
        seed: 99,
        brokers: 5,
        links,
        steps: vec![
            SimStep::LinkDown { a: 0, b: 1 },
            SimStep::LinkDown { a: 2, b: 3 },
            SimStep::Partition { group },
            SimStep::LinkUp {
                a: 0,
                b: 1,
                faults: lossy,
            },
            SimStep::Heal,
            SimStep::Kill { broker: 2, torn: 9 },
            SimStep::LinkUp {
                a: 2,
                b: 3,
                faults: lossy,
            },
            SimStep::Restart { broker: 2 },
        ],
    };
    let stats = reef_sim::execute_plan(&plan).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(stats.steps, 8);
}
