//! Cross-crate integration: simulated Web → XML feed documents → proxy →
//! broker → subscriber, exercising the full syndication path.

use reef::core::UniverseFeedFetcher;
use reef::feeds::{parse_feed, FeedEventsProxy, FeedFetcher, FeedFormat};
use reef::pubsub::{Broker, Filter};
use reef::simweb::{SimFeedFormat, WebConfig, WebUniverse};

fn universe() -> WebUniverse {
    WebUniverse::generate(WebConfig::default(), 41)
}

#[test]
fn every_simulated_feed_serves_well_formed_xml() {
    let u = universe();
    let fetcher = UniverseFeedFetcher::new(&u, 14);
    for spec in u.feeds().iter().take(120) {
        let doc = fetcher
            .fetch_feed(&spec.url, 9)
            .expect("registered feed must be fetchable");
        let (format, feed) =
            parse_feed(&doc).unwrap_or_else(|e| panic!("{}: {e}\n{doc}", spec.url));
        let expected = match spec.format {
            SimFeedFormat::Rss2 => FeedFormat::Rss2,
            SimFeedFormat::Atom => FeedFormat::Atom,
            SimFeedFormat::Rdf => FeedFormat::Rdf,
        };
        assert_eq!(format, expected, "{}", spec.url);
        assert_eq!(feed.title, spec.title);
    }
}

#[test]
fn proxy_delivers_each_item_exactly_once_across_days() {
    let u = universe();
    // Pick the chattiest feed so items actually appear.
    let spec = u
        .feeds()
        .iter()
        .max_by(|a, b| {
            a.daily_rate
                .partial_cmp(&b.daily_rate)
                .expect("rates finite")
        })
        .expect("universe has feeds");

    let broker = Broker::new();
    let (me, inbox) = broker.register();
    broker
        .subscribe(me, Filter::topic(&spec.url))
        .expect("subscribe");
    let mut proxy = FeedEventsProxy::new();
    proxy.register(&spec.url);

    let fetcher = UniverseFeedFetcher::new(&u, 30);
    let mut published = 0usize;
    for day in 0..20 {
        published += proxy.poll_due(&fetcher, &broker, day).new_items;
    }
    let delivered = inbox.drain();
    assert_eq!(delivered.len(), published);
    assert!(published > 0, "a chatty feed publishes in 20 days");
    // GUIDs are unique across the whole window.
    let mut guids: Vec<String> = delivered
        .iter()
        .map(|e| {
            e.event
                .get("guid")
                .and_then(|v| v.as_str())
                .expect("feed events carry guids")
                .to_owned()
        })
        .collect();
    let before = guids.len();
    guids.sort();
    guids.dedup();
    assert_eq!(guids.len(), before, "no duplicate GUIDs delivered");
}

#[test]
fn feed_events_validate_against_the_feed_schema() {
    let u = universe();
    let broker = Broker::builder()
        .schema(reef::pubsub::feed_events_schema())
        .build();
    let mut proxy = FeedEventsProxy::new();
    for spec in u.feeds().iter().take(30) {
        proxy.register(&spec.url);
    }
    let fetcher = UniverseFeedFetcher::new(&u, 30);
    // Any schema violation would panic inside the proxy's publish.
    let report = proxy.poll_all(&fetcher, &broker, 15);
    assert_eq!(report.parse_errors, 0);
    assert_eq!(report.unreachable, 0);
}

#[test]
fn backoff_reduces_poll_volume_on_quiet_feeds() {
    let u = universe();
    let quiet: Vec<&reef::simweb::FeedSpec> = u
        .feeds()
        .iter()
        .filter(|f| f.daily_rate < 0.2)
        .take(20)
        .collect();
    assert!(!quiet.is_empty());
    let broker = Broker::new();
    let mut proxy = FeedEventsProxy::new();
    for spec in &quiet {
        proxy.register(&spec.url);
    }
    let fetcher = UniverseFeedFetcher::new(&u, 30);
    let mut polled = 0usize;
    let mut skipped = 0usize;
    for day in 0..16 {
        let r = proxy.poll_due(&fetcher, &broker, day);
        polled += r.polled;
        skipped += r.skipped;
    }
    assert!(
        skipped > polled,
        "quiet feeds must be skipped more than polled (polled {polled}, skipped {skipped})"
    );
}
