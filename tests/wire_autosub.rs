//! End-to-end automatic subscriptions over real sockets: a client
//! uploads attention data, enrolls with `AutoSubscribe`, and the daemon
//! derives, installs, decays and retires broker subscriptions on its
//! behalf — the paper's central loop (§2) running inside `reefd`.

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, Filter};
use reef::simweb::UserId;
use reef::wire::{
    AutoSubPolicy, AutosubOptions, BrokerServer, Client, ClientFrame, CodecKind, Frame, Request,
    TransportKind, WireError,
};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);

/// The feed URL the topic recommender derives for clicks on
/// `news.example` articles.
const DERIVED_FEED: &str = "http://news.example/feed.xml";

fn news_batch(user: u32, clicks: u64) -> ClickBatch {
    ClickBatch {
        user: UserId(user),
        clicks: (0..clicks)
            .map(|i| Click {
                user: UserId(user),
                day: 1,
                tick: i,
                url: format!("http://news.example/article-{i}"),
                referrer: None,
            })
            .collect(),
    }
}

/// The acceptance scenario, per transport: upload clicks, enroll, have a
/// matching publish delivered *without any manual Subscribe*, then watch
/// the interest decay until the engine retires the subscription and
/// pushes the `FeedChanged` notice.
fn derive_deliver_decay_retire(transport: TransportKind) {
    let server = BrokerServer::builder()
        .transport(transport)
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_millis(50)))
        .bind("127.0.0.1:0")
        .expect("bind");
    let reader = Client::connect_as(server.local_addr(), "reader").expect("connect reader");
    let publisher = Client::connect_as(server.local_addr(), "publisher").expect("connect pub");

    reader.upload_clicks(news_batch(7, 5)).expect("upload");

    // Short half-life so the un-reinforced interest decays below the
    // score floor (5 clicks → score 5, floor 2) within a few refreshes.
    let policy = AutoSubPolicy {
        half_life_secs: 0.2,
        ..AutoSubPolicy::default()
    };
    let receipt = reader
        .auto_subscribe(UserId(7), Some(policy))
        .expect("auto-subscribe");
    assert_eq!(receipt.user, UserId(7));
    assert_eq!(receipt.entries.len(), 1, "one feed derived: {receipt:?}");
    assert_eq!(receipt.entries[0].filter, Filter::topic(DERIVED_FEED));
    assert!(
        receipt.entries[0].reason.contains("news.example"),
        "reason names the host: {:?}",
        receipt.entries[0].reason
    );

    // The derived filter is a real broker subscription owned by the
    // reader's connection: a matching publish from another socket is
    // delivered although the reader never sent a Subscribe.
    let outcome = publisher
        .publish(Event::topical(DERIVED_FEED, "fresh item"))
        .expect("publish");
    assert_eq!(outcome.delivered, 1, "auto-derived subscription matched");
    let delivery = reader
        .recv_delivery(WAIT)
        .expect("delivered without Subscribe");
    assert_eq!(
        delivery
            .event
            .get(reef::pubsub::TOPIC_ATTR)
            .unwrap()
            .as_str(),
        Some(DERIVED_FEED)
    );

    // No new clicks arrive, so the refresh task decays the interest to
    // zero and retires the subscription, announcing it unsolicited.
    let change = reader.recv_feed_change(WAIT).expect("retire notice pushed");
    assert_eq!(change.user, UserId(7));
    assert!(change.installed.is_empty(), "{change:?}");
    assert_eq!(change.retired.len(), 1, "{change:?}");
    assert_eq!(change.retired[0].filter, Filter::topic(DERIVED_FEED));

    // Retired means retired from the *broker*: the same publish no
    // longer reaches the reader.
    let outcome = publisher
        .publish(Event::topical(DERIVED_FEED, "later item"))
        .expect("publish after retire");
    assert_eq!(outcome.delivered, 0, "subscription was retired");
    assert!(reader.recv_delivery(Duration::from_millis(200)).is_none());

    // The gauges saw the cycle.
    let stats = server.stats();
    assert_eq!(stats.autosub_users, 1, "{stats:?}");
    assert_eq!(stats.autosub_active, 0, "{stats:?}");
    assert!(stats.autosub_derived >= 1, "{stats:?}");
    assert!(stats.autosub_retired >= 1, "{stats:?}");

    reader.close().expect("close reader");
    publisher.close().expect("close publisher");
    server.shutdown();
}

#[test]
fn derive_deliver_decay_retire_threads() {
    derive_deliver_decay_retire(TransportKind::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn derive_deliver_decay_retire_epoll() {
    derive_deliver_decay_retire(TransportKind::Epoll);
}

/// New clicks uploaded *after* enrollment are picked up by the refresh
/// task, which installs the new interest and pushes a `FeedChanged`
/// notice with the install.
#[test]
fn clicks_after_enrollment_install_new_feeds() {
    let server = BrokerServer::builder()
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_millis(50)))
        .bind("127.0.0.1:0")
        .expect("bind");
    let reader = Client::connect_as(server.local_addr(), "reader").expect("connect");

    // Enroll with an empty history: nothing derived yet.
    let receipt = reader.auto_subscribe(UserId(3), None).expect("enroll");
    assert!(receipt.entries.is_empty(), "{receipt:?}");

    reader.upload_clicks(news_batch(3, 4)).expect("upload");
    let change = reader.recv_feed_change(WAIT).expect("install notice");
    assert_eq!(change.user, UserId(3));
    assert_eq!(change.installed.len(), 1, "{change:?}");
    assert_eq!(change.installed[0].filter, Filter::topic(DERIVED_FEED));
    assert!(change.retired.is_empty(), "{change:?}");

    // And the installed filter delivers.
    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
    publisher
        .publish(Event::topical(DERIVED_FEED, "item"))
        .expect("publish");
    assert!(reader.recv_delivery(WAIT).is_some());

    reader.close().expect("close");
    publisher.close().expect("close");
    server.shutdown();
}

/// `AutoUnsubscribe` retires everything at once and reports what was
/// active; v1 JSON clients drive the same surface.
#[test]
fn auto_unsubscribe_retires_immediately_on_json_codec() {
    let server = BrokerServer::builder()
        // Slow refresh: retirement below must come from AutoUnsubscribe,
        // not decay.
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_secs(3600)))
        .bind("127.0.0.1:0")
        .expect("bind");
    let reader = Client::builder()
        .name("v1-reader")
        .codec(CodecKind::Json)
        .connect(server.local_addr())
        .expect("connect json");

    reader.upload_clicks(news_batch(9, 6)).expect("upload");
    let receipt = reader.auto_subscribe(UserId(9), None).expect("enroll");
    assert_eq!(receipt.entries.len(), 1);

    let retired = reader.auto_unsubscribe(UserId(9)).expect("unenroll");
    assert_eq!(retired.entries.len(), 1, "{retired:?}");
    assert_eq!(retired.entries[0].filter, Filter::topic(DERIVED_FEED));

    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
    let outcome = publisher
        .publish(Event::topical(DERIVED_FEED, "item"))
        .expect("publish");
    assert_eq!(outcome.delivered, 0, "nothing left installed");

    // Unenrolling an unknown user is an empty no-op, not an error.
    let empty = reader.auto_unsubscribe(UserId(42)).expect("idempotent");
    assert!(empty.entries.is_empty());

    reader.close().expect("close");
    publisher.close().expect("close");
    server.shutdown();
}

/// A daemon with the subsystem disabled refuses enrollment with an error
/// reply (the `reefd` default without `--autosub`).
#[test]
fn disabled_daemon_refuses_autosubscribe() {
    let server = BrokerServer::builder()
        .autosub(AutosubOptions::default().enabled(false))
        .bind("127.0.0.1:0")
        .expect("bind");
    let client = Client::connect(server.local_addr()).expect("connect");
    match client.auto_subscribe(UserId(1), None) {
        Err(WireError::Remote(message)) => {
            assert!(message.contains("disabled"), "{message}");
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    client.close().expect("close");
    server.shutdown();
}

/// A *shard eviction* — not a client goodbye — must retire the evicted
/// connection's engine-installed subscriptions. An enrolled raw socket
/// stops reading; deliveries back up past the outbound watermark, the
/// owning event-loop shard's stall sweep evicts it after the write
/// timeout, and the per-shard teardown path has to run the same autosub
/// retirement a clean disconnect does.
#[cfg(target_os = "linux")]
#[test]
fn shard_eviction_retires_auto_subscriptions() {
    let server = BrokerServer::builder()
        .transport(TransportKind::Epoll)
        .loop_threads(4)
        .queue_capacity(8)
        .write_timeout(Duration::from_millis(50))
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_secs(3600)))
        .bind("127.0.0.1:0")
        .expect("bind");

    // Enroll over a raw socket so we control (and can stop) the reads.
    let codec = CodecKind::Binary.codec();
    let mut stalled = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    for (corr, request) in [
        (
            1,
            Request::Hello {
                version: 2,
                client: "stalling-reader".into(),
            },
        ),
        (
            2,
            Request::UploadClicks {
                batch: news_batch(11, 5),
            },
        ),
        (
            3,
            Request::AutoSubscribe {
                user: UserId(11),
                policy: None,
            },
        ),
    ] {
        codec
            .encode_client(&ClientFrame { corr, request })
            .expect("encode")
            .write_to(&mut stalled)
            .expect("write");
        Frame::read_from(&mut stalled)
            .expect("read reply")
            .expect("reply");
    }

    // The derived subscription is live; now the socket goes silent while
    // a publisher floods it with payloads big enough to fill the kernel
    // buffers and trip the shard's stall sweep.
    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
    let payload = "x".repeat(64 * 1024);
    let deadline = std::time::Instant::now() + 2 * WAIT;
    loop {
        let outcome = publisher
            .publish(Event::topical(DERIVED_FEED, &payload))
            .expect("publish");
        if outcome.delivered == 0 {
            break; // evicted and deregistered: nothing matches any more
        }
        assert!(
            std::time::Instant::now() < deadline,
            "shard never evicted the stalled connection"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Retirement was complete: no enrolled user, no active derived
    // subscription left behind by the evicting shard.
    let stats = server.stats();
    assert_eq!(stats.autosub_users, 0, "{stats:?}");
    assert_eq!(stats.autosub_active, 0, "{stats:?}");
    assert!(stats.delivery_drops >= 1, "{stats:?}");
    drop(stalled);
    publisher.close().expect("close");
    server.shutdown();
}

/// Tearing down the enrolled connection retires its engine-installed
/// subscriptions: a publish after the disconnect reaches nobody.
#[test]
fn disconnect_retires_auto_subscriptions() {
    let server = BrokerServer::builder()
        .autosub(AutosubOptions::default().refresh_interval(Duration::from_secs(3600)))
        .bind("127.0.0.1:0")
        .expect("bind");
    let reader = Client::connect_as(server.local_addr(), "reader").expect("connect");
    reader.upload_clicks(news_batch(5, 5)).expect("upload");
    let receipt = reader.auto_subscribe(UserId(5), None).expect("enroll");
    assert_eq!(receipt.entries.len(), 1);
    reader.close().expect("close");

    // The connection is gone; the broker must not hold its derived
    // subscription (a dangling one would count a delivery).
    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let outcome = publisher
            .publish(Event::topical(DERIVED_FEED, "item"))
            .expect("publish");
        if outcome.delivered == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "auto subscription still live after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert_eq!(stats.autosub_users, 0, "{stats:?}");
    assert_eq!(stats.autosub_active, 0, "{stats:?}");
    publisher.close().expect("close");
    server.shutdown();
}
