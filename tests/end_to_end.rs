//! Cross-crate integration: the full Reef closed loop, both deployments.

use reef::core::{CentralizedReef, DistributedReef, ReefConfig};
use reef::simweb::browse::generate_history;
use reef::simweb::{BrowseConfig, BrowsingHistory, WebConfig, WebUniverse};

fn workload(seed: u64) -> (WebUniverse, BrowsingHistory) {
    let universe = WebUniverse::generate(WebConfig::default(), seed);
    let browse = BrowseConfig {
        users: 3,
        days: 8,
        mean_page_views_per_day: 35.0,
        favourites_per_user: 40,
        ..BrowseConfig::default()
    };
    let history = generate_history(&universe, &browse, seed);
    (universe, history)
}

#[test]
fn centralized_loop_is_deterministic() {
    let (universe, history) = workload(3);
    let run = || {
        let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 3);
        let mut totals = (0u64, 0u64, 0u64);
        for day in 0..history.days {
            let r = reef.run_day(&universe, &history, day);
            totals.0 += r.subscribe_recs;
            totals.1 += r.events_delivered;
            totals.2 += r.clicked;
        }
        (totals, reef.traffic())
    };
    assert_eq!(run(), run());
}

#[test]
fn subscriptions_only_follow_crawl_worthy_discoveries() {
    let (universe, history) = workload(5);
    let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 5);
    for day in 0..history.days {
        reef.run_day(&universe, &history, day);
    }
    // Every feed the server discovered exists in the universe and sits on
    // a content server.
    assert!(reef.server().feeds_discovered() > 0);
    for (_user, subs) in reef.subscription_counts() {
        assert!(
            subs <= history.days as usize,
            "rate limit bounds subscriptions"
        );
    }
}

#[test]
fn closed_loop_feedback_reaches_the_server() {
    let (universe, history) = workload(7);
    let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 7);
    let mut clicked = 0u64;
    for day in 0..history.days {
        clicked += reef.run_day(&universe, &history, day).clicked;
    }
    if clicked > 0 {
        // Sidebar clicks upload as attention, so the server click count
        // must exceed the raw browsing request count.
        let browsing = history.requests.len() as u64;
        assert!(
            reef.server_resident_clicks() > browsing,
            "server has {} clicks for {} browsing requests",
            reef.server_resident_clicks(),
            browsing
        );
    }
}

#[test]
fn distributed_keeps_every_click_on_host() {
    let (universe, history) = workload(9);
    let mut reef = DistributedReef::new(&history.profiles, ReefConfig::default(), 9);
    for day in 0..history.days {
        reef.run_day(&universe, &history, day);
    }
    assert_eq!(reef.server_resident_clicks(), 0);
    assert!(reef.local_clicks() >= history.requests.len() as u64);
    let t = reef.traffic();
    assert_eq!(t.attention_upload_bytes, 0);
    assert_eq!(t.crawl_bytes, 0);
}

#[test]
fn deployments_have_comparable_recommendation_power() {
    let (universe, history) = workload(11);
    let mut central = CentralizedReef::new(&history.profiles, ReefConfig::default(), 11);
    let mut dist = DistributedReef::new(&history.profiles, ReefConfig::default(), 11);
    let mut c = 0u64;
    let mut d = 0u64;
    for day in 0..history.days {
        c += central.run_day(&universe, &history, day).subscribe_recs;
        d += dist.run_day(&universe, &history, day).subscribe_recs;
    }
    assert!(c > 0 && d > 0);
    let ratio = c as f64 / d as f64;
    assert!((0.5..=2.0).contains(&ratio), "recommendation ratio {ratio}");
}

#[test]
fn unsubscribe_loop_eventually_prunes() {
    let (universe, history) = {
        let universe = WebUniverse::generate(WebConfig::default(), 13);
        let browse = BrowseConfig {
            users: 2,
            days: 20,
            mean_page_views_per_day: 40.0,
            favourites_per_user: 30,
            ..BrowseConfig::default()
        };
        let history = generate_history(&universe, &browse, 13);
        (universe, history)
    };
    let mut reef = CentralizedReef::new(&history.profiles, ReefConfig::default(), 13);
    let mut unsubs = 0u64;
    for day in 0..history.days {
        unsubs += reef.run_day(&universe, &history, day).unsubscribe_recs;
    }
    assert!(unsubs > 0, "three weeks must surface some ignored feeds");
}
