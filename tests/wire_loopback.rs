//! End-to-end wire protocol test: a real `BrokerServer` on an ephemeral
//! loopback port, driven by OS-socket clients exchanging frames — the
//! networked counterpart of `tests/end_to_end.rs`.

mod common;

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, Filter, Op};
use reef::simweb::UserId;
use reef::wire::{BrokerServer, Client, CodecKind, WireError};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);

/// The acceptance scenario: two socket clients, a `price > 10` filter,
/// exactly the matching events delivered, and wire stats accounting for
/// the traffic.
#[test]
fn two_clients_exchange_matching_events() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let subscriber = Client::connect_as(server.local_addr(), "subscriber").expect("connect");
    let publisher = Client::connect_as(server.local_addr(), "publisher").expect("connect");

    let sub = subscriber
        .subscribe(Filter::new().and("price", Op::Gt, 10.0))
        .expect("subscribe");

    // Publish a mix of matching and non-matching events from the *other*
    // connection.
    let quotes = [4.0, 12.5, 9.99, 10.01, 250.0, 10.0];
    let mut expected = Vec::new();
    for (i, price) in quotes.into_iter().enumerate() {
        let outcome = publisher
            .publish(
                Event::builder()
                    .attr("price", price)
                    .attr("seq", i as i64)
                    .build(),
            )
            .expect("publish");
        if price > 10.0 {
            expected.push(i as i64);
            assert_eq!(
                outcome.delivered, 1,
                "price {price} should match the filter"
            );
        } else {
            assert_eq!(outcome.delivered, 0, "price {price} should not match");
        }
    }

    // The subscriber receives exactly the matching events, in order.
    let mut got = Vec::new();
    for _ in 0..expected.len() {
        let event = subscriber.recv_delivery(WAIT).expect("delivery arrives");
        got.push(event.event.get("seq").unwrap().as_f64().unwrap() as i64);
    }
    assert_eq!(got, expected);
    assert!(
        subscriber
            .recv_delivery(Duration::from_millis(100))
            .is_none(),
        "no extra deliveries"
    );
    // The publisher connection has no subscriptions: nothing leaked to it.
    assert!(publisher.try_delivery().is_none());

    // After unsubscribe, further matches stop flowing.
    let filter = subscriber.unsubscribe(sub).expect("unsubscribe");
    assert_eq!(filter, Filter::new().and("price", Op::Gt, 10.0));
    publisher
        .publish(Event::builder().attr("price", 99.0).build())
        .expect("publish after unsubscribe");
    assert!(subscriber
        .recv_delivery(Duration::from_millis(200))
        .is_none());

    // Wire stats saw the traffic: frames and bytes in both directions.
    let wire = server.stats();
    assert!(wire.frames_in >= 10, "server read our frames: {wire:?}");
    assert!(
        wire.frames_out >= 10,
        "server wrote replies + deliveries: {wire:?}"
    );
    assert!(
        wire.bytes_in > 0 && wire.bytes_out > 0,
        "bytes accounted: {wire:?}"
    );
    assert_eq!(wire.deliveries, expected.len() as u64, "{wire:?}");
    assert_eq!(wire.connections_opened, 2, "{wire:?}");

    // Per-connection stats break the same traffic down by peer.
    let per_conn = server.connection_stats();
    assert_eq!(per_conn.len(), 2);
    let by_name = |name: &str| {
        per_conn
            .iter()
            .find(|c| c.client == name)
            .unwrap_or_else(|| panic!("connection {name} listed"))
    };
    assert_eq!(by_name("subscriber").wire.deliveries, expected.len() as u64);
    assert_eq!(by_name("publisher").wire.deliveries, 0);
    assert!(by_name("publisher").wire.frames_in >= quotes.len() as u64);

    // Client-visible stats agree on the broker side.
    let stats = subscriber.stats().expect("stats request");
    assert_eq!(stats.broker.events_published, quotes.len() as u64 + 1);

    subscriber.close().expect("clean close");
    publisher.close().expect("clean close");
    server.shutdown();
}

/// Multiple subscriptions on one connection each yield their own copy, and
/// a third client's traffic is isolated.
#[test]
fn overlapping_subscriptions_and_isolation() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let all_news = Client::connect_as(server.local_addr(), "all-news").expect("connect");
    let keyword = Client::connect_as(server.local_addr(), "keyword").expect("connect");
    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");

    all_news
        .subscribe(Filter::topic("news"))
        .expect("subscribe");
    all_news
        .subscribe(Filter::new().and("body", Op::Contains, "reef"))
        .expect("subscribe");
    keyword
        .subscribe(Filter::new().and("body", Op::Contains, "coral"))
        .expect("subscribe");

    let outcome = publisher
        .publish(Event::topical("news", "the reef report"))
        .expect("publish");
    // Both of all_news's subscriptions match: one copy per subscription.
    assert_eq!(outcome.delivered, 2);

    assert!(all_news.recv_delivery(WAIT).is_some());
    assert!(all_news.recv_delivery(WAIT).is_some());
    assert!(keyword.recv_delivery(Duration::from_millis(200)).is_none());

    server.shutdown();
}

/// The §3.1 upload path: a client ships a click batch; the server's click
/// store ingests and indexes it.
#[test]
fn click_uploads_land_in_the_server_store() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let extension = Client::connect_as(server.local_addr(), "extension").expect("connect");

    let batch = ClickBatch {
        user: UserId(7),
        clicks: vec![
            Click {
                user: UserId(7),
                day: 1,
                tick: 10,
                url: "http://news.example/a".into(),
                referrer: None,
            },
            Click {
                user: UserId(7),
                day: 1,
                tick: 11,
                url: "http://news.example/b".into(),
                referrer: Some("http://news.example/a".into()),
            },
            // Forged cookie: must be rejected server-side.
            Click {
                user: UserId(9),
                day: 1,
                tick: 12,
                url: "http://evil.example/".into(),
                referrer: None,
            },
        ],
    };
    let json_bytes = batch.wire_size() as u64;
    let receipt = extension.upload_clicks(batch).expect("upload");
    assert_eq!(receipt.user, UserId(7));
    assert_eq!(receipt.accepted, 2);
    assert_eq!(receipt.rejected, 1);
    // The receipt accounts the actual frame bytes; the default client
    // codec is compressed v2 binary, far below the JSON rendering.
    // (Exact frame-size equality is covered in serde_wire.rs, where the
    // test controls the correlation id.)
    assert!(
        receipt.wire_bytes > 0 && receipt.wire_bytes < json_bytes,
        "receipt reports frame bytes ({}) not JSON size ({json_bytes})",
        receipt.wire_bytes
    );
    assert_eq!(receipt.total_stored, 2);

    let store = server.click_store();
    let store = store.lock();
    assert_eq!(store.len(), 2);
    assert_eq!(store.clicks_of(UserId(7)).len(), 2);
    assert!(store.clicks_of(UserId(9)).is_empty());

    server.shutdown();
}

/// Durable click store end to end: upload over the wire, stop the
/// daemon, restart it on the same `--data-dir`, and the recovered totals
/// show up in `Response::Stats` while a fresh upload continues the
/// `total_stored` count where the previous process left off.
#[test]
fn restart_recovers_click_store_and_continues_counting() {
    let dir = common::TempDir::new("restart");
    let batch = |user: u32, base_tick: u64| ClickBatch {
        user: UserId(user),
        clicks: (0..5)
            .map(|i| Click {
                user: UserId(user),
                day: 1,
                tick: base_tick + i,
                url: format!("http://host{user}.example/p{}", base_tick + i),
                referrer: None,
            })
            .collect(),
    };

    // First daemon lifetime: 3 acknowledged uploads.
    {
        let server = BrokerServer::builder()
            .data_dir(dir.path())
            .bind("127.0.0.1:0")
            .expect("bind with data dir");
        let extension = Client::connect_as(server.local_addr(), "ext").expect("connect");
        for (user, base) in [(1u32, 0u64), (2, 100), (1, 200)] {
            let receipt = extension.upload_clicks(batch(user, base)).expect("upload");
            assert_eq!(receipt.accepted, 5);
        }
        let stats = extension.stats().expect("stats");
        assert_eq!(
            stats.wire.recovered_clicks, 0,
            "fresh dir: nothing recovered"
        );
        assert!(stats.wire.wal_bytes > 0, "uploads landed in the WAL");
        server.shutdown();
    }

    // Second lifetime on the same directory: everything is back.
    let server = BrokerServer::builder()
        .data_dir(dir.path())
        .bind("127.0.0.1:0")
        .expect("rebind with data dir");
    {
        let store = server.click_store();
        let store = store.lock();
        assert_eq!(store.len(), 15);
        assert_eq!(store.clicks_of(UserId(1)).len(), 10);
        assert_eq!(store.clicks_of(UserId(2)).len(), 5);
    }
    let extension = Client::connect_as(server.local_addr(), "ext").expect("reconnect");
    let stats = extension.stats().expect("stats after restart");
    assert_eq!(stats.wire.recovered_clicks, 15, "{:?}", stats.wire);
    assert_eq!(
        stats.wire.wal_truncated_bytes, 0,
        "clean shutdown, no torn tail"
    );

    // A fresh upload continues the recovered count.
    let receipt = extension.upload_clicks(batch(3, 300)).expect("upload");
    assert_eq!(receipt.total_stored, 20, "continues the recovered total");
    server.shutdown();
}

/// Error paths travel the wire without poisoning the connection, and a
/// connection cannot unsubscribe someone else's subscription.
#[test]
fn remote_errors_are_reported_and_survivable() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let a = Client::connect_as(server.local_addr(), "a").expect("connect");
    let b = Client::connect_as(server.local_addr(), "b").expect("connect");

    let sub = a.subscribe(Filter::topic("x")).expect("subscribe");

    // b does not own a's subscription.
    match b.unsubscribe(sub) {
        Err(WireError::Remote(message)) => {
            assert!(message.contains("not owned"), "got: {message}")
        }
        other => panic!("expected remote error, got {other:?}"),
    }

    // The failed request did not corrupt b's connection.
    b.ping().expect("connection still usable");
    b.publish(Event::topical("x", "still flowing"))
        .expect("publish");
    assert!(a.recv_delivery(WAIT).is_some());

    assert!(server.stats().errors >= 1);
    server.shutdown();
}

/// The acceptance scenario for wire protocol v2: a v1 (JSON) client and
/// a v2 (binary) client interoperate against one daemon, the server's
/// per-codec counters see both codecs, and the binary encoding of the
/// same publish is strictly smaller than the JSON one.
#[test]
fn v1_and_v2_clients_interoperate_on_one_daemon() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let legacy = Client::builder()
        .name("legacy-v1")
        .codec(CodecKind::Json)
        .connect(server.local_addr())
        .expect("connect v1");
    let modern = Client::builder()
        .name("modern-v2")
        .codec(CodecKind::Binary)
        .connect(server.local_addr())
        .expect("connect v2");
    assert_eq!(legacy.codec(), CodecKind::Json);
    assert_eq!(modern.codec(), CodecKind::Binary);

    // Both directions across the codec boundary.
    legacy.subscribe(Filter::topic("mixed")).expect("v1 sub");
    modern.subscribe(Filter::topic("mixed")).expect("v2 sub");
    let out = modern
        .publish(Event::topical("mixed", "from-v2"))
        .expect("v2 publish");
    assert_eq!(out.delivered, 2);
    let out = legacy
        .publish(Event::topical("mixed", "from-v1"))
        .expect("v1 publish");
    assert_eq!(out.delivered, 2);
    for client in [&legacy, &modern] {
        let mut bodies: Vec<String> = (0..2)
            .map(|_| {
                client
                    .recv_delivery(WAIT)
                    .expect("delivery")
                    .event
                    .get("body")
                    .and_then(|v| v.as_str())
                    .expect("body attr")
                    .to_owned()
            })
            .collect();
        bodies.sort();
        assert_eq!(bodies, ["from-v1", "from-v2"]);
    }

    // The server labels each connection with its negotiated codec.
    let conns = server.connection_stats();
    let by_name = |name: &str| {
        conns
            .iter()
            .find(|c| c.client == name)
            .unwrap_or_else(|| panic!("connection {name} listed"))
    };
    assert_eq!(by_name("legacy-v1").codec, "json");
    assert_eq!(by_name("modern-v2").codec, "binary");

    // Byte accounting: publish the identical event once per codec and
    // compare the per-connection ingress deltas — exactly one frame each.
    let event = Event::builder()
        .attr("topic", "mixed")
        .attr("price", 12.5)
        .attr("volume", 90_000)
        .build();
    let ingress = |name: &str| {
        let conn = server.connection_stats();
        let snap = &conn
            .iter()
            .find(|c| c.client == name)
            .expect("connection listed")
            .wire;
        (snap.frames_in, snap.bytes_in)
    };
    let before_v1 = ingress("legacy-v1");
    legacy.publish(event.clone()).expect("v1 publish");
    let after_v1 = ingress("legacy-v1");
    let before_v2 = ingress("modern-v2");
    modern.publish(event).expect("v2 publish");
    let after_v2 = ingress("modern-v2");
    assert_eq!(after_v1.0 - before_v1.0, 1, "one v1 frame");
    assert_eq!(after_v2.0 - before_v2.0, 1, "one v2 frame");
    let json_bytes = after_v1.1 - before_v1.1;
    let binary_bytes = after_v2.1 - before_v2.1;
    assert!(
        binary_bytes < json_bytes,
        "binary publish frame ({binary_bytes} B) must be strictly smaller than JSON ({json_bytes} B)"
    );

    // `Response::Stats` surfaces the per-codec split to any client.
    let stats = modern.stats().expect("stats over v2");
    assert!(stats.wire.json.frames_in >= 4, "{:?}", stats.wire.json);
    assert!(stats.wire.binary.frames_in >= 4, "{:?}", stats.wire.binary);
    assert!(stats.wire.json.bytes_in > 0 && stats.wire.binary.bytes_in > 0);
    assert_eq!(
        stats.wire.frames_in,
        stats.wire.json.frames_in + stats.wire.binary.frames_in,
        "codec split accounts for every frame"
    );

    legacy.close().expect("clean v1 close");
    modern.close().expect("clean v2 close");
    server.shutdown();
}

/// The pipelined client: a window of `publish_nowait` calls is on the
/// wire before any outcome is awaited, outcomes resolve by correlation
/// id, and interleaved blocking requests stay correctly paired.
#[test]
fn pipelined_publishes_resolve_out_of_band() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let subscriber = Client::connect_as(server.local_addr(), "sub").expect("connect");
    subscriber
        .subscribe(Filter::new().and("i", Op::Ge, 0))
        .expect("subscribe");
    let publisher = Client::connect_as(server.local_addr(), "pipeline").expect("connect");

    const WINDOW: i64 = 50;
    let mut pending = Vec::new();
    for i in 0..WINDOW {
        pending.push(
            publisher
                .publish_nowait(Event::builder().attr("i", i).build())
                .expect("publish_nowait"),
        );
    }
    // A blocking request issued mid-window must get *its* reply, not one
    // of the fifty publish outcomes.
    publisher.ping().expect("interleaved ping");
    let mut ids = Vec::new();
    for handle in pending {
        let outcome = handle.wait().expect("outcome");
        assert_eq!(outcome.delivered, 1);
        ids.push(outcome.id);
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), WINDOW as usize, "every publish got its own id");
    assert_eq!(publisher.in_flight(), 0, "window fully drained");

    // Every event arrived, in publish order.
    for i in 0..WINDOW {
        let got = subscriber.recv_delivery(WAIT).expect("delivery");
        assert_eq!(got.event.get("i").unwrap().as_i64(), Some(i));
    }
    server.shutdown();
}

/// Disconnecting a subscriber mid-stream deregisters it: publishes keep
/// succeeding and the server stays healthy.
#[test]
fn abrupt_disconnect_cleans_up() {
    let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
    let ghost = Client::connect_as(server.local_addr(), "ghost").expect("connect");
    ghost.subscribe(Filter::new()).expect("subscribe");
    assert_eq!(server.broker().subscriber_count(), 1);
    drop(ghost); // no Bye: socket just closes

    let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
    // Wait for the server to reap the ghost connection.
    let deadline = std::time::Instant::now() + WAIT;
    while server.broker().subscriber_count() > 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "ghost subscriber reaped"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let outcome = publisher
        .publish(Event::topical("x", "y"))
        .expect("publish");
    assert_eq!(outcome.delivered, 0);
    server.shutdown();
}

// --------------------------------------------------------------------------
// Slow-consumer eviction on the epoll transport: the event loop's own
// outbound buffers make a stalled subscriber deterministic without OS
// send-buffer tricks — once the socket and the loop's buffer are full,
// backpressure reaches the bounded broker queue and `--overflow` applies.

mod slow_consumer {
    use super::*;
    use reef::pubsub::{Broker, OverflowPolicy};
    use reef::wire::{ClientFrame, CodecKind, Frame, Request, TransportKind};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Instant;

    /// A raw socket that handshakes, subscribes to everything, and then
    /// never reads again — a genuinely stalled consumer ([`Client`] would
    /// keep draining the socket from its reader thread).
    fn stalled_subscriber(addr: std::net::SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).expect("connect stalled subscriber");
        let codec = CodecKind::Binary.codec();
        for (corr, request) in [
            (
                1,
                Request::Hello {
                    version: 2,
                    client: "stalled".to_owned(),
                },
            ),
            (
                2,
                Request::Subscribe {
                    filter: Filter::new(),
                },
            ),
        ] {
            codec
                .encode_client(&ClientFrame { corr, request })
                .expect("encode")
                .write_to(&mut stream)
                .expect("write");
            Frame::read_from(&mut stream)
                .expect("read reply")
                .expect("reply frame");
        }
        stream
    }

    /// Event payload used to saturate the delivery path quickly: 64 KiB
    /// per event means a handful of frames fill the kernel socket
    /// buffers, the loop's outbound buffer, and the broker queue.
    const PAD: usize = 64 * 1024;

    fn pad_event() -> Event {
        Event::builder().attr("pad", "x".repeat(PAD)).build()
    }

    /// Publish big events until `consecutive` publishes in a row report a
    /// drop — the point where socket buffer, loop outbound buffer and
    /// broker queue are all full and stay full. Returns how many
    /// publishes it took.
    fn flood_until_saturated(publisher: &Client, consecutive: u64) -> usize {
        let mut streak = 0;
        for i in 0..2000 {
            let out = publisher.publish(pad_event()).expect("publish");
            streak = if out.dropped > 0 { streak + 1 } else { 0 };
            if streak >= consecutive {
                return i + 1;
            }
        }
        panic!("no sustained drops after 2000 publishes");
    }

    /// drop-new: a stalled subscriber fills socket buffer → loop outbound
    /// buffer → bounded broker queue, then publishes report drops — and
    /// once nothing moves for the write timeout, the connection is
    /// evicted and counted.
    #[test]
    fn stalled_subscriber_drops_new_then_is_evicted() {
        let server = BrokerServer::builder()
            .transport(TransportKind::Epoll)
            .queue_capacity(4)
            .overflow(OverflowPolicy::DropAndCount)
            .write_timeout(Duration::from_millis(500))
            .bind("127.0.0.1:0")
            .expect("bind");
        let stalled = stalled_subscriber(server.local_addr());
        let publisher = Client::connect_as(server.local_addr(), "flooder").expect("connect");

        flood_until_saturated(&publisher, 5);
        assert!(
            server.broker().stats().drops > 0,
            "queue overflow surfaced in broker stats"
        );

        // Keep a trickle of publishes flowing so the outbound buffer
        // stays pending; with the consumer stalled, those bytes make no
        // progress and the write-timeout sweep evicts the connection.
        let deadline = Instant::now() + Duration::from_secs(15);
        while server.connection_count() > 1 {
            assert!(Instant::now() < deadline, "stalled connection evicted");
            let _ = publisher.publish(pad_event());
            std::thread::sleep(Duration::from_millis(20));
        }
        let wire = server.stats();
        assert!(
            wire.delivery_drops >= 1,
            "eviction counted as a delivery drop: {wire:?}"
        );
        assert!(wire.loop_wakeups > 0, "event loop accounted wakeups");
        drop(stalled);
        server.shutdown();
    }

    /// A pipelined burst of small publishes lands several deliveries on
    /// the subscriber's queue within one loop iteration; the loop encodes
    /// them into one outbound buffer and flushes them together, counted
    /// as a coalesced write.
    #[test]
    fn pipelined_fanout_coalesces_writes() {
        let server = BrokerServer::builder()
            .transport(TransportKind::Epoll)
            .bind("127.0.0.1:0")
            .expect("bind");
        let subscriber = Client::connect_as(server.local_addr(), "sub").expect("connect");
        subscriber.subscribe(Filter::new()).expect("subscribe");
        let publisher = Client::connect_as(server.local_addr(), "burst").expect("connect");

        let mut received = 0usize;
        for _round in 0..10 {
            let pending: Vec<_> = (0..50)
                .map(|i| {
                    publisher
                        .publish_nowait(Event::builder().attr("i", i).build())
                        .expect("publish_nowait")
                })
                .collect();
            for handle in pending {
                handle.wait().expect("outcome");
            }
            while subscriber.recv_delivery(WAIT).is_some() {
                received += 1;
                if received.is_multiple_of(50) {
                    break;
                }
            }
            if server.stats().writes_coalesced > 0 {
                break;
            }
        }
        assert!(
            server.stats().writes_coalesced > 0,
            "no burst coalesced: {:?}",
            server.stats()
        );
        server.shutdown();
    }

    /// drop-old: the eviction policy keeps the queue at capacity while
    /// counting one drop per displaced event; the connection survives
    /// while its socket still makes progress.
    #[test]
    fn stalled_subscriber_drop_old_counts_evictions() {
        let server = BrokerServer::builder()
            .transport(TransportKind::Epoll)
            .queue_capacity(4)
            .overflow(OverflowPolicy::DropOldest)
            .write_timeout(Duration::from_secs(30))
            .bind("127.0.0.1:0")
            .expect("bind");
        let stalled = stalled_subscriber(server.local_addr());
        let publisher = Client::connect_as(server.local_addr(), "flooder").expect("connect");

        flood_until_saturated(&publisher, 5);
        let broker = server.broker().stats();
        assert!(broker.drops > 0, "evictions counted: {broker:?}");
        // Under drop-old every publish still lands on the queue.
        assert!(
            broker.deliveries > broker.drops,
            "newest events kept: {broker:?}"
        );
        assert_eq!(server.connection_count(), 2, "no eviction yet");
        drop(stalled);
        server.shutdown();
    }

    /// block: with the queue full and the consumer stalled, a publish
    /// waits out the broker's block timeout on a real socket and then
    /// reports the drop.
    #[test]
    fn stalled_subscriber_block_policy_times_out() {
        let block_timeout = Duration::from_millis(150);
        let broker = Arc::new(
            Broker::builder()
                .queue_capacity(1)
                .overflow(OverflowPolicy::Block)
                .block_timeout(block_timeout)
                .build(),
        );
        let server = BrokerServer::builder()
            .transport(TransportKind::Epoll)
            .broker(broker)
            .write_timeout(Duration::from_secs(30))
            .bind("127.0.0.1:0")
            .expect("bind");
        let stalled = stalled_subscriber(server.local_addr());
        let publisher = Client::connect_as(server.local_addr(), "flooder").expect("connect");

        flood_until_saturated(&publisher, 5);
        // Saturated: a publish that finds the queue still full must wait
        // out the block timeout before giving the event up. (TCP window
        // autotuning can open a slot between publishes, letting one
        // through instantly; retry until one actually blocks.)
        let deadline = Instant::now() + Duration::from_secs(10);
        let elapsed = loop {
            let start = Instant::now();
            let out = publisher.publish(pad_event()).expect("publish");
            if out.dropped == 1 {
                break start.elapsed();
            }
            assert!(Instant::now() < deadline, "saturation never re-reached");
        };
        assert!(
            elapsed >= block_timeout - Duration::from_millis(30),
            "publish waited out the block timeout, took {elapsed:?}"
        );
        drop(stalled);
        server.shutdown();
    }

    /// The threaded transport still serves the identical protocol — the
    /// `--transport` flag changes scheduling, not semantics.
    #[test]
    fn threads_transport_smoke() {
        let server = BrokerServer::builder()
            .transport(TransportKind::Threads)
            .bind("127.0.0.1:0")
            .expect("bind");
        assert_eq!(server.transport(), TransportKind::Threads);
        let subscriber = Client::connect_as(server.local_addr(), "sub").expect("connect");
        subscriber.subscribe(Filter::topic("t")).expect("subscribe");
        let publisher = Client::connect_as(server.local_addr(), "pub").expect("connect");
        let out = publisher
            .publish(Event::topical("t", "body"))
            .expect("publish");
        assert_eq!(out.delivered, 1);
        assert!(subscriber.recv_delivery(WAIT).is_some());
        let wire = server.stats();
        assert_eq!(wire.loop_wakeups, 0, "no event loop under threads");
        server.shutdown();
    }
}
