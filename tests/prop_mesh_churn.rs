//! Mesh self-stabilization under churn: on the simulated transport, a
//! mesh overlay whose links are killed and re-joined at random must keep
//! delivering events **exactly once** to every subscriber whose broker is
//! reachable from the publisher in the *current* link graph, deliver
//! nothing to unreachable brokers, and converge to a routing state that a
//! further refresh round no longer changes.

use proptest::prelude::*;
use reef::pubsub::{ClientId, Event, Filter, NodeId, Overlay, TOPIC_ATTR};
use std::collections::BTreeSet;

const BROKERS: usize = 4;

/// One churn step: flip a link, then publish from one broker.
#[derive(Debug, Clone)]
struct Step {
    /// Edge to toggle, as an index into the distinct unordered pairs of
    /// `BROKERS` brokers (kill it when present, join it when absent).
    edge: usize,
    /// Broker whose client publishes after the flip settles.
    publisher: usize,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let pairs = BROKERS * (BROKERS - 1) / 2;
    prop::collection::vec(
        (0..pairs, 0..BROKERS).prop_map(|(edge, publisher)| Step { edge, publisher }),
        1..12,
    )
}

/// All distinct unordered broker pairs, the edge universe churn picks from.
fn edge_universe() -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for a in 0..BROKERS {
        for b in (a + 1)..BROKERS {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Brokers reachable from `from` over the current undirected edge set.
fn reachable(edges: &BTreeSet<(usize, usize)>, from: usize) -> BTreeSet<usize> {
    let mut seen = BTreeSet::from([from]);
    let mut frontier = vec![from];
    while let Some(node) = frontier.pop() {
        for &(a, b) in edges {
            let next = match () {
                _ if a == node => b,
                _ if b == node => a,
                _ => continue,
            };
            if seen.insert(next) {
                frontier.push(next);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mesh_survives_link_churn_with_exactly_once_delivery(steps in arb_steps()) {
        let universe = edge_universe();
        let mut overlay = Overlay::new_mesh();
        let brokers: Vec<NodeId> = (0..BROKERS).map(|_| overlay.add_broker()).collect();
        let clients: Vec<ClientId> = brokers
            .iter()
            .map(|b| overlay.attach_client(*b).expect("attach"))
            .collect();
        for client in &clients {
            overlay
                .subscribe(*client, Filter::topic("churn"))
                .expect("subscribe");
        }

        // Start from a ring: every broker reachable, every route redundant.
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for i in 0..BROKERS {
            let (a, b) = (i.min((i + 1) % BROKERS), i.max((i + 1) % BROKERS));
            overlay.link(brokers[a], brokers[b], 1).expect("ring link");
            edges.insert((a, b));
        }
        overlay.run_until_idle();

        for (round, step) in steps.iter().enumerate() {
            // Churn: kill the edge if it is up, join it if it is down.
            let (a, b) = universe[step.edge];
            if edges.remove(&(a, b)) {
                overlay.unlink(brokers[a], brokers[b]).expect("unlink");
            } else {
                overlay.link(brokers[a], brokers[b], 1).expect("link");
                edges.insert((a, b));
            }
            // Let the withdrawal/advertisement wave settle, then run one
            // refresh round — the self-stabilization path a real daemon
            // drives on a timer.
            overlay.run_until_idle();
            overlay.refresh_all();
            overlay.run_until_idle();

            // Oracle: exactly-once to reachable brokers, nothing elsewhere.
            let body = format!("round-{round}");
            overlay
                .publish(clients[step.publisher], Event::topical("churn", &body))
                .expect("publish");
            overlay.run_until_idle();
            let expect = reachable(&edges, step.publisher);
            for (i, client) in clients.iter().enumerate() {
                let got = overlay.take_delivered(*client).expect("take");
                let copies = got
                    .iter()
                    .filter(|p| p.event.get("body").and_then(|v| v.as_str()) == Some(&body))
                    .count();
                let want = usize::from(expect.contains(&i));
                prop_assert_eq!(
                    copies,
                    want,
                    "round {}: broker {} got {} copies, expected {} (publisher {}, edges {:?})",
                    round,
                    i,
                    copies,
                    want,
                    step.publisher,
                    edges
                );
                prop_assert!(
                    got.iter().all(|p| {
                        p.event.get(TOPIC_ATTR).and_then(|v| v.as_str()) == Some("churn")
                    }),
                    "round {}: broker {} received a non-matching event",
                    round,
                    i
                );
            }
        }

        // Convergence: once churn stops, a further refresh round is a
        // no-op — routing tables and gauges no longer move.
        overlay.refresh_all();
        overlay.run_until_idle();
        let settled: Vec<usize> = brokers
            .iter()
            .map(|b| overlay.routing_entries_at(*b).expect("entries"))
            .collect();
        let alternates = overlay.mesh_alternates();
        overlay.refresh_all();
        overlay.run_until_idle();
        let again: Vec<usize> = brokers
            .iter()
            .map(|b| overlay.routing_entries_at(*b).expect("entries"))
            .collect();
        prop_assert_eq!(settled, again, "routing tables moved on an idle refresh");
        prop_assert_eq!(
            alternates,
            overlay.mesh_alternates(),
            "alternate-route count moved on an idle refresh"
        );
    }
}
