//! Helpers shared by the integration tests (not itself a test target).

#![allow(dead_code)] // each test binary uses a subset

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temporary directory, removed on drop.
pub struct TempDir(PathBuf);

impl TempDir {
    /// Create `$TMPDIR/reef-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("reef-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The WAL segment files under `dir`, sorted by name (= by sequence).
pub fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read data dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    files.sort();
    files
}
