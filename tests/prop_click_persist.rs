//! WAL round-trip equivalence: any sequence of `ingest_upload` calls,
//! replayed from disk through any segment-size and snapshot-cadence
//! configuration, yields a `ClickStore` with contents identical to the
//! purely in-memory ingestion of the same sequence — per-user click
//! logs, per-host statistics, every derived index (`ClickStore`'s
//! `PartialEq` compares them all, order-insensitively where the store
//! itself is order-insensitive).

mod common;

use common::TempDir;
use proptest::prelude::*;
use reef::attention::{Click, ClickBatch, ClickStore, DurableClickStore, PersistConfig};
use reef::simweb::UserId;

/// Printable-ASCII plus a few multi-byte URLs, so prefix handling and
/// UTF-8 boundaries get exercised on the disk path too.
fn arb_url() -> impl Strategy<Value = String> {
    prop_oneof![
        "[ -~]{0,24}",
        "[a-z]{1,6}".prop_map(|s| format!("http://{s}.example/päge/ünïcode")),
    ]
}

fn arb_batch() -> impl Strategy<Value = ClickBatch> {
    (
        0u32..4,
        prop::collection::vec(
            (
                0u32..6, // click user: may disagree with the batch user (rejected)
                any::<u32>(),
                any::<u64>(),
                arb_url(),
                proptest::option::of(arb_url()),
            ),
            0..5,
        ),
    )
        .prop_map(|(user, clicks)| ClickBatch {
            user: UserId(user),
            clicks: clicks
                .into_iter()
                .map(|(user, day, tick, url, referrer)| Click {
                    user: UserId(user),
                    day,
                    tick,
                    url,
                    referrer,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wal_replay_equals_in_memory_ingestion(
        batches in prop::collection::vec(arb_batch(), 1..12),
        segment_bytes in 64u64..4096,
        snapshot_every in 0u64..5,
    ) {
        let dir = TempDir::new("wal-roundtrip");
        let cfg = PersistConfig {
            dir: dir.path().to_path_buf(),
            segment_bytes,
            snapshot_every,
        };

        // Ingest the identical sequence in memory (the oracle) and
        // through the WAL.
        let mut oracle = ClickStore::new();
        {
            let mut durable = DurableClickStore::open(cfg.clone()).map_err(|e| {
                TestCaseError::fail(e.to_string())
            })?;
            for batch in &batches {
                let want = oracle.ingest_upload(batch.clone());
                let got = durable
                    .ingest_upload(batch.clone())
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(got, want, "receipts must agree batch by batch");
            }
            prop_assert_eq!(durable.store(), &oracle, "live store matches before restart");
        }

        // First recovery: identical contents, full click count restored.
        let reopened = DurableClickStore::open(cfg.clone())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reopened.store(), &oracle);
        prop_assert_eq!(reopened.persist_stats().recovered_clicks, oracle.len());
        prop_assert_eq!(reopened.persist_stats().truncated_bytes, 0);
        drop(reopened);

        // Recovery is idempotent: a second restart changes nothing.
        let again = DurableClickStore::open(cfg)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(again.store(), &oracle);
    }
}
