//! Transport-equivalence property: the sans-io `BrokerNode` routing core
//! must behave identically no matter which transport carries its
//! `PeerMsg`s. For the same scripted workload on the same 3-broker chain,
//! the `SimTransport`-backed `Overlay` (virtual time, in-process) and a
//! federation of real `BrokerServer`s over TCP (`TcpTransport`) must
//! converge to the same routing-table sizes and deliver the same event
//! sets to the same clients.

use proptest::prelude::*;
use reef::pubsub::{ClientId, Event, Filter, Op, Overlay, Value};
use reef::wire::{BrokerServer, Client, TransportKind};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);
const ATTRS: [&str; 3] = ["x", "y", "z"];

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop::collection::vec((0usize..3, 0usize..4, -2i64..3), 0..3).prop_map(|preds| {
        let mut f = Filter::new();
        for (attr, op, val) in preds {
            let op = [Op::Eq, Op::Ne, Op::Lt, Op::Gt][op];
            f = f.and(ATTRS[attr], op, val);
        }
        f
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::vec((0usize..3, -2i64..3), 1..4).prop_map(|pairs| {
        let mut e = Event::new();
        for (attr, val) in pairs {
            e.set(ATTRS[attr], Value::from(val));
        }
        e
    })
}

type Multiset = BTreeMap<String, usize>;

fn into_multiset(events: impl IntoIterator<Item = Event>) -> Multiset {
    let mut out = Multiset::new();
    for event in events {
        *out.entry(event.to_string()).or_insert(0) += 1;
    }
    out
}

/// Run one scripted workload — 4 clients, arbitrary subscriptions,
/// arbitrary publishes — against a single daemon on the given transport
/// and return each client's delivered event multiset.
fn run_single_daemon(
    transport: TransportKind,
    loop_threads: usize,
    subs: &[(usize, Filter)],
    events: &[(usize, Event)],
) -> Vec<Multiset> {
    const CLIENTS: usize = 4;
    let mut builder = BrokerServer::builder().transport(transport);
    if matches!(transport, TransportKind::Epoll) {
        builder = builder.loop_threads(loop_threads);
    }
    let server = builder.bind("127.0.0.1:0").expect("bind");
    let clients: Vec<Client> = (0..CLIENTS)
        .map(|i| {
            Client::connect_as(server.local_addr(), &format!("shard-eq-{i}")).expect("connect")
        })
        .collect();
    for (client, filter) in subs {
        clients[*client % CLIENTS]
            .subscribe(filter.clone())
            .expect("subscribe");
    }
    // The publish reply carries how many subscriber queues matched, so the
    // exact total delivery count is known up front — no settle heuristics.
    let mut expected_total = 0usize;
    for (publisher, event) in events {
        let outcome = clients[*publisher % CLIENTS]
            .publish(event.clone())
            .expect("publish");
        expected_total += outcome.delivered as usize;
    }
    let mut got: Vec<Vec<Event>> = vec![Vec::new(); CLIENTS];
    let deadline = Instant::now() + WAIT;
    while got.iter().map(Vec::len).sum::<usize>() < expected_total && Instant::now() < deadline {
        for (i, client) in clients.iter().enumerate() {
            while let Some(delivery) = client.recv_delivery(Duration::from_millis(5)) {
                got[i].push(delivery.event);
            }
        }
    }
    // Grace pass: a transport bug that over-delivers shows up as extras.
    for (i, client) in clients.iter().enumerate() {
        if let Some(extra) = client.recv_delivery(Duration::from_millis(25)) {
            got[i].push(extra.event);
        }
    }
    drop(clients);
    server.shutdown();
    got.into_iter().map(into_multiset).collect()
}

proptest! {
    // Each case spins up three real TCP daemons; keep the case count low
    // enough that the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharding must be invisible to delivery semantics: the same
    /// workload through a 4-shard epoll daemon and through the threaded
    /// transport (the oracle — one reader plus one pump thread per
    /// connection, no shared loops) must hand every client the same
    /// event multiset, regardless of which shard each socket hashed to.
    #[test]
    fn sharded_epoll_delivers_same_sets_as_threaded(
        subs in prop::collection::vec((0usize..4, arb_filter()), 1..8),
        events in prop::collection::vec((0usize..4, arb_event()), 1..8),
    ) {
        let threaded = run_single_daemon(TransportKind::Threads, 0, &subs, &events);
        let sharded = run_single_daemon(TransportKind::Epoll, 4, &subs, &events);
        prop_assert_eq!(
            &sharded, &threaded,
            "per-client deliveries diverge between 4-shard epoll and threaded transports"
        );
    }

    #[test]
    fn sim_and_tcp_transports_deliver_identical_event_sets(
        covering in any::<bool>(),
        subs in prop::collection::vec((0usize..3, arb_filter()), 1..6),
        events in prop::collection::vec((0usize..3, arb_event()), 1..8),
    ) {
        // --- Oracle: the SimTransport-backed Overlay on a 3-chain. ---
        let mut overlay = Overlay::new(covering);
        let sim_brokers: Vec<_> = (0..3).map(|_| overlay.add_broker()).collect();
        overlay.link(sim_brokers[0], sim_brokers[1], 1).expect("link");
        overlay.link(sim_brokers[1], sim_brokers[2], 1).expect("link");
        let sim_clients: Vec<ClientId> = sim_brokers
            .iter()
            .map(|b| overlay.attach_client(*b).expect("attach"))
            .collect();
        for (client, filter) in &subs {
            overlay.subscribe(sim_clients[*client], filter.clone()).expect("subscribe");
        }
        overlay.run_until_idle();
        let sim_entries: Vec<usize> = sim_brokers
            .iter()
            .map(|b| overlay.routing_entries_at(*b).expect("entries"))
            .collect();
        for (publisher, event) in &events {
            overlay.publish(sim_clients[*publisher], event.clone()).expect("publish");
        }
        overlay.run_until_idle();
        let expected: Vec<Multiset> = sim_clients
            .iter()
            .map(|c| {
                into_multiset(
                    overlay
                        .take_delivered(*c)
                        .expect("delivered")
                        .into_iter()
                        .map(|p| p.event),
                )
            })
            .collect();

        // --- Same workload over TCP: three federated daemons. ---
        let a = BrokerServer::builder().name("eq-a").covering(covering)
            .bind("127.0.0.1:0").expect("bind a");
        let b = BrokerServer::builder().name("eq-b").covering(covering)
            .peer(a.local_addr().to_string()).bind("127.0.0.1:0").expect("bind b");
        let c = BrokerServer::builder().name("eq-c").covering(covering)
            .peer(b.local_addr().to_string()).bind("127.0.0.1:0").expect("bind c");
        let servers = [&a, &b, &c];
        let clients: Vec<Client> = servers
            .iter()
            .enumerate()
            .map(|(i, s)| Client::connect_as(s.local_addr(), &format!("eq-client-{i}")).expect("connect"))
            .collect();
        for (client, filter) in &subs {
            clients[*client].subscribe(filter.clone()).expect("subscribe");
        }
        // Settle: routing-entry counts must reach the sim's final state
        // AND the federation must be quiescent. Matching counts alone are
        // not enough: a covering replacement (SubFwd + UnsubFwd) keeps a
        // downstream broker's entry count constant while its *content* is
        // still in flight, and an event published in that window is
        // (correctly) not forwarded — so wait until advertisement
        // traffic stops moving too.
        let deadline = Instant::now() + WAIT;
        let fingerprint = || -> Vec<u64> {
            servers
                .iter()
                .flat_map(|s| {
                    let fed = s.federation_stats();
                    [
                        fed.routing_entries,
                        fed.advertisements,
                        fed.subs_forwarded,
                        fed.json.frames_in,
                        fed.json.frames_out,
                        fed.binary.frames_in,
                        fed.binary.frames_out,
                    ]
                })
                .collect()
        };
        let mut last = fingerprint();
        let mut stable = 0u32;
        loop {
            std::thread::sleep(Duration::from_millis(5));
            let now = fingerprint();
            let entries: Vec<usize> = now.iter().step_by(7).map(|&e| e as usize).collect();
            if entries == sim_entries && now == last {
                stable += 1;
                // ~50 ms with no advertisement traffic: quiesced.
                if stable >= 10 {
                    break;
                }
            } else {
                stable = 0;
            }
            last = now;
            prop_assert!(
                Instant::now() < deadline,
                "routing tables never converged: tcp {entries:?} vs sim {sim_entries:?} (covering={covering})"
            );
        }
        for (publisher, event) in &events {
            clients[*publisher].publish(event.clone()).expect("publish");
        }
        // Collect deliveries until each client saw what the oracle
        // predicts (or the deadline passes).
        for (i, client) in clients.iter().enumerate() {
            let want = &expected[i];
            let want_total: usize = want.values().sum();
            let mut got = Vec::new();
            let deadline = Instant::now() + WAIT;
            while got.len() < want_total && Instant::now() < deadline {
                if let Some(delivery) = client.recv_delivery(Duration::from_millis(50)) {
                    got.push(delivery.event);
                }
            }
            // A short grace period catches spurious extra deliveries.
            if let Some(extra) = client.recv_delivery(Duration::from_millis(50)) {
                got.push(extra.event);
            }
            let got = into_multiset(got);
            prop_assert_eq!(
                &got, want,
                "client {} deliveries diverge between transports (covering={})",
                i, covering
            );
        }
        drop(clients);
        c.shutdown();
        b.shutdown();
        a.shutdown();
    }

    /// The same equivalence on a *cyclic* topology: a 3-broker mesh ring
    /// (path-vector routing, duplicate suppression, redundant paths)
    /// must deliver the same event multisets over SimTransport and TCP.
    #[test]
    fn sim_and_tcp_mesh_rings_deliver_identical_event_sets(
        subs in prop::collection::vec((0usize..3, arb_filter()), 1..6),
        events in prop::collection::vec((0usize..3, arb_event()), 1..8),
    ) {
        // The TCP federation aggregates identical filters placed through
        // the same daemon into one advertisement; the sim overlay keeps
        // them distinct. Dedup the workload so routing-entry counts are
        // comparable across transports.
        let mut seen = std::collections::BTreeSet::new();
        let subs: Vec<(usize, Filter)> = subs
            .into_iter()
            .filter(|(client, filter)| seen.insert((*client, filter.to_string())))
            .collect();

        // --- Oracle: the SimTransport-backed mesh Overlay on a ring. ---
        let mut overlay = Overlay::new_mesh();
        let sim_brokers: Vec<_> = (0..3).map(|_| overlay.add_broker()).collect();
        overlay.link(sim_brokers[0], sim_brokers[1], 1).expect("link");
        overlay.link(sim_brokers[1], sim_brokers[2], 1).expect("link");
        overlay.link(sim_brokers[2], sim_brokers[0], 1).expect("link");
        let sim_clients: Vec<ClientId> = sim_brokers
            .iter()
            .map(|b| overlay.attach_client(*b).expect("attach"))
            .collect();
        for (client, filter) in &subs {
            overlay.subscribe(sim_clients[*client], filter.clone()).expect("subscribe");
        }
        overlay.run_until_idle();
        let sim_entries: Vec<usize> = sim_brokers
            .iter()
            .map(|b| overlay.routing_entries_at(*b).expect("entries"))
            .collect();
        for (publisher, event) in &events {
            overlay.publish(sim_clients[*publisher], event.clone()).expect("publish");
        }
        overlay.run_until_idle();
        let expected: Vec<Multiset> = sim_clients
            .iter()
            .map(|c| {
                into_multiset(
                    overlay
                        .take_delivered(*c)
                        .expect("delivered")
                        .into_iter()
                        .map(|p| p.event),
                )
            })
            .collect();

        // --- Same workload over TCP: a ring of --mesh daemons. ---
        let a = BrokerServer::builder().name("meq-a").mesh(true)
            .bind("127.0.0.1:0").expect("bind a");
        let b = BrokerServer::builder().name("meq-b").mesh(true)
            .peer(a.local_addr().to_string()).bind("127.0.0.1:0").expect("bind b");
        let c = BrokerServer::builder().name("meq-c").mesh(true)
            .peer(a.local_addr().to_string())
            .peer(b.local_addr().to_string())
            .bind("127.0.0.1:0").expect("bind c");
        let servers = [&a, &b, &c];
        let clients: Vec<Client> = servers
            .iter()
            .enumerate()
            .map(|(i, s)| Client::connect_as(s.local_addr(), &format!("meq-client-{i}")).expect("connect"))
            .collect();
        for (client, filter) in &subs {
            clients[*client].subscribe(filter.clone()).expect("subscribe");
        }
        // Settle exactly like the chain variant: counts match the sim AND
        // advertisement traffic has stopped moving.
        let deadline = Instant::now() + WAIT;
        let fingerprint = || -> Vec<u64> {
            servers
                .iter()
                .flat_map(|s| {
                    let fed = s.federation_stats();
                    [
                        fed.routing_entries,
                        fed.advertisements,
                        fed.subs_forwarded,
                        fed.json.frames_in,
                        fed.json.frames_out,
                        fed.binary.frames_in,
                        fed.binary.frames_out,
                    ]
                })
                .collect()
        };
        let mut last = fingerprint();
        let mut stable = 0u32;
        loop {
            std::thread::sleep(Duration::from_millis(5));
            let now = fingerprint();
            let entries: Vec<usize> = now.iter().step_by(7).map(|&e| e as usize).collect();
            if entries == sim_entries && now == last {
                stable += 1;
                if stable >= 10 {
                    break;
                }
            } else {
                stable = 0;
            }
            last = now;
            prop_assert!(
                Instant::now() < deadline,
                "mesh routing tables never converged: tcp {entries:?} vs sim {sim_entries:?}"
            );
        }
        for (publisher, event) in &events {
            clients[*publisher].publish(event.clone()).expect("publish");
        }
        for (i, client) in clients.iter().enumerate() {
            let want = &expected[i];
            let want_total: usize = want.values().sum();
            let mut got = Vec::new();
            let deadline = Instant::now() + WAIT;
            while got.len() < want_total && Instant::now() < deadline {
                if let Some(delivery) = client.recv_delivery(Duration::from_millis(50)) {
                    got.push(delivery.event);
                }
            }
            // The grace period is where a duplicate-suppression bug would
            // surface: the ring's second copy arriving as an extra event.
            if let Some(extra) = client.recv_delivery(Duration::from_millis(50)) {
                got.push(extra.event);
            }
            let got = into_multiset(got);
            prop_assert_eq!(
                &got, want,
                "client {} deliveries diverge between mesh transports",
                i
            );
        }
        drop(clients);
        c.shutdown();
        b.shutdown();
        a.shutdown();
    }
}
