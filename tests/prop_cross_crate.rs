//! Property-based tests spanning crates.

use proptest::prelude::*;
use reef::attention::{Click, ClickStore};
use reef::feeds::{parse_feed, write_feed, Feed, FeedFormat, FeedItem};
use reef::simweb::UserId;
use reef::textindex::{porter_stem, Tokenizer};

fn arb_item() -> impl Strategy<Value = FeedItem> {
    (
        "[a-z0-9]{1,12}",
        "[ -~]{0,40}",
        "[a-z:/.0-9]{0,30}",
        "[ -~]{0,60}",
        proptest::option::of(0u32..1000),
    )
        .prop_map(|(guid, title, link, description, published_day)| FeedItem {
            guid,
            title,
            link,
            description,
            published_day,
        })
}

fn arb_feed() -> impl Strategy<Value = Feed> {
    (
        "[ -~]{0,30}",
        "[a-z:/.0-9]{0,30}",
        "[ -~]{0,40}",
        prop::collection::vec(arb_item(), 0..6),
    )
        .prop_map(|(title, link, description, items)| Feed {
            title,
            link,
            description,
            items,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any feed serializes to XML that parses back to the same feed, in
    /// every dialect — arbitrary printable text included.
    #[test]
    fn feed_round_trips_all_dialects(feed in arb_feed()) {
        for format in [FeedFormat::Rss2, FeedFormat::Atom, FeedFormat::Rdf] {
            let xml = write_feed(&feed, format);
            let (sniffed, parsed) = parse_feed(&xml)
                .map_err(|e| TestCaseError::fail(format!("{format}: {e}")))?;
            prop_assert_eq!(sniffed, format);
            prop_assert_eq!(parsed.title.trim(), feed.title.trim());
            prop_assert_eq!(parsed.items.len(), feed.items.len());
            for (a, b) in parsed.items.iter().zip(&feed.items) {
                prop_assert_eq!(a.title.trim(), b.title.trim());
                prop_assert_eq!(a.published_day, b.published_day);
            }
        }
    }

    /// The click store's aggregate counters always reconcile with the raw
    /// click stream.
    #[test]
    fn click_store_counters_reconcile(
        clicks in prop::collection::vec(
            (0u32..4, 0u32..30, "[a-z]{1,8}"),
            0..120,
        )
    ) {
        let mut store = ClickStore::new();
        for (i, (user, day, host)) in clicks.iter().enumerate() {
            store.insert(Click {
                user: UserId(*user),
                day: *day,
                tick: i as u64,
                url: format!("http://{host}.example/p{i}.html"),
                referrer: None,
            });
        }
        prop_assert_eq!(store.len(), clicks.len() as u64);
        let per_host_total: u64 = store.hosts().map(|(_, s)| s.visits).sum();
        prop_assert_eq!(per_host_total, clicks.len() as u64);
        let per_user_total: usize = store.users().map(|u| store.clicks_of(u).len()).sum();
        prop_assert_eq!(per_user_total, clicks.len());
        // Single-visit hosts have exactly one click.
        let singles: Vec<String> =
            store.single_visit_hosts().map(str::to_owned).collect();
        for host in singles {
            prop_assert_eq!(store.host(&host).map(|s| s.visits), Some(1));
        }
    }

    /// The stemmer never panics, never grows a word, and always emits
    /// lowercase ASCII. (Porter is deliberately *not* idempotent —
    /// "easee" → "ease" → "eas" — so no stability property is asserted.)
    #[test]
    fn stemmer_is_total_and_shrinking(word in "[a-zA-Z]{0,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(stem.chars().all(|c| c.is_ascii_lowercase()) || stem.is_empty());
        // Determinism.
        prop_assert_eq!(porter_stem(&word), stem);
    }

    /// Tokenization never yields stopwords or empty tokens, whatever the
    /// input.
    #[test]
    fn tokenizer_output_is_clean(text in "[ -~]{0,200}") {
        let tokenizer = Tokenizer::new();
        for token in tokenizer.tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(!reef::textindex::stopwords::is_stopword(&token));
        }
    }
}
