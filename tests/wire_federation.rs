//! End-to-end federation tests: multiple `reefd`-style broker daemons on
//! ephemeral loopback ports, peered over real OS sockets, routing
//! subscriptions (with covering pruning) and events between each other —
//! the socket-backed counterpart of the simulated `Overlay`.

use reef::pubsub::{Event, Filter, NodeId, Op, TOPIC_ATTR};
use reef::wire::{BrokerServer, Client, CodecKind, TransportKind};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

/// Poll `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Build the chain a — b — c the way three `reefd` daemons would:
/// `reefd --name a`, `reefd --name b --peer A`, `reefd --name c --peer B`.
fn chain(covering: bool) -> (BrokerServer, BrokerServer, BrokerServer) {
    let a = BrokerServer::builder()
        .name("chain-a")
        .covering(covering)
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("chain-b")
        .covering(covering)
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");
    let c = BrokerServer::builder()
        .name("chain-c")
        .covering(covering)
        .peer(b.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind c");
    (a, b, c)
}

/// The acceptance scenario: subscribe at one end of a 3-broker TCP
/// chain, publish at the other, and watch the event hop across two peer
/// links into the subscriber's socket.
#[test]
fn three_broker_chain_delivers_across_two_hops() {
    let (a, b, c) = chain(true);
    // Dialed links register before bind() returns; accepted links
    // register on the acceptor's connection thread, so poll.
    wait_for("all peer links to register", || {
        a.federation_stats().peers == 1
            && b.federation_stats().peers == 2
            && c.federation_stats().peers == 1
    });

    let subscriber = Client::connect_as(a.local_addr(), "edge-sub").expect("connect to a");
    subscriber
        .subscribe(Filter::topic("chain"))
        .expect("subscribe at a");

    // The advertisement must travel a -> b -> c before a publish at c can
    // route back.
    wait_for("advertisement to reach c", || {
        c.federation_stats().routing_entries >= 1
    });

    let publisher = Client::connect_as(c.local_addr(), "edge-pub").expect("connect to c");
    publisher
        .publish(Event::topical("chain", "end-to-end"))
        .expect("publish at c");

    let got = subscriber
        .recv_delivery(WAIT)
        .expect("cross-broker delivery");
    assert_eq!(got.event.get(TOPIC_ATTR).unwrap().as_str(), Some("chain"));
    assert_eq!(got.event.get("body").unwrap().as_str(), Some("end-to-end"));

    // Non-matching traffic published at c must not reach the subscriber.
    publisher
        .publish(Event::topical("other", "noise"))
        .expect("publish noise");
    assert!(
        subscriber
            .recv_delivery(Duration::from_millis(300))
            .is_none(),
        "non-matching event must not cross the federation"
    );

    // Hop accounting: c forwarded toward b, b relayed toward a.
    let stats_c = c.federation_stats();
    assert!(stats_c.events_forwarded >= 1, "c forwarded the event");
    let stats_b = b.federation_stats();
    assert!(stats_b.events_received >= 1, "b received the event");
    assert!(stats_b.events_forwarded >= 1, "b relayed the event");

    drop(subscriber);
    drop(publisher);
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Covering pruning must be observable in federation routing stats: a
/// wide filter plus many narrow filters it covers produce far fewer
/// routing entries on remote brokers than the same workload with pruning
/// disabled.
#[test]
fn covering_pruning_shrinks_remote_routing_tables() {
    let run = |covering: bool| -> u64 {
        let (a, b, c) = chain(covering);
        let client = Client::connect_as(a.local_addr(), "coverer").expect("connect to a");
        // One wide filter plus narrow ones it strictly covers.
        client
            .subscribe(Filter::new().and("x", Op::Gt, 0))
            .expect("wide");
        for i in 1..10i64 {
            client
                .subscribe(Filter::new().and("x", Op::Gt, 0).and("y", Op::Eq, i))
                .expect("narrow");
        }
        // Settle: wait until c has as many entries as it is ever going to
        // get for this workload (1 with covering, 10 without), then read
        // the remote table sizes.
        let expected_at_c = if covering { 1 } else { 10 };
        let deadline = Instant::now() + WAIT;
        while c.federation_stats().routing_entries < expected_at_c {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for routing entries at c (covering={covering})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let remote_entries =
            b.federation_stats().routing_entries + c.federation_stats().routing_entries;
        drop(client);
        c.shutdown();
        b.shutdown();
        a.shutdown();
        remote_entries
    };
    let pruned = run(true);
    let flooded = run(false);
    assert_eq!(pruned, 2, "one covering entry at b and at c");
    assert_eq!(flooded, 20, "all ten filters at b and at c");
    assert!(
        pruned < flooded,
        "covering pruning keeps routing tables below the no-pruning count"
    );
}

/// Covering must not lose deliveries across the federation: a covered
/// subscriber behind the same broker still receives events forwarded for
/// the covering filter.
#[test]
fn covered_subscription_still_delivers_across_federation() {
    let (a, b, c) = chain(true);
    let wide = Client::connect_as(a.local_addr(), "wide").expect("connect wide");
    let narrow = Client::connect_as(a.local_addr(), "narrow").expect("connect narrow");
    wide.subscribe(Filter::new().and("x", Op::Gt, 0))
        .expect("wide sub");
    narrow
        .subscribe(Filter::new().and("x", Op::Gt, 5))
        .expect("narrow sub");
    wait_for("advertisement to reach c", || {
        c.federation_stats().routing_entries >= 1
    });
    // Only the wide filter is advertised remotely.
    assert_eq!(c.federation_stats().routing_entries, 1);

    let publisher = Client::connect_as(c.local_addr(), "pub").expect("connect pub");
    publisher
        .publish(Event::builder().attr("x", 10).build())
        .expect("publish");
    assert!(
        wide.recv_delivery(WAIT).is_some(),
        "wide subscriber delivered"
    );
    assert!(
        narrow.recv_delivery(WAIT).is_some(),
        "narrow subscriber delivered"
    );

    drop(wide);
    drop(narrow);
    drop(publisher);
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Unsubscribing (here: dropping the subscriber's connection) must
/// withdraw the advertisement across the federation.
#[test]
fn disconnecting_subscriber_withdraws_remote_interest() {
    let (a, b, c) = chain(true);
    let subscriber = Client::connect_as(a.local_addr(), "sub").expect("connect sub");
    subscriber
        .subscribe(Filter::topic("gone"))
        .expect("subscribe");
    wait_for("advertisement to reach c", || {
        c.federation_stats().routing_entries >= 1
    });
    subscriber.close().expect("orderly goodbye");
    wait_for("withdrawal to reach c", || {
        c.federation_stats().routing_entries == 0
    });
    assert_eq!(b.federation_stats().routing_entries, 0);

    c.shutdown();
    b.shutdown();
    a.shutdown();
}

/// Count-based duplicate-subscription aggregation: identical filters
/// from many clients forward ONE advertisement over the peer link, the
/// withdrawal happens only when the count returns to zero, and remote
/// events still fan out to every member.
#[test]
fn duplicate_filters_aggregate_on_peer_links() {
    let a = BrokerServer::builder()
        .name("agg-a")
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("agg-b")
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");
    wait_for("peer link", || a.federation_stats().peers == 1);

    // Five clients at b place the *identical* filter.
    let clients: Vec<Client> = (0..5)
        .map(|i| Client::connect_as(b.local_addr(), &format!("dup-{i}")).expect("connect"))
        .collect();
    let subs: Vec<_> = clients
        .iter()
        .map(|c| c.subscribe(Filter::topic("agg")).expect("subscribe"))
        .collect();

    // Routing-stats assertion: exactly one advertisement crossed, the
    // other four merged into the refcount.
    wait_for("advertisement at a", || {
        a.federation_stats().routing_entries == 1
    });
    let stats_b = b.federation_stats();
    assert_eq!(stats_b.subs_forwarded, 1, "identical filters forward once");
    assert_eq!(stats_b.subs_aggregated, 4, "four joined the group");
    assert_eq!(stats_b.routing_entries, 1, "one shared routing entry at b");

    // A remote event fans out to every member of the group.
    let publisher = Client::connect_as(a.local_addr(), "pub").expect("connect pub");
    publisher
        .publish(Event::topical("agg", "fan-out"))
        .expect("publish");
    for client in &clients {
        let got = client.recv_delivery(WAIT).expect("member delivered");
        assert_eq!(got.event.get(TOPIC_ATTR).unwrap().as_str(), Some("agg"));
    }

    // Withdrawing four of five must NOT withdraw the advertisement...
    for (client, sub) in clients.iter().zip(&subs).take(4) {
        client.unsubscribe(*sub).expect("unsubscribe");
    }
    publisher
        .publish(Event::topical("agg", "still-routed"))
        .expect("publish after partial unsubscribe");
    let got = clients[4].recv_delivery(WAIT).expect("survivor delivered");
    assert_eq!(
        got.event.get("body").unwrap().as_str(),
        Some("still-routed")
    );
    assert_eq!(
        a.federation_stats().routing_entries,
        1,
        "advertisement survives while the count is nonzero"
    );

    // ...but the last unsubscribe drops the count to zero and withdraws.
    clients[4].unsubscribe(subs[4]).expect("last unsubscribe");
    wait_for("withdrawal at a", || {
        a.federation_stats().routing_entries == 0
    });

    drop(publisher);
    drop(clients);
    b.shutdown();
    a.shutdown();
}

/// Peer-link reconnect: when a dialed link dies, `--peer-retry` re-dials
/// with backoff, re-runs the `PeerHello` handshake, and routing resyncs.
#[test]
fn dead_peer_link_redials_and_resyncs() {
    let hub = BrokerServer::builder()
        .name("redial-hub")
        .bind("127.0.0.1:0")
        .expect("bind hub");
    let dialer = BrokerServer::builder()
        .name("redial-dialer")
        .peer(hub.local_addr().to_string())
        .peer_retry(true)
        .bind("127.0.0.1:0")
        .expect("bind dialer");
    wait_for("initial link", || {
        hub.federation_stats().peers == 1 && dialer.federation_stats().peers == 1
    });

    // Kill the link from the hub's side (its listener stays up); the
    // dialer must notice the dead socket and re-dial on its own.
    let link = hub.federation().peer_stats()[0].link;
    hub.federation().peer_disconnected(NodeId(link));
    wait_for("link re-established", || {
        hub.federation_stats().peers == 1 && dialer.federation_stats().peers == 1
    });

    // The re-run handshake must leave a fully working federation: a
    // subscription placed after the reconnect routes events across.
    let subscriber = Client::connect_as(dialer.local_addr(), "sub").expect("connect sub");
    subscriber
        .subscribe(Filter::topic("redial"))
        .expect("subscribe");
    wait_for("advertisement crosses the new link", || {
        hub.federation_stats().routing_entries >= 1
    });
    let publisher = Client::connect_as(hub.local_addr(), "pub").expect("connect pub");
    publisher
        .publish(Event::topical("redial", "after-reconnect"))
        .expect("publish");
    let got = subscriber.recv_delivery(WAIT).expect("delivery");
    assert_eq!(
        got.event.get("body").unwrap().as_str(),
        Some("after-reconnect")
    );

    drop(subscriber);
    drop(publisher);
    dialer.shutdown();
    hub.shutdown();
}

/// Codec negotiation on peer links: a JSON-dialing broker federates with
/// a binary-default one, each link keeping the dialer's codec, and the
/// per-codec federation counters attribute the traffic.
#[test]
fn json_and_binary_peer_links_coexist() {
    let hub = BrokerServer::builder()
        .name("codec-hub")
        .bind("127.0.0.1:0")
        .expect("bind hub");
    let json_peer = BrokerServer::builder()
        .name("codec-json")
        .codec(CodecKind::Json)
        .peer(hub.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind json peer");
    let binary_peer = BrokerServer::builder()
        .name("codec-binary")
        .peer(hub.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind binary peer");
    wait_for("both links", || hub.federation_stats().peers == 2);

    // The hub adopted each link under the dialer's codec.
    let mut codecs: Vec<String> = hub.peer_stats().into_iter().map(|p| p.codec).collect();
    codecs.sort();
    assert_eq!(codecs, ["binary", "json"]);

    // Subscribe behind each spoke; the hub's advertisements go out once
    // per link, one in each codec.
    let json_sub = Client::connect_as(json_peer.local_addr(), "jsub").expect("connect");
    json_sub.subscribe(Filter::topic("codecs")).expect("sub");
    let binary_sub = Client::connect_as(binary_peer.local_addr(), "bsub").expect("connect");
    binary_sub.subscribe(Filter::topic("codecs")).expect("sub");
    wait_for("advertisements at hub", || {
        hub.federation_stats().routing_entries == 2
    });

    let publisher = Client::connect_as(hub.local_addr(), "pub").expect("connect pub");
    publisher
        .publish(Event::topical("codecs", "both"))
        .expect("publish");
    assert!(
        json_sub.recv_delivery(WAIT).is_some(),
        "json spoke delivered"
    );
    assert!(
        binary_sub.recv_delivery(WAIT).is_some(),
        "binary spoke delivered"
    );

    // Per-codec federation counters saw traffic on both codecs.
    let stats = hub.federation_stats();
    assert!(stats.json.frames_out >= 1, "json link carried frames");
    assert!(stats.binary.frames_out >= 1, "binary link carried frames");
    assert!(stats.json.bytes_in > 0, "json link ingress counted");
    assert!(stats.binary.bytes_in > 0, "binary link ingress counted");

    drop(json_sub);
    drop(binary_sub);
    drop(publisher);
    binary_peer.shutdown();
    json_peer.shutdown();
    hub.shutdown();
}

/// Build the 3-broker mesh ring a — b — c — a the way three
/// `reefd --mesh` daemons would. The third dial (c → a) closes the
/// cycle a tree overlay must never contain.
fn mesh_ring(transport: TransportKind) -> (BrokerServer, BrokerServer, BrokerServer) {
    let a = BrokerServer::builder()
        .name("mesh-a")
        .mesh(true)
        .transport(transport)
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("mesh-b")
        .mesh(true)
        .transport(transport)
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");
    let c = BrokerServer::builder()
        .name("mesh-c")
        .mesh(true)
        .transport(transport)
        .peer(a.local_addr().to_string())
        .peer(b.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind c");
    wait_for("ring links to register", || {
        a.federation_stats().peers == 2
            && b.federation_stats().peers == 2
            && c.federation_stats().peers == 2
    });
    (a, b, c)
}

/// The mesh acceptance scenario: a subscription at one broker of a
/// 3-broker ring is reachable over two distinct paths, events arrive
/// exactly once while both are up (the seen-cache eats the ring's
/// duplicate), and killing the direct link mid-run fails over onto the
/// surviving two-hop path without losing an event.
fn ring_failover(transport: TransportKind) {
    let (a, b, c) = mesh_ring(transport);

    let subscriber = Client::connect_as(a.local_addr(), "mesh-sub").expect("connect to a");
    subscriber
        .subscribe(Filter::topic("mesh"))
        .expect("subscribe at a");

    // The path-vector advertisement floods the ring: everyone learns the
    // route, and the publisher-side broker holds a failover alternate
    // (direct [a] plus two-hop [a, b]).
    wait_for("advertisement to flood the ring", || {
        b.federation_stats().routing_entries >= 1 && c.federation_stats().routing_entries >= 1
    });
    wait_for("alternate path at c", || {
        c.federation_stats().mesh_alternates >= 1
    });

    let publisher = Client::connect_as(c.local_addr(), "mesh-pub").expect("connect to c");
    publisher
        .publish(Event::topical("mesh", "both-paths-up"))
        .expect("publish at c");
    let got = subscriber.recv_delivery(WAIT).expect("ring delivery");
    assert_eq!(
        got.event.get("body").unwrap().as_str(),
        Some("both-paths-up")
    );
    // The event travelled both arms of the ring; the subscriber-side
    // seen-cache must have eaten the copy relayed through b.
    wait_for("duplicate suppressed at a", || {
        a.federation_stats().mesh_duplicates_suppressed >= 1
    });
    assert!(
        subscriber
            .recv_delivery(Duration::from_millis(300))
            .is_none(),
        "the ring's duplicate copy must not reach the subscriber"
    );

    // Kill the direct a — c link mid-run (a's side; the socket shutdown
    // propagates to c). No redial is configured: delivery now depends on
    // self-stabilization promoting c's alternate route through b.
    let direct = a
        .federation()
        .peer_stats()
        .into_iter()
        .find(|p| p.broker == "mesh-c")
        .expect("a knows its link to c")
        .link;
    a.federation().peer_disconnected(NodeId(direct));
    wait_for(
        "c to notice the dead link and promote the alternate",
        || {
            let stats = c.federation_stats();
            stats.peers == 1 && stats.mesh_reroutes >= 1
        },
    );

    publisher
        .publish(Event::topical("mesh", "around-the-ring"))
        .expect("publish after link kill");
    let got = subscriber.recv_delivery(WAIT).expect("failover delivery");
    assert_eq!(
        got.event.get("body").unwrap().as_str(),
        Some("around-the-ring")
    );
    assert!(
        subscriber
            .recv_delivery(Duration::from_millis(300))
            .is_none(),
        "failover must stay exactly-once"
    );

    drop(subscriber);
    drop(publisher);
    c.shutdown();
    b.shutdown();
    a.shutdown();
}

#[test]
fn mesh_ring_fails_over_on_threads_transport() {
    ring_failover(TransportKind::Threads);
}

#[test]
#[cfg(target_os = "linux")]
fn mesh_ring_fails_over_on_epoll_transport() {
    ring_failover(TransportKind::Epoll);
}

/// Keepalive: an idle peer link outlives many multiples of the peer
/// timeout because pings flow and pongs answer — and it still routes
/// events afterwards. (A broken ping/pong path would tear the link down
/// as dead within one timeout.)
#[test]
fn keepalive_holds_an_idle_peer_link_open() {
    let timeout = Duration::from_millis(400);
    let a = BrokerServer::builder()
        .name("ka-a")
        .peer_timeout(Some(timeout))
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("ka-b")
        .peer_timeout(Some(timeout))
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");
    wait_for("peer link", || {
        a.federation_stats().peers == 1 && b.federation_stats().peers == 1
    });

    // Idle the link until keepalive traffic proves silence outlasted the
    // deadline: probes fire at a third of the timeout, so three inbound
    // frames on each side mean a full timeout of idleness passed with
    // only ping/pong crossing — no blind multi-timeout sleep needed.
    let peer_frames_in =
        |s: &reef_wire::FederationStatsSnapshot| s.json.frames_in + s.binary.frames_in;
    let (base_a, base_b) = (
        peer_frames_in(&a.federation_stats()),
        peer_frames_in(&b.federation_stats()),
    );
    wait_for("keepalives cross the idle link", || {
        peer_frames_in(&a.federation_stats()) >= base_a + 3
            && peer_frames_in(&b.federation_stats()) >= base_b + 3
    });
    assert_eq!(a.federation_stats().peers, 1, "link survived idling at a");
    assert_eq!(b.federation_stats().peers, 1, "link survived idling at b");

    // The probed link still routes.
    let subscriber = Client::connect_as(a.local_addr(), "ka-sub").expect("connect sub");
    subscriber
        .subscribe(Filter::topic("keepalive"))
        .expect("subscribe");
    wait_for("advertisement crosses", || {
        b.federation_stats().routing_entries >= 1
    });
    let publisher = Client::connect_as(b.local_addr(), "ka-pub").expect("connect pub");
    publisher
        .publish(Event::topical("keepalive", "still-here"))
        .expect("publish");
    assert!(
        subscriber.recv_delivery(WAIT).is_some(),
        "delivery after idle period"
    );

    drop(subscriber);
    drop(publisher);
    b.shutdown();
    a.shutdown();
}

/// The `Stats` request surfaces federation state to remote clients, and
/// delivery drops appear in the wire snapshot when a bounded-queue broker
/// overflows.
#[test]
fn stats_request_reports_federation_and_backpressure() {
    let a = BrokerServer::builder()
        .name("stats-a")
        .queue_capacity(1)
        .bind("127.0.0.1:0")
        .expect("bind a");
    let b = BrokerServer::builder()
        .name("stats-b")
        .peer(a.local_addr().to_string())
        .bind("127.0.0.1:0")
        .expect("bind b");

    let client = Client::connect_as(a.local_addr(), "stats-client").expect("connect");
    // a is the accepting side of the peer link; poll until its
    // connection thread has registered it.
    wait_for("peer link visible in stats", || {
        client.stats().expect("stats").federation.peers == 1
    });
    let stats = client.stats().expect("stats");
    assert_ne!(stats.federation.broker_id, 0);

    // Overflow the 1-slot queue deterministically: register a subscriber
    // directly on the broker (no delivery pump drains it) and flood it
    // from a wire client.
    let (slow, slow_handle) = a.broker().register();
    a.broker()
        .subscribe(slow, Filter::new())
        .expect("subscribe slow consumer");
    let publisher = Client::connect_as(a.local_addr(), "flooder").expect("connect flooder");
    let mut dropped = 0;
    for i in 0..5i64 {
        let out = publisher
            .publish(Event::builder().attr("i", i).build())
            .expect("publish");
        dropped += out.dropped;
    }
    assert_eq!(dropped, 4, "everything past the first event was dropped");
    let stats = client.stats().expect("stats after flood");
    assert_eq!(stats.broker.drops, 4, "drops surfaced in broker stats");
    assert_eq!(slow_handle.pending(), 1, "the queue held exactly its bound");

    drop(client);
    drop(publisher);
    b.shutdown();
    a.shutdown();
}
