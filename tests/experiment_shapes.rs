//! Guard-rail tests: scaled-down versions of the paper experiments whose
//! *shapes* must hold on every run (the full-size numbers live in the
//! experiment binaries and EXPERIMENTS.md).

use reef::simweb::browse::generate_history;
use reef::simweb::{browsing_stats, BrowseConfig, RequestKind, TopicId, WebConfig, WebUniverse};
use reef::textindex::OfferWeightMode;
use reef::videonews::{ArchiveConfig, ExperimentConfig, VideoArchive, VideoExperiment};
use std::collections::HashSet;

#[test]
fn e1_shape_ad_share_and_single_visit_tail() {
    let universe = WebUniverse::generate(WebConfig::paper_e1(), 1);
    let browse = BrowseConfig {
        days: 14, // two weeks is enough for the proportions
        ..BrowseConfig::paper_e1()
    };
    let history = generate_history(&universe, &browse, 1);
    let stats = browsing_stats(&universe, &history);
    // ~70% of requests go to ad servers.
    assert!(
        (0.6..0.8).contains(&stats.ad_request_share),
        "ad share {}",
        stats.ad_request_share
    );
    // A long tail of servers is visited exactly once.
    assert!(stats.single_visit_servers * 10 > stats.distinct_servers);
    // Feeds are discoverable on the crawl-worthy remainder.
    assert!(stats.discoverable_feeds > 50);
    assert!(stats.crawlworthy_servers < stats.distinct_servers);
}

#[test]
fn e2_shape_query_beats_airing_order_and_five_terms_undercover() {
    let universe = WebUniverse::generate(WebConfig::paper_e2(), 2);
    let browse = BrowseConfig {
        days: 10,
        ..BrowseConfig::paper_e2()
    };
    let history = generate_history(&universe, &browse, 2);
    let profile = &history.profiles[0];

    let mut seen = HashSet::new();
    let mut texts = Vec::new();
    for r in history
        .requests
        .iter()
        .filter(|r| r.kind == RequestKind::Page)
    {
        if seen.insert(r.url.as_str()) {
            if let Some(p) = universe.fetch(&r.url) {
                if p.content_type == "text/html" && !p.text.is_empty() {
                    texts.push(p.text.as_str());
                }
            }
        }
    }
    let background: Vec<&str> = universe
        .pages()
        .iter()
        .filter(|p| p.content_type == "text/html" && !seen.contains(p.url.as_str()))
        .step_by(4)
        .take(1200)
        .map(|p| p.text.as_str())
        .collect();
    let archive = VideoArchive::generate(universe.model(), ArchiveConfig::default(), 2);
    let interests: Vec<TopicId> = profile.interests.iter().map(|(t, _)| *t).collect();

    let experiment = VideoExperiment::prepare(
        &archive,
        texts.iter().copied(),
        background.iter().copied(),
        archive.judgments(&interests),
        ExperimentConfig::default(),
    );
    // Average both points over several noisy judgment draws.
    let mut imp5 = 0.0;
    let mut imp30 = 0.0;
    let draws = 10;
    let r5 = experiment.ranked_ids(5, OfferWeightMode::TfIntegrated);
    let r30 = experiment.ranked_ids(30, OfferWeightMode::TfIntegrated);
    for d in 0..draws {
        let judgments = archive.noisy_judgments(&interests, 0.445, 0.25, 1000 + d);
        imp5 += experiment.evaluate_ranking(&r5, &judgments).improvement_pct;
        imp30 += experiment
            .evaluate_ranking(&r30, &judgments)
            .improvement_pct;
    }
    imp5 /= draws as f64;
    imp30 /= draws as f64;
    assert!(
        imp30 > 0.0,
        "30-term query must beat airing order, got {imp30}"
    );
    assert!(
        imp30 > imp5,
        "30 terms must beat 5 terms (got {imp5} vs {imp30})"
    );
}

#[test]
fn e1_universe_scale_matches_paper() {
    let universe = WebUniverse::generate(WebConfig::paper_e1(), 3);
    let history = generate_history(&universe, &BrowseConfig::paper_e1(), 3);
    let stats = browsing_stats(&universe, &history);
    // Within ±15% of the paper's headline scale.
    assert!(
        (65_000..90_000).contains(&(stats.total_requests as usize)),
        "{}",
        stats.total_requests
    );
    assert!(
        (2_100..3_000).contains(&(stats.distinct_servers as usize)),
        "{}",
        stats.distinct_servers
    );
    assert!(
        (350..520).contains(&(stats.discoverable_feeds as usize)),
        "{}",
        stats.discoverable_feeds
    );
}
