//! Crash-recovery harness for the durable click store.
//!
//! The self-stabilization property under test: however a `reefd` dies —
//! clean stop after any number of acknowledged uploads, or mid-write
//! (simulated by byte-level truncation and bit flips on the WAL files) —
//! a restart on the same data directory recovers **exactly a prefix of
//! the acknowledged upload stream**: no panic, no duplicate clicks, no
//! phantom clicks, and with an uncorrupted log the full acknowledged
//! history.
//!
//! The harness spawns a real broker daemon (ephemeral loopback port,
//! temp data dir), drives it over real sockets, kills it at
//! proptest-chosen points, injects proptest-chosen faults into the WAL
//! tail, restarts, and compares against per-batch oracle snapshots.

mod common;

use common::{wal_segments, TempDir};
use proptest::prelude::*;
use reef::attention::{Click, ClickBatch, ClickStore};
use reef::simweb::UserId;
use reef::wire::BrokerServer;
use std::path::Path;

/// One generated upload: the uploading user, how many genuine clicks,
/// and whether a forged-cookie click rides along (it must be rejected
/// and never persisted).
#[derive(Debug, Clone)]
struct BatchSpec {
    user: u32,
    clicks: u8,
    forged: bool,
}

fn arb_workload() -> impl Strategy<Value = Vec<BatchSpec>> {
    prop::collection::vec(
        (0u32..3, 1u8..5, any::<bool>()).prop_map(|(user, clicks, forged)| BatchSpec {
            user,
            clicks,
            forged,
        }),
        1..10,
    )
}

/// Materialize the specs with globally unique, monotonically increasing
/// ticks so store comparisons are unambiguous.
fn build_batches(specs: &[BatchSpec]) -> Vec<ClickBatch> {
    let mut tick = 0u64;
    specs
        .iter()
        .map(|spec| {
            let mut clicks: Vec<Click> = (0..spec.clicks)
                .map(|_| {
                    tick += 1;
                    Click {
                        user: UserId(spec.user),
                        day: (tick / 7) as u32,
                        tick,
                        url: format!("http://host-{}.example/page/{tick}", spec.user),
                        referrer: (tick.is_multiple_of(2)).then(|| {
                            format!("http://host-{}.example/page/{}", spec.user, tick - 1)
                        }),
                    }
                })
                .collect();
            if spec.forged {
                tick += 1;
                clicks.push(Click {
                    user: UserId(spec.user + 100), // wrong cookie
                    day: 0,
                    tick,
                    url: "http://forged.example/".to_owned(),
                    referrer: None,
                });
            }
            ClickBatch {
                user: UserId(spec.user),
                clicks,
            }
        })
        .collect()
}

/// What the fault injector does to the WAL between the kill and the
/// restart.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Clean kill: the log is exactly as the daemon flushed it.
    None,
    /// Simulate dying mid-`write`: chop bytes off the last segment.
    TruncateTail(u64),
    /// Simulate on-disk corruption: flip one byte somewhere in the last
    /// segment.
    FlipByte(u64),
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::None),
        any::<u64>().prop_map(Fault::TruncateTail),
        any::<u64>().prop_map(Fault::FlipByte),
    ]
}

fn inject_fault(dir: &Path, fault: Fault) {
    let Some(last) = wal_segments(dir).pop() else {
        return;
    };
    let bytes = std::fs::read(&last).expect("read wal segment");
    match fault {
        Fault::None => {}
        Fault::TruncateTail(seed) => {
            let cut = (seed % (bytes.len() as u64 + 1)) as usize;
            std::fs::write(&last, &bytes[..cut]).expect("truncate segment");
        }
        Fault::FlipByte(seed) => {
            if bytes.is_empty() {
                return;
            }
            let mut corrupt = bytes;
            let at = (seed % corrupt.len() as u64) as usize;
            corrupt[at] ^= 0x40;
            std::fs::write(&last, &corrupt).expect("write corrupt segment");
        }
    }
}

/// Start a daemon persisting under `dir`, with a tiny segment size so
/// workloads span several segments and the snapshot/compaction machinery
/// actually runs.
fn start_daemon(dir: &Path, snapshot_every: u64) -> BrokerServer {
    BrokerServer::builder()
        .name("crash-harness")
        .data_dir(dir)
        .wal_segment_bytes(512)
        .snapshot_every(snapshot_every)
        .bind("127.0.0.1:0")
        .expect("bind daemon with data dir")
}

fn fail(e: impl std::fmt::Display) -> TestCaseError {
    TestCaseError::fail(e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: randomized workloads, kill points, and
    /// byte-level tail faults always recover to exactly the acknowledged
    /// checksummed prefix.
    #[test]
    fn restart_recovers_exactly_an_acknowledged_prefix(
        specs in arb_workload(),
        kill_seed in any::<u64>(),
        snapshot_every in 0u64..4,
        fault in arb_fault(),
    ) {
        let batches = build_batches(&specs);
        let kill_after = (kill_seed % (batches.len() as u64 + 1)) as usize;
        let dir = TempDir::new("crash");

        // Oracle: the store contents after each acknowledged upload.
        let mut oracles: Vec<ClickStore> = vec![ClickStore::new()];

        // Lifetime one: upload `kill_after` batches over a real socket,
        // then die. (Acknowledged uploads are flushed to the WAL before
        // the receipt is sent, so an abrupt process death keeps them; a
        // death *during* the write is the TruncateTail fault below.)
        {
            let server = start_daemon(dir.path(), snapshot_every);
            let client = reef::wire::Client::connect_as(server.local_addr(), "uploader")
                .map_err(fail)?;
            for batch in &batches[..kill_after] {
                let receipt = client.upload_clicks(batch.clone()).map_err(fail)?;
                let mut next = oracles.last().expect("seeded").clone();
                let oracle_receipt = next.ingest_upload(batch.clone());
                prop_assert_eq!(receipt.accepted, oracle_receipt.accepted);
                prop_assert_eq!(receipt.rejected, oracle_receipt.rejected);
                prop_assert_eq!(receipt.total_stored, next.len());
                oracles.push(next);
            }
            drop(client);
            server.shutdown();
        }

        inject_fault(dir.path(), fault);

        // Lifetime two: recovery must never fail, and must land on some
        // acknowledged prefix.
        let server = start_daemon(dir.path(), snapshot_every);
        let recovered: ClickStore = server.click_store().lock().store().clone();
        let stats = server.stats();
        prop_assert_eq!(stats.recovered_clicks, recovered.len());

        let m = oracles
            .iter()
            .position(|oracle| oracle.len() == recovered.len())
            .ok_or_else(|| TestCaseError::fail(format!(
                "recovered {} clicks, which is no acknowledged prefix (fault {fault:?})",
                recovered.len()
            )))?;
        prop_assert_eq!(
            &oracles[m],
            &recovered,
            "recovered store diverges from the acknowledged prefix of {} batches (fault {:?})",
            m,
            fault
        );
        if matches!(fault, Fault::None) {
            prop_assert_eq!(m, kill_after, "clean restart must lose nothing");
            prop_assert_eq!(stats.wal_truncated_bytes, 0);
        }

        // The recovered daemon keeps serving: one more upload continues
        // the totals from the recovered state.
        let client = reef::wire::Client::connect_as(server.local_addr(), "post-crash")
            .map_err(fail)?;
        let extra = ClickBatch {
            user: UserId(9),
            clicks: vec![Click {
                user: UserId(9),
                day: 0,
                tick: u64::MAX, // never collides with workload ticks
                url: "http://post-crash.example/".to_owned(),
                referrer: None,
            }],
        };
        let receipt = client.upload_clicks(extra).map_err(fail)?;
        prop_assert_eq!(receipt.total_stored, recovered.len() + 1);
        drop(client);
        server.shutdown();
    }
}

/// Deterministic spot check: a record torn exactly mid-payload loses
/// only itself, is counted as truncated bytes, and the next daemon
/// lifetime appends cleanly after the truncation point.
#[test]
fn torn_record_loses_only_itself_and_log_stays_appendable() {
    let dir = TempDir::new("torn-e2e");
    let batch = |tick: u64| ClickBatch {
        user: UserId(1),
        clicks: vec![Click {
            user: UserId(1),
            day: 0,
            tick,
            url: format!("http://a.example/{tick}"),
            referrer: None,
        }],
    };

    {
        let server = start_daemon(dir.path(), 0);
        let client = reef::wire::Client::connect_as(server.local_addr(), "ext").expect("connect");
        for tick in 1..=3 {
            client.upload_clicks(batch(tick)).expect("upload");
        }
        server.shutdown();
    }
    // Tear 3 bytes off the last record's tail.
    let last = wal_segments(dir.path()).pop().expect("segment exists");
    let bytes = std::fs::read(&last).expect("read");
    std::fs::write(&last, &bytes[..bytes.len() - 3]).expect("tear");

    {
        let server = start_daemon(dir.path(), 0);
        let stats = server.stats();
        assert_eq!(stats.recovered_clicks, 2, "only the torn record lost");
        assert!(stats.wal_truncated_bytes > 0, "truncation accounted");
        let client = reef::wire::Client::connect_as(server.local_addr(), "ext").expect("connect");
        let receipt = client.upload_clicks(batch(10)).expect("upload after tear");
        assert_eq!(receipt.total_stored, 3);
        server.shutdown();
    }
    // Third lifetime: the re-appended log replays in full.
    let server = start_daemon(dir.path(), 0);
    assert_eq!(server.stats().recovered_clicks, 3);
    assert_eq!(server.stats().wal_truncated_bytes, 0);
    server.shutdown();
}
