//! Wire-format round trips: the types that cross process boundaries in a
//! real deployment (click uploads, events, filters, recommendations) must
//! survive JSON serialization, since that is the upload format the
//! paper's browser-extension → LAMP-server path used.

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, Filter, Op, PublishedEvent, Value};
use reef::simweb::UserId;

#[test]
fn click_batch_round_trips() {
    let batch = ClickBatch {
        user: UserId(3),
        clicks: vec![
            Click {
                user: UserId(3),
                day: 12,
                tick: 99,
                url: "http://site.example/page?q=1#frag".to_owned(),
                referrer: Some("http://other.example/".to_owned()),
            },
            Click {
                user: UserId(3),
                day: 12,
                tick: 100,
                url: "http://site.example/ünïcode".to_owned(),
                referrer: None,
            },
        ],
    };
    let json = serde_json::to_string(&batch).expect("serialize");
    let back: ClickBatch = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, batch);
    assert_eq!(batch.wire_size(), json.len());
}

#[test]
fn events_round_trip_with_all_value_types() {
    let event = Event::builder()
        .attr("s", "text with \"quotes\" & <markup>")
        .attr("i", -42)
        .attr("f", 2.75)
        .attr("b", true)
        .build();
    let json = serde_json::to_string(&event).expect("serialize");
    let back: Event = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, event);
    assert_eq!(back.get("i"), Some(&Value::Int(-42)));
}

#[test]
fn published_events_round_trip() {
    let published = PublishedEvent {
        id: reef::pubsub::EventId(7),
        published_at: 123,
        event: Event::topical("http://f.example/feed.rss", "body"),
    };
    let json = serde_json::to_string(&published).expect("serialize");
    let back: PublishedEvent = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, published);
}

#[test]
fn filters_round_trip_and_still_match() {
    let filter = Filter::new()
        .and("symbol", Op::Eq, "ACME")
        .and("price", Op::Gt, 10.5)
        .and("note", Op::Contains, "earn")
        .and_exists("volume");
    let json = serde_json::to_string(&filter).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, filter);
    let event = Event::builder()
        .attr("symbol", "ACME")
        .attr("price", 11.0)
        .attr("note", "q3 earnings call")
        .attr("volume", 9_000)
        .build();
    assert!(back.matches(&event));
}

#[test]
fn parsed_filter_text_equals_constructed_filter_after_round_trip() {
    let parsed = reef::pubsub::parse_filter(r#"symbol = "ACME" && price > 10.5"#).expect("parse");
    let json = serde_json::to_string(&parsed).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    let constructed = Filter::new().and("symbol", Op::Eq, "ACME").and("price", Op::Gt, 10.5);
    assert_eq!(back, constructed);
}
