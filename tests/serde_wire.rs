//! Wire-format round trips: the types that cross process boundaries in a
//! real deployment (click uploads, events, filters, recommendations) must
//! survive JSON serialization, since that is the upload format the
//! paper's browser-extension → LAMP-server path used.

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, Filter, Op, PublishedEvent, Value};
use reef::simweb::UserId;

#[test]
fn large_u64_ids_round_trip_exactly() {
    // Federation subscription ids are namespaced `broker_id << 32 |
    // counter`, which lands above 2^53 (and above i64::MAX for half of
    // all broker ids). A JSON layer that routes big integers through f64
    // silently merges adjacent ids — which is exactly the corruption the
    // routing tables would see, so every bit must survive.
    use reef::pubsub::GlobalSubId;
    for id in [
        (u32::MAX as u64) << 32,
        ((u32::MAX as u64) << 32) | 1,
        u64::MAX,
        u64::MAX - 1,
        i64::MAX as u64 + 1,
        (1u64 << 53) + 1,
    ] {
        let json = serde_json::to_string(&GlobalSubId(id)).expect("serialize");
        let back: GlobalSubId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.0, id, "u64 id {id} must round-trip bit-exactly");
    }
}

#[test]
fn click_batch_round_trips() {
    let batch = ClickBatch {
        user: UserId(3),
        clicks: vec![
            Click {
                user: UserId(3),
                day: 12,
                tick: 99,
                url: "http://site.example/page?q=1#frag".to_owned(),
                referrer: Some("http://other.example/".to_owned()),
            },
            Click {
                user: UserId(3),
                day: 12,
                tick: 100,
                url: "http://site.example/ünïcode".to_owned(),
                referrer: None,
            },
        ],
    };
    let json = serde_json::to_string(&batch).expect("serialize");
    let back: ClickBatch = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, batch);
    assert_eq!(batch.wire_size(), json.len());
}

#[test]
fn events_round_trip_with_all_value_types() {
    let event = Event::builder()
        .attr("s", "text with \"quotes\" & <markup>")
        .attr("i", -42)
        .attr("f", 2.75)
        .attr("b", true)
        .build();
    let json = serde_json::to_string(&event).expect("serialize");
    let back: Event = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, event);
    assert_eq!(back.get("i"), Some(&Value::Int(-42)));
}

#[test]
fn published_events_round_trip() {
    let published = PublishedEvent {
        id: reef::pubsub::EventId(7),
        published_at: 123,
        event: Event::topical("http://f.example/feed.rss", "body"),
    };
    let json = serde_json::to_string(&published).expect("serialize");
    let back: PublishedEvent = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, published);
}

#[test]
fn filters_round_trip_and_still_match() {
    let filter = Filter::new()
        .and("symbol", Op::Eq, "ACME")
        .and("price", Op::Gt, 10.5)
        .and("note", Op::Contains, "earn")
        .and_exists("volume");
    let json = serde_json::to_string(&filter).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, filter);
    let event = Event::builder()
        .attr("symbol", "ACME")
        .attr("price", 11.0)
        .attr("note", "q3 earnings call")
        .attr("volume", 9_000)
        .build();
    assert!(back.matches(&event));
}

#[test]
fn parsed_filter_text_equals_constructed_filter_after_round_trip() {
    let parsed = reef::pubsub::parse_filter(r#"symbol = "ACME" && price > 10.5"#).expect("parse");
    let json = serde_json::to_string(&parsed).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    let constructed = Filter::new()
        .and("symbol", Op::Eq, "ACME")
        .and("price", Op::Gt, 10.5);
    assert_eq!(back, constructed);
}

// --------------------------------------------------------------------------
// reef-wire frames: the same types framed as they actually travel over TCP.

mod wire_frames {
    use super::*;
    use reef::attention::UploadReceipt;
    use reef::pubsub::{BrokerStatsSnapshot, EventId, SubscriptionId};
    use reef::wire::{
        Deliver, FederationStatsSnapshot, Frame, Request, Response, ServerMessage,
        WireStatsSnapshot,
    };

    fn frame_round_trip_request(request: Request) {
        let frame = Frame::encode(&request).expect("encode");
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).expect("write");
        let back = Frame::read_from(&mut bytes.as_slice())
            .expect("read")
            .expect("one frame present");
        assert_eq!(back.decode::<Request>().expect("decode"), request);
    }

    fn frame_round_trip_server(message: ServerMessage) {
        let frame = Frame::encode(&message).expect("encode");
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).expect("write");
        let back = Frame::read_from(&mut bytes.as_slice())
            .expect("read")
            .expect("one frame present");
        assert_eq!(back.decode::<ServerMessage>().expect("decode"), message);
    }

    #[test]
    fn every_request_variant_survives_framing() {
        for request in [
            Request::Hello {
                version: 1,
                client: "ext".into(),
            },
            Request::Subscribe {
                filter: Filter::new()
                    .and("price", Op::Gt, 10.0)
                    .and("symbol", Op::Eq, "ACME"),
            },
            Request::Unsubscribe {
                subscription: SubscriptionId(42),
            },
            Request::Publish {
                event: Event::builder()
                    .attr("price", 12.5)
                    .attr("note", "quotes \"and\" unicode: ünïcode")
                    .attr("up", true)
                    .attr("volume", -3)
                    .build(),
            },
            Request::UploadClicks {
                batch: ClickBatch {
                    user: UserId(3),
                    clicks: vec![Click {
                        user: UserId(3),
                        day: 2,
                        tick: 17,
                        url: "http://site.example/p".into(),
                        referrer: None,
                    }],
                },
            },
            Request::Stats,
            Request::Ping,
            Request::Bye,
        ] {
            frame_round_trip_request(request);
        }
    }

    #[test]
    fn every_response_variant_survives_framing() {
        for response in [
            Response::Hello {
                version: 1,
                server: "reefd".into(),
                subscriber: 9,
            },
            Response::Subscribed {
                subscription: SubscriptionId(1),
            },
            Response::Unsubscribed {
                filter: Filter::topic("news"),
            },
            Response::Published {
                id: EventId(5),
                delivered: 2,
                dropped: 0,
            },
            Response::ClicksAccepted {
                receipt: UploadReceipt {
                    user: UserId(3),
                    accepted: 1,
                    rejected: 0,
                    wire_bytes: 200,
                    total_stored: 11,
                },
            },
            Response::Stats {
                broker: BrokerStatsSnapshot::default(),
                wire: WireStatsSnapshot::default(),
                federation: FederationStatsSnapshot::default(),
            },
            Response::Pong,
            Response::Bye,
            Response::Error {
                message: "schema violation".into(),
            },
        ] {
            frame_round_trip_server(ServerMessage::Reply(response));
        }
    }

    #[test]
    fn deliveries_survive_framing() {
        frame_round_trip_server(ServerMessage::Deliver(Deliver {
            event: PublishedEvent {
                id: EventId(8),
                published_at: 44,
                event: Event::builder().attr("price", 10.01).build(),
            },
        }));
    }
}
