//! Wire-format round trips: the types that cross process boundaries in a
//! real deployment (click uploads, events, filters, recommendations) must
//! survive JSON serialization, since that is the upload format the
//! paper's browser-extension → LAMP-server path used.

use reef::attention::{Click, ClickBatch};
use reef::pubsub::{Event, Filter, Op, PublishedEvent, Value};
use reef::simweb::UserId;

#[test]
fn large_u64_ids_round_trip_exactly() {
    // Federation subscription ids are namespaced `broker_id << 32 |
    // counter`, which lands above 2^53 (and above i64::MAX for half of
    // all broker ids). A JSON layer that routes big integers through f64
    // silently merges adjacent ids — which is exactly the corruption the
    // routing tables would see, so every bit must survive.
    use reef::pubsub::GlobalSubId;
    for id in [
        (u32::MAX as u64) << 32,
        ((u32::MAX as u64) << 32) | 1,
        u64::MAX,
        u64::MAX - 1,
        i64::MAX as u64 + 1,
        (1u64 << 53) + 1,
    ] {
        let json = serde_json::to_string(&GlobalSubId(id)).expect("serialize");
        let back: GlobalSubId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.0, id, "u64 id {id} must round-trip bit-exactly");
    }
}

#[test]
fn click_batch_round_trips() {
    let batch = ClickBatch {
        user: UserId(3),
        clicks: vec![
            Click {
                user: UserId(3),
                day: 12,
                tick: 99,
                url: "http://site.example/page?q=1#frag".to_owned(),
                referrer: Some("http://other.example/".to_owned()),
            },
            Click {
                user: UserId(3),
                day: 12,
                tick: 100,
                url: "http://site.example/ünïcode".to_owned(),
                referrer: None,
            },
        ],
    };
    let json = serde_json::to_string(&batch).expect("serialize");
    let back: ClickBatch = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, batch);
    assert_eq!(batch.wire_size(), json.len());
}

#[test]
fn events_round_trip_with_all_value_types() {
    let event = Event::builder()
        .attr("s", "text with \"quotes\" & <markup>")
        .attr("i", -42)
        .attr("f", 2.75)
        .attr("b", true)
        .build();
    let json = serde_json::to_string(&event).expect("serialize");
    let back: Event = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, event);
    assert_eq!(back.get("i"), Some(&Value::Int(-42)));
}

#[test]
fn published_events_round_trip() {
    let published = PublishedEvent {
        id: reef::pubsub::EventId(7),
        published_at: 123,
        event: Event::topical("http://f.example/feed.rss", "body"),
    };
    let json = serde_json::to_string(&published).expect("serialize");
    let back: PublishedEvent = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, published);
}

#[test]
fn filters_round_trip_and_still_match() {
    let filter = Filter::new()
        .and("symbol", Op::Eq, "ACME")
        .and("price", Op::Gt, 10.5)
        .and("note", Op::Contains, "earn")
        .and_exists("volume");
    let json = serde_json::to_string(&filter).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, filter);
    let event = Event::builder()
        .attr("symbol", "ACME")
        .attr("price", 11.0)
        .attr("note", "q3 earnings call")
        .attr("volume", 9_000)
        .build();
    assert!(back.matches(&event));
}

#[test]
fn parsed_filter_text_equals_constructed_filter_after_round_trip() {
    let parsed = reef::pubsub::parse_filter(r#"symbol = "ACME" && price > 10.5"#).expect("parse");
    let json = serde_json::to_string(&parsed).expect("serialize");
    let back: Filter = serde_json::from_str(&json).expect("deserialize");
    let constructed = Filter::new()
        .and("symbol", Op::Eq, "ACME")
        .and("price", Op::Gt, 10.5);
    assert_eq!(back, constructed);
}

// --------------------------------------------------------------------------
// reef-wire frames: the same types framed as they actually travel over TCP.

mod wire_frames {
    use super::*;
    use reef::attention::UploadReceipt;
    use reef::pubsub::{BrokerStatsSnapshot, EventId, SubscriptionId};
    use reef::wire::{
        AutoSubEntry, AutoSubPolicy, AutoSubReceipt, Deliver, FederationStatsSnapshot, FeedChange,
        Frame, Request, Response, ServerMessage, WireStatsSnapshot,
    };

    fn frame_round_trip_request(request: Request) {
        let frame = Frame::encode(&request).expect("encode");
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).expect("write");
        let back = Frame::read_from(&mut bytes.as_slice())
            .expect("read")
            .expect("one frame present");
        assert_eq!(back.decode::<Request>().expect("decode"), request);
    }

    fn frame_round_trip_server(message: ServerMessage) {
        let frame = Frame::encode(&message).expect("encode");
        let mut bytes = Vec::new();
        frame.write_to(&mut bytes).expect("write");
        let back = Frame::read_from(&mut bytes.as_slice())
            .expect("read")
            .expect("one frame present");
        assert_eq!(back.decode::<ServerMessage>().expect("decode"), message);
    }

    #[test]
    fn every_request_variant_survives_framing() {
        for request in [
            Request::Hello {
                version: 1,
                client: "ext".into(),
            },
            Request::Subscribe {
                filter: Filter::new()
                    .and("price", Op::Gt, 10.0)
                    .and("symbol", Op::Eq, "ACME"),
            },
            Request::Unsubscribe {
                subscription: SubscriptionId(42),
            },
            Request::Publish {
                event: Event::builder()
                    .attr("price", 12.5)
                    .attr("note", "quotes \"and\" unicode: ünïcode")
                    .attr("up", true)
                    .attr("volume", -3)
                    .build(),
            },
            Request::UploadClicks {
                batch: ClickBatch {
                    user: UserId(3),
                    clicks: vec![Click {
                        user: UserId(3),
                        day: 2,
                        tick: 17,
                        url: "http://site.example/p".into(),
                        referrer: None,
                    }],
                },
            },
            Request::AutoSubscribe {
                user: UserId(7),
                policy: None,
            },
            Request::AutoSubscribe {
                user: UserId(7),
                policy: Some(AutoSubPolicy {
                    recommender: reef::core::AutoSubMode::Content,
                    max_filters: 2,
                    half_life_secs: 30.0,
                    min_score: 1.5,
                }),
            },
            Request::AutoUnsubscribe { user: UserId(7) },
            Request::Stats,
            Request::Ping,
            Request::Bye,
        ] {
            frame_round_trip_request(request);
        }
    }

    #[test]
    fn every_response_variant_survives_framing() {
        for response in [
            Response::Hello {
                version: 1,
                server: "reefd".into(),
                subscriber: 9,
            },
            Response::Subscribed {
                subscription: SubscriptionId(1),
            },
            Response::Unsubscribed {
                filter: Filter::topic("news"),
            },
            Response::Published {
                id: EventId(5),
                delivered: 2,
                dropped: 0,
            },
            Response::ClicksAccepted {
                receipt: UploadReceipt {
                    user: UserId(3),
                    accepted: 1,
                    rejected: 0,
                    wire_bytes: 200,
                    total_stored: 11,
                },
            },
            Response::Stats {
                broker: BrokerStatsSnapshot::default(),
                wire: WireStatsSnapshot::default(),
                federation: FederationStatsSnapshot::default(),
            },
            Response::AutoSubscribed {
                receipt: AutoSubReceipt {
                    user: UserId(7),
                    entries: vec![AutoSubEntry {
                        filter: Filter::topic("http://news.example/feed.xml"),
                        reason: "topic: 5 clicks on news.example".into(),
                        score: 5.0,
                    }],
                },
            },
            Response::AutoUnsubscribed {
                receipt: AutoSubReceipt {
                    user: UserId(7),
                    entries: Vec::new(),
                },
            },
            Response::Pong,
            Response::Bye,
            Response::Error {
                message: "schema violation".into(),
            },
        ] {
            frame_round_trip_server(ServerMessage::Reply(response));
        }
    }

    #[test]
    fn feed_changes_survive_framing() {
        frame_round_trip_server(ServerMessage::FeedChanged(FeedChange {
            user: UserId(11),
            installed: vec![AutoSubEntry {
                filter: Filter::topic("http://a.example/feed.rss"),
                reason: "topic: 3 clicks on a.example".into(),
                score: 3.0,
            }],
            retired: vec![AutoSubEntry {
                filter: Filter::keyword("body", "broker"),
                reason: "content: 4 clicks on broker".into(),
                score: 0.5,
            }],
        }));
    }

    #[test]
    fn deliveries_survive_framing() {
        frame_round_trip_server(ServerMessage::Deliver(Deliver {
            event: PublishedEvent {
                id: EventId(8),
                published_at: 44,
                event: Event::builder().attr("price", 10.01).build(),
            },
        }));
    }
}

// --------------------------------------------------------------------------
// Codec equivalence: random protocol values must decode identically from
// both the v1 JSON codec and the v2 binary codec.

mod codec_equivalence {
    use super::*;
    use proptest::prelude::*;
    use reef::attention::UploadReceipt;
    use reef::core::AutoSubMode;
    use reef::pubsub::{
        BrokerStatsSnapshot, EventId, GlobalSubId, Op, PeerMsg, Predicate, SubscriptionId,
    };
    use reef::wire::{
        AutoSubEntry, AutoSubPolicy, AutoSubReceipt, ClientFrame, CodecKind, CodecStatsSnapshot,
        Deliver, FederationStatsSnapshot, FeedChange, LoopStatsSnapshot, Request, Response,
        ServerFrame, WireStatsSnapshot,
    };

    const BOTH: [CodecKind; 2] = [CodecKind::Json, CodecKind::Binary];

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            "[ -~]{0,16}".prop_map(Value::Str),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn arb_filter() -> impl Strategy<Value = Filter> {
        prop::collection::vec(("[a-z]{1,8}", 0usize..Op::ALL.len(), arb_value()), 0..4).prop_map(
            |predicates| {
                predicates
                    .into_iter()
                    .map(|(attr, op, operand)| Predicate::new(attr, Op::ALL[op], operand))
                    .collect()
            },
        )
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..5)
            .prop_map(|attrs| attrs.into_iter().collect())
    }

    fn arb_published() -> impl Strategy<Value = PublishedEvent> {
        (any::<u64>(), any::<u64>(), arb_event()).prop_map(|(id, published_at, event)| {
            PublishedEvent {
                id: EventId(id),
                published_at,
                event,
            }
        })
    }

    fn arb_batch() -> impl Strategy<Value = ClickBatch> {
        (
            any::<u32>(),
            prop::collection::vec(
                (
                    any::<u32>(),
                    any::<u32>(),
                    any::<u64>(),
                    "[ -~]{0,24}",
                    proptest::option::of("[ -~]{0,12}"),
                ),
                0..4,
            ),
        )
            .prop_map(|(user, clicks)| ClickBatch {
                user: UserId(user),
                clicks: clicks
                    .into_iter()
                    .map(|(user, day, tick, url, referrer)| Click {
                        user: UserId(user),
                        day,
                        tick,
                        url,
                        referrer,
                    })
                    .collect(),
            })
    }

    fn arb_policy() -> impl Strategy<Value = AutoSubPolicy> {
        (any::<bool>(), any::<u32>(), any::<f64>(), any::<f64>()).prop_map(
            |(content, max_filters, half_life_secs, min_score)| AutoSubPolicy {
                recommender: if content {
                    AutoSubMode::Content
                } else {
                    AutoSubMode::Topic
                },
                max_filters,
                half_life_secs,
                min_score,
            },
        )
    }

    fn arb_autosub_entries() -> impl Strategy<Value = Vec<AutoSubEntry>> {
        prop::collection::vec(
            (arb_filter(), "[ -~]{0,24}", any::<f64>()).prop_map(|(filter, reason, score)| {
                AutoSubEntry {
                    filter,
                    reason,
                    score,
                }
            }),
            0..3,
        )
    }

    fn arb_receipt() -> impl Strategy<Value = AutoSubReceipt> {
        (any::<u32>(), arb_autosub_entries()).prop_map(|(user, entries)| AutoSubReceipt {
            user: UserId(user),
            entries,
        })
    }

    fn arb_feed_change() -> impl Strategy<Value = FeedChange> {
        (any::<u32>(), arb_autosub_entries(), arb_autosub_entries()).prop_map(
            |(user, installed, retired)| FeedChange {
                user: UserId(user),
                installed,
                retired,
            },
        )
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (any::<u8>(), "[ -~]{0,12}")
                .prop_map(|(version, client)| Request::Hello { version, client }),
            (any::<u32>(), proptest::option::of(arb_policy())).prop_map(|(user, policy)| {
                Request::AutoSubscribe {
                    user: UserId(user),
                    policy,
                }
            }),
            any::<u32>().prop_map(|user| Request::AutoUnsubscribe { user: UserId(user) }),
            arb_filter().prop_map(|filter| Request::Subscribe { filter }),
            any::<u64>().prop_map(|id| Request::Unsubscribe {
                subscription: SubscriptionId(id),
            }),
            arb_event().prop_map(|event| Request::Publish { event }),
            arb_batch().prop_map(|batch| Request::UploadClicks { batch }),
            Just(Request::Stats),
            Just(Request::Ping),
            Just(Request::Bye),
            (any::<u8>(), "[ -~]{0,12}", any::<u32>()).prop_map(|(version, broker, broker_id)| {
                Request::PeerHello {
                    version,
                    broker,
                    broker_id,
                }
            }),
        ]
    }

    /// Derive full stats snapshots from two seeds: every field gets a
    /// distinct mixed value, which exercises all varint widths without a
    /// 20-arity tuple strategy.
    fn mixed(seed: u64, lane: u64) -> u64 {
        seed.wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(lane.wrapping_mul(0xd1342543de82ef95))
    }

    fn codec_stats(seed: u64, lane: u64) -> CodecStatsSnapshot {
        CodecStatsSnapshot {
            frames_in: mixed(seed, lane),
            frames_out: mixed(seed, lane + 1),
            bytes_in: mixed(seed, lane + 2),
            bytes_out: mixed(seed, lane + 3),
        }
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            (any::<u8>(), "[ -~]{0,12}", any::<u64>()).prop_map(|(version, server, subscriber)| {
                Response::Hello {
                    version,
                    server,
                    subscriber,
                }
            }),
            any::<u64>().prop_map(|id| Response::Subscribed {
                subscription: SubscriptionId(id),
            }),
            arb_filter().prop_map(|filter| Response::Unsubscribed { filter }),
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(id, delivered, dropped)| {
                Response::Published {
                    id: EventId(id),
                    delivered,
                    dropped,
                }
            }),
            (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(user, accepted, rejected)| {
                Response::ClicksAccepted {
                    receipt: UploadReceipt {
                        user: UserId(user),
                        accepted,
                        rejected,
                        wire_bytes: accepted ^ rejected,
                        total_stored: accepted.wrapping_add(rejected),
                    },
                }
            }),
            (any::<u64>(), any::<u32>()).prop_map(|(seed, broker_id)| Response::Stats {
                broker: BrokerStatsSnapshot {
                    events_published: mixed(seed, 0),
                    deliveries: mixed(seed, 1),
                    drops: mixed(seed, 2),
                    subscribes: mixed(seed, 3),
                    unsubscribes: mixed(seed, 4),
                },
                wire: WireStatsSnapshot {
                    connections_opened: mixed(seed, 5),
                    connections_closed: mixed(seed, 6),
                    frames_in: mixed(seed, 7),
                    frames_out: mixed(seed, 8),
                    bytes_in: mixed(seed, 9),
                    bytes_out: mixed(seed, 10),
                    requests: mixed(seed, 11),
                    deliveries: mixed(seed, 12),
                    delivery_drops: mixed(seed, 13),
                    errors: mixed(seed, 14),
                    loop_wakeups: mixed(seed, 39),
                    loop_read_events: mixed(seed, 40),
                    loop_write_events: mixed(seed, 41),
                    writes_coalesced: mixed(seed, 42),
                    wal_bytes: mixed(seed, 43),
                    wal_segments: mixed(seed, 44),
                    wal_snapshots: mixed(seed, 45),
                    recovered_clicks: mixed(seed, 46),
                    wal_truncated_bytes: mixed(seed, 47),
                    autosub_users: mixed(seed, 48),
                    autosub_active: mixed(seed, 49),
                    autosub_derived: mixed(seed, 50),
                    autosub_retired: mixed(seed, 51),
                    autosub_last_refresh_us: mixed(seed, 52),
                    matcher_swaps: mixed(seed, 56),
                    json: codec_stats(seed, 15),
                    binary: codec_stats(seed, 19),
                    loops: (0..(seed % 3))
                        .map(|i| LoopStatsSnapshot {
                            loop_id: i,
                            wakeups: mixed(seed, 57 + i),
                            read_events: mixed(seed, 60 + i),
                            write_events: mixed(seed, 63 + i),
                            writes_coalesced: mixed(seed, 66 + i),
                            connections: mixed(seed, 69 + i),
                        })
                        .collect(),
                },
                federation: FederationStatsSnapshot {
                    broker_id,
                    peers: mixed(seed, 23),
                    routing_entries: mixed(seed, 24),
                    advertisements: mixed(seed, 25),
                    subs_forwarded: mixed(seed, 26),
                    subs_aggregated: mixed(seed, 27),
                    events_forwarded: mixed(seed, 28),
                    events_received: mixed(seed, 29),
                    events_dropped: mixed(seed, 30),
                    mesh_alternates: mixed(seed, 53),
                    mesh_reroutes: mixed(seed, 54),
                    mesh_duplicates_suppressed: mixed(seed, 55),
                    json: codec_stats(seed, 31),
                    binary: codec_stats(seed, 35),
                },
            }),
            arb_receipt().prop_map(|receipt| Response::AutoSubscribed { receipt }),
            arb_receipt().prop_map(|receipt| Response::AutoUnsubscribed { receipt }),
            Just(Response::Pong),
            Just(Response::Bye),
            (any::<u8>(), "[ -~]{0,12}", any::<u32>()).prop_map(|(version, broker, broker_id)| {
                Response::PeerWelcome {
                    version,
                    broker,
                    broker_id,
                }
            }),
            "[ -~]{0,40}".prop_map(|message| Response::Error { message }),
        ]
    }

    fn arb_peer_msg() -> impl Strategy<Value = PeerMsg> {
        prop_oneof![
            (any::<u64>(), arb_filter()).prop_map(|(sub, filter)| PeerMsg::SubFwd {
                sub: GlobalSubId(sub),
                filter,
            }),
            any::<u64>().prop_map(|sub| PeerMsg::UnsubFwd {
                sub: GlobalSubId(sub),
            }),
            (arb_published(), any::<u32>())
                .prop_map(|(event, hops)| PeerMsg::EventFwd { event, hops }),
            (
                any::<u64>(),
                arb_filter(),
                prop::collection::vec(any::<u32>(), 0..6)
            )
                .prop_map(|(sub, filter, path)| PeerMsg::SubAdv {
                    sub: GlobalSubId(sub),
                    filter,
                    path,
                }),
            any::<u64>().prop_map(|nonce| PeerMsg::Ping { nonce }),
            any::<u64>().prop_map(|nonce| PeerMsg::Pong { nonce }),
        ]
    }

    fn fail(e: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::fail(e.to_string())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Any request decodes to the same value from both codecs; the
        /// binary codec additionally preserves the correlation id.
        #[test]
        fn requests_decode_identically_from_both_codecs(
            corr in any::<u64>(),
            request in arb_request(),
        ) {
            let frame = ClientFrame { corr, request };
            for kind in BOTH {
                let codec = kind.codec();
                let encoded = codec.encode_client(&frame).map_err(fail)?;
                prop_assert_eq!(encoded.version, kind.version());
                let back = codec.decode_client(&encoded).map_err(fail)?;
                prop_assert_eq!(&back.request, &frame.request);
                if kind == CodecKind::Binary {
                    prop_assert_eq!(back.corr, frame.corr);
                }
            }
        }

        /// Any reply and any delivery decode to the same value from both
        /// codecs.
        #[test]
        fn server_frames_decode_identically_from_both_codecs(
            corr in any::<u64>(),
            response in arb_response(),
            delivery in arb_published(),
            change in arb_feed_change(),
        ) {
            let reply = ServerFrame::Reply { corr, response };
            let deliver = ServerFrame::Deliver(Deliver { event: delivery });
            let feed = ServerFrame::FeedChanged(change);
            for kind in BOTH {
                let codec = kind.codec();
                for frame in [&reply, &deliver, &feed] {
                    let encoded = codec.encode_server(frame).map_err(fail)?;
                    let back = codec.decode_server(&encoded).map_err(fail)?;
                    match (&back, frame) {
                        (
                            ServerFrame::Reply { corr: got_corr, response: got },
                            ServerFrame::Reply { corr: want_corr, response: want },
                        ) => {
                            prop_assert_eq!(got, want);
                            if kind == CodecKind::Binary {
                                prop_assert_eq!(got_corr, want_corr);
                            }
                        }
                        (ServerFrame::Deliver(got), ServerFrame::Deliver(want)) => {
                            prop_assert_eq!(got, want);
                        }
                        (ServerFrame::FeedChanged(got), ServerFrame::FeedChanged(want)) => {
                            prop_assert_eq!(got, want);
                        }
                        _ => return Err(TestCaseError::fail("frame kind changed in transit")),
                    }
                }
            }
        }

        /// Any routing message decodes to the same value from both codecs
        /// — this is what keeps mixed-codec federations coherent.
        #[test]
        fn peer_msgs_decode_identically_from_both_codecs(msg in arb_peer_msg()) {
            for kind in BOTH {
                let codec = kind.codec();
                let encoded = codec.encode_peer(&msg).map_err(fail)?;
                prop_assert_eq!(encoded.version, kind.version());
                let back = codec.decode_peer(&encoded).map_err(fail)?;
                prop_assert_eq!(&back, &msg);
            }
        }

        /// Binary publish frames are never larger than their JSON
        /// equivalents on realistic (topical, stock-quote-like) events.
        #[test]
        fn binary_publish_frames_beat_json_on_realistic_events(
            topic in "[a-z]{3,12}",
            body in "[ -~]{0,60}",
            price in 0.0f64..10_000.0,
            volume in any::<u32>(),
        ) {
            let frame = ClientFrame {
                corr: 1,
                request: Request::Publish {
                    event: Event::builder()
                        .attr("topic", topic)
                        .attr("body", body)
                        .attr("price", price)
                        .attr("volume", i64::from(volume))
                        .build(),
                },
            };
            let json = CodecKind::Json.codec().encode_client(&frame).map_err(fail)?;
            let binary = CodecKind::Binary.codec().encode_client(&frame).map_err(fail)?;
            prop_assert!(
                binary.wire_len() < json.wire_len(),
                "binary {} >= json {}",
                binary.wire_len(),
                json.wire_len()
            );
        }
    }
}

// --------------------------------------------------------------------------
// Upload accounting: the receipt's `wire_bytes` must report what actually
// crossed the wire — the encoded frame's size under the connection's
// negotiated codec — not the batch's JSON rendering.

mod upload_accounting {
    use super::*;
    use reef::wire::{BrokerServer, ClientFrame, CodecKind, Frame, Request, Response, ServerFrame};
    use std::net::TcpStream;

    fn roundtrip(
        stream: &mut TcpStream,
        codec: &dyn reef::wire::WireCodec,
        corr: u64,
        request: Request,
    ) -> (usize, Response) {
        let frame = codec
            .encode_client(&ClientFrame { corr, request })
            .expect("encode");
        let sent = frame.write_to(stream).expect("write");
        let reply = Frame::read_from(stream)
            .expect("read")
            .expect("reply frame");
        match codec.decode_server(&reply).expect("decode reply") {
            ServerFrame::Reply {
                corr: got,
                response,
            } => {
                // v1 carries no correlation ids on the wire (pairing is
                // by order); v2 must echo ours.
                if codec.kind() == CodecKind::Binary {
                    assert_eq!(got, corr, "reply pairs by correlation id");
                }
                (sent, response)
            }
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    /// On a binary (v2, compressed) connection the receipt accounts the
    /// actual frame bytes, which are far fewer than the JSON size the
    /// receipt used to report.
    #[test]
    fn receipt_wire_bytes_reports_actual_frame_size() {
        let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
        let codec = CodecKind::Binary.codec();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

        let (_, hello) = roundtrip(
            &mut stream,
            codec,
            1,
            Request::Hello {
                version: 2,
                client: "accounting".into(),
            },
        );
        assert!(matches!(hello, Response::Hello { .. }), "got {hello:?}");

        let batch = ClickBatch {
            user: UserId(5),
            clicks: (0..10)
                .map(|i| Click {
                    user: UserId(5),
                    day: 2,
                    tick: 100 + i,
                    url: format!("http://site.example/page-{i}.html"),
                    referrer: (i > 0).then(|| format!("http://site.example/page-{}.html", i - 1)),
                })
                .collect(),
        };
        let json_size = batch.wire_size() as u64;
        let (sent, response) = roundtrip(
            &mut stream,
            codec,
            2,
            Request::UploadClicks {
                batch: batch.clone(),
            },
        );
        let Response::ClicksAccepted { receipt } = response else {
            panic!("expected ClicksAccepted, got {response:?}");
        };
        assert_eq!(receipt.accepted, 10);
        assert_eq!(
            receipt.wire_bytes, sent as u64,
            "receipt must account the frame bytes the codec produced"
        );
        assert!(
            receipt.wire_bytes < json_size,
            "compressed v2 upload ({} B) must undercut the JSON size ({json_size} B) \
             the receipt used to report",
            receipt.wire_bytes
        );
        server.shutdown();
    }

    /// A v1 JSON connection reports the JSON frame size — which includes
    /// the frame header, so it too differs from the bare batch JSON.
    #[test]
    fn receipt_wire_bytes_reports_v1_frame_size_too() {
        let server = BrokerServer::bind("127.0.0.1:0").expect("bind");
        let codec = CodecKind::Json.codec();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let (_, hello) = roundtrip(
            &mut stream,
            codec,
            1,
            Request::Hello {
                version: 1,
                client: "legacy".into(),
            },
        );
        assert!(matches!(hello, Response::Hello { .. }), "got {hello:?}");
        let batch = ClickBatch {
            user: UserId(1),
            clicks: vec![Click {
                user: UserId(1),
                day: 0,
                tick: 1,
                url: "http://a.example/".into(),
                referrer: None,
            }],
        };
        let (sent, response) = roundtrip(&mut stream, codec, 2, Request::UploadClicks { batch });
        let Response::ClicksAccepted { receipt } = response else {
            panic!("expected ClicksAccepted, got {response:?}");
        };
        assert_eq!(receipt.wire_bytes, sent as u64);
        server.shutdown();
    }
}

// --------------------------------------------------------------------------
// Incremental decoding: the event loop's partial-frame reader must produce
// exactly the frames a whole-buffer reader would, no matter where the
// network splits the byte stream.

mod incremental_decode {
    use super::*;
    use proptest::prelude::*;
    use reef::wire::{ClientFrame, CodecKind, Frame, FrameDecoder, Request};

    /// Small but structurally varied requests; payload content is
    /// irrelevant to framing, boundary coverage is what matters.
    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (any::<u8>(), "[ -~]{0,24}")
                .prop_map(|(version, client)| Request::Hello { version, client }),
            Just(Request::Ping),
            Just(Request::Stats),
            prop::collection::vec(("[a-z]{1,6}", any::<i64>()), 0..6).prop_map(|attrs| {
                let mut builder = Event::builder();
                for (name, value) in attrs {
                    builder = builder.attr(name, value);
                }
                Request::Publish {
                    event: builder.build(),
                }
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Mixed v1/v2 frame streams split at arbitrary byte boundaries
        /// reassemble into exactly the whole-buffer decode.
        #[test]
        fn split_streams_decode_identically(
            frames in prop::collection::vec((any::<bool>(), any::<u64>(), arb_request()), 1..8),
            cuts in prop::collection::vec(any::<u32>(), 0..24),
        ) {
            // Encode the conversation the way real connections do.
            let mut encoded: Vec<Frame> = Vec::new();
            let mut stream: Vec<u8> = Vec::new();
            for (binary, corr, request) in &frames {
                let kind = if *binary { CodecKind::Binary } else { CodecKind::Json };
                let frame = kind
                    .codec()
                    .encode_client(&ClientFrame { corr: *corr, request: request.clone() })
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                frame
                    .write_to(&mut stream)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                encoded.push(frame);
            }

            // The oracle: the blocking whole-buffer reader.
            let mut whole = Vec::new();
            let mut cursor: &[u8] = &stream;
            while let Some(frame) = Frame::read_from(&mut cursor)
                .map_err(|e| TestCaseError::fail(e.to_string()))?
            {
                whole.push(frame);
            }
            prop_assert_eq!(&whole, &encoded);

            // Split the identical bytes at random boundaries and feed the
            // chunks through the incremental decoder.
            let mut boundaries: Vec<usize> = cuts
                .into_iter()
                .map(|c| c as usize % (stream.len() + 1))
                .collect();
            boundaries.push(0);
            boundaries.push(stream.len());
            boundaries.sort_unstable();
            boundaries.dedup();
            let mut decoder = FrameDecoder::new();
            let mut incremental = Vec::new();
            for window in boundaries.windows(2) {
                decoder.extend(&stream[window[0]..window[1]]);
                while let Some(frame) = decoder
                    .next_frame()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?
                {
                    incremental.push(frame);
                }
            }
            prop_assert_eq!(&incremental, &encoded);
            prop_assert_eq!(decoder.buffered(), 0);

            // Each reassembled frame still decodes under its codec.
            for (frame, (_, corr, request)) in incremental.iter().zip(&frames) {
                let kind = CodecKind::for_version(frame.version)
                    .ok_or_else(|| TestCaseError::fail("unknown version"))?;
                let back = kind
                    .codec()
                    .decode_client(frame)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(&back.request, request);
                if kind == CodecKind::Binary {
                    prop_assert_eq!(back.corr, *corr);
                }
            }
        }
    }
}
