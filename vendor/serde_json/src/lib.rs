//! Offline workspace shim for `serde_json`.
//!
//! Renders the serde shim's [`serde::Value`] interchange tree to JSON text
//! and parses JSON text back, covering the functions the reef workspace
//! calls: [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`] and
//! [`from_slice`]. Output matches real serde_json for the supported data
//! model: compact form with no spaces, floats always carrying a decimal
//! point or exponent, strings with standard JSON escapes.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = fmt::write(out, format_args!("{i}"));
        }
        Value::UInt(u) => {
            let _ = fmt::write(out, format_args!("{u}"));
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Match serde_json: integral floats keep a trailing `.0`; other
            // values use Rust's shortest round-trip formatting.
            if f.fract() == 0.0 && f.abs() < 1e16 {
                let _ = fmt::write(out, format_args!("{f:.1}"));
            } else {
                let _ = fmt::write(out, format_args!("{f}"));
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Literals that overflow f64 parse to ±inf, which serialization
        // (correctly) refuses to emit — accepting them here would make
        // the parser produce values the printer cannot round-trip.
        // Reject them like real serde_json does.
        let finite = |f: f64| {
            if f.is_finite() {
                Ok(Value::Float(f))
            } else {
                Err(Error::new(format!("number out of range: `{text}`")))
            }
        };
        if is_float {
            text.parse::<f64>()
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
                .and_then(finite)
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Larger than i64: keep full u64 precision when possible
                // (64-bit ids must round-trip exactly), float only as the
                // last resort.
                Err(_) => match text.parse::<u64>() {
                    Ok(u) => Ok(Value::UInt(u)),
                    Err(_) => text
                        .parse::<f64>()
                        .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
                        .and_then(finite),
                },
            }
        }
    }
}
