//! Offline workspace shim for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of serde's API that the reef workspace actually uses:
//! the `Serialize` / `Deserialize` traits plus their derive macros. Instead
//! of serde's visitor architecture, values serialize to and from a single
//! JSON-like tree ([`Value`]); the companion `serde_json` shim renders that
//! tree to text and parses it back.
//!
//! The data model intentionally matches `serde_json`'s external behavior for
//! the shapes the workspace uses: structs become objects with fields in
//! declaration order, newtype structs are transparent, enums are externally
//! tagged, `Option` is `null`-or-value, and maps keep their key order.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like interchange tree used by the shim in place of serde's
/// serializer/deserializer pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (JSON numbers without fraction or exponent).
    Int(i64),
    /// Non-negative integer above `i64::MAX` (a large `u64`). Kept
    /// separate from [`Value::Int`] so 64-bit ids round-trip exactly
    /// instead of degrading to float precision.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in an object by name (first match wins, like serde).
pub fn __get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A required field was absent from the input object.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` of `{ty}`"))
    }

    /// The input had the wrong JSON shape for the target type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeError(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the interchange [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the interchange [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert a [`Value`] back into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {} out of range for {}", i, stringify!($t)
                        ))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!(
                            "integer {} out of range for {}", u, stringify!($t)
                        ))),
                    // Accept floats with integral values (e.g. round-tripped
                    // through a float-producing serializer).
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            // Above i64::MAX the value must not degrade to f64: 64-bit
            // ids (e.g. namespaced subscription ids) need every bit.
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Int(i) => Err(DeError::custom(format!("negative integer {i} for u64"))),
            Value::UInt(u) => Ok(*u),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            other => Err(DeError::type_mismatch("u64", other)),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u128 {
            Value::Int(*self as i64)
        } else if *self <= u64::MAX as u128 {
            Value::UInt(*self as u64)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::type_mismatch("char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::type_mismatch("null", other)),
        }
    }
}

// --------------------------------------------------------------- references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// -------------------------------------------------------------- collections

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, as serde_json users usually get via
        // BTreeMap; HashMap iteration order must not leak into wire bytes.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(std::collections::VecDeque::from)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::type_mismatch("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(std::path::PathBuf::from)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_owned(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}
