//! Offline workspace shim for `crossbeam`.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer channels
//! with cloneable receivers, bounded or unbounded capacity, and the same
//! error vocabulary as crossbeam-channel (`TrySendError`, `TryRecvError`,
//! `RecvError`, `RecvTimeoutError`). Built on a mutex-guarded `VecDeque`
//! plus condvars: not lock-free, but correct, and fast enough for the
//! broker's delivery queues at workspace scale.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cap: Option<usize>,
        /// Signalled when an item arrives or all senders leave.
        on_recv: Condvar,
        /// Signalled when space frees up or all receivers leave.
        on_send: Condvar,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel holding at most `cap` items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            on_recv: Condvar::new(),
            on_send: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full; the item is handed back.
        Full(T),
        /// Every receiver is gone; the item is handed back.
        Disconnected(T),
    }

    /// Error for [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::send_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full; the item is
        /// handed back.
        Timeout(T),
        /// Every receiver is gone; the item is handed back.
        Disconnected(T),
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv`]: channel empty and every sender gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing queued.
        Timeout,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Queue `item` without blocking.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            inner.queue.push_back(item);
            drop(inner);
            self.shared.on_recv.notify_one();
            Ok(())
        }

        /// Queue `item`, blocking while a bounded channel is full.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.on_send.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(item);
            drop(inner);
            self.shared.on_recv.notify_one();
            Ok(())
        }

        /// Queue `item`, blocking at most `timeout` while a bounded channel
        /// is full.
        pub fn send_timeout(&self, item: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(item));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(item));
                        }
                        let (guard, _) = self
                            .shared
                            .on_send
                            .wait_timeout(inner, deadline - now)
                            .unwrap();
                        inner = guard;
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(item);
            drop(inner);
            self.shared.on_recv.notify_one();
            Ok(())
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.on_recv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel; clone freely (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeue the next item without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(item) => {
                    drop(inner);
                    self.shared.on_send.notify_one();
                    Ok(item)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeue the next item, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(item) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.on_send.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.on_recv.wait(inner).unwrap();
            }
        }

        /// Dequeue the next item, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(item) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.on_send.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .on_recv
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over items until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator draining what is currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.on_send.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}
