//! Offline workspace shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes the reef workspace uses: non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, newtype, tuple and struct variants),
//! with serde's externally-tagged enum representation. Parsing is done by
//! hand over `proc_macro::TokenTree` — no `syn`/`quote`, since the build
//! environment is offline — and the generated impl is produced as source
//! text and re-parsed into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed shape of the item a derive was attached to.
enum Item {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — one field is serde's transparent newtype.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let _ = write!(
                    pushes,
                    "__m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                );
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            pushes.join(", ")
                        );
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: match ::serde::__get(__m, \"{f}\") {{\n\
                         Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                         None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                             .map_err(|_| ::serde::DeError::missing_field(\"{name}\", \"{f}\"))?,\n\
                     }},\n"
                );
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let __m = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::type_mismatch(\"object for struct {name}\", __v))?;\n\
                         Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let __s = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::type_mismatch(\"array for struct {name}\", __v))?;\n\
                         if __s.len() != {arity} {{\n\
                             return Err(::serde::DeError::custom(\
                                 format!(\"expected {arity} elements for {name}, got {{}}\", __s.len())));\n\
                         }}\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     match __v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::DeError::type_mismatch(\"null for {name}\", other)),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = writeln!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                        // Also accept the {"Variant": null} shape.
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" if matches!(__inner, ::serde::Value::Null) => Ok({name}::{vn}),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| \
                                     ::serde::DeError::type_mismatch(\"array for variant {vn}\", __inner))?;\n\
                                 if __s.len() != {n} {{\n\
                                     return Err(::serde::DeError::custom(\
                                         \"wrong arity for variant {vn}\".to_string()));\n\
                                 }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }},\n",
                            elems.join(", ")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let _ = write!(
                                inits,
                                "{f}: match ::serde::__get(__m, \"{f}\") {{\n\
                                     Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                                     None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                         .map_err(|_| ::serde::DeError::missing_field(\"{vn}\", \"{f}\"))?,\n\
                                 }},\n"
                            );
                        }
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => {{\n\
                                 let __m = __inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::type_mismatch(\"object for variant {vn}\", __inner))?;\n\
                                 Ok({name}::{vn} {{\n{inits}\n}})\n\
                             }},\n"
                        );
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__map) if __map.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__map[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => Err(::serde::DeError::custom(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => Err(::serde::DeError::type_mismatch(\
                                 \"string or single-key object for enum {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a field-list token stream on commas that sit outside `<...>`.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected variant name, got {other}"),
            };
            i += 1;
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                // `Variant` or `Variant = 3` — discriminants don't affect the
                // wire shape under external tagging.
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}
