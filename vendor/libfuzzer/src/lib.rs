//! Offline workspace shim for `libfuzzer-sys`.
//!
//! The build environment has no registry access and no LLVM libFuzzer
//! runtime to link, so this shim keeps the `fuzz_target!` source surface
//! while swapping the execution engine: instead of the
//! coverage-guided `LLVMFuzzerTestInput` loop, the macro expands to
//!
//! * `pub fn fuzz_one(data: &[u8])` — the target body, callable from the
//!   corpus drivers under plain `cargo test`;
//! * a `main` that replays file arguments (`cargo run --bin <target>
//!   path/to/input…`), reading each file and feeding it to the body —
//!   the same reproduce-one-crash workflow real cargo-fuzz binaries
//!   offer.
//!
//! A registry-connected checkout can point the `libfuzzer-sys` workspace
//! dependency back at crates.io and run the identical target sources
//! under `cargo fuzz` for coverage-guided exploration; nothing in the
//! targets themselves is shim-specific. Until then, coverage comes from
//! the structure-aware corpus drivers in `fuzz/tests/`, which mutate
//! encoder-produced seeds instead of relying on coverage feedback.

#![warn(missing_docs)]

/// Define a fuzz target over a byte-slice input.
///
/// Expands to a `fuzz_one(data: &[u8])` entry point plus a `main` that
/// replays any files passed as command-line arguments through it.
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        /// Run the fuzz body on one input.
        pub fn fuzz_one($data: &[u8]) $body

        fn main() {
            let files: Vec<String> = std::env::args().skip(1).collect();
            if files.is_empty() {
                eprintln!(
                    "offline libfuzzer shim: pass input files to replay \
                     (corpus-driven runs live in fuzz/tests)"
                );
                return;
            }
            for path in files {
                let data = std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("reading fuzz input {path}: {e}"));
                eprintln!("replaying {path} ({} bytes)", data.len());
                fuzz_one(&data);
            }
            eprintln!("all inputs replayed without a crash");
        }
    };
}
