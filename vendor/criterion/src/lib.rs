//! Offline workspace shim for `criterion`.
//!
//! Implements the benchmarking API surface the reef bench suite uses —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`, `criterion_main!` —
//! with a simple median-of-samples timer instead of criterion's full
//! statistical machinery. `cargo bench` therefore runs and prints real
//! numbers, just without outlier analysis or HTML reports.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and an input parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of at least ~1ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples.capacity().max(8) {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_owned();
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        format!("median {}", humanize(median))
    }
}

fn humanize(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        println!("bench {:<50} {}", id.name, bencher.report());
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        println!(
            "bench {:<50} {}",
            format!("{}/{}", self.name, id.name),
            bencher.report()
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        f(&mut bencher, input);
        println!(
            "bench {:<50} {}",
            format!("{}/{}", self.name, id.name),
            bencher.report()
        );
        self
    }

    /// Close the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; the shim runs
            // everything unconditionally.
            $( $group(); )+
        }
    };
}
