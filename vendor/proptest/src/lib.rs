//! Offline workspace shim for `proptest`.
//!
//! Random-input property testing covering the API surface the reef test
//! suites use: the [`Strategy`] trait with `prop_map`, range and
//! regex-literal strategies, `prop::collection::vec`, `proptest::option::of`,
//! tuple strategies, `Just`, `any::<T>()`, `prop_oneof!`, `prop_compose!`,
//! the `proptest!` test macro and the `prop_assert*` family.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with its inputs rendered via `Debug`, which is enough to reproduce since
//! case generation is deterministic per test name.
//!
//! # Seed override
//!
//! Setting `REEF_TEST_SEED=<u64>` perturbs every property's case stream
//! (the same value reproduces the same stream), and each failure report
//! prints the seed in effect so a failing run is replayable with one
//! environment variable. Unset (or `0`) keeps the historical per-name
//! streams byte-identical.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The active `REEF_TEST_SEED` override (`0` = default streams). Parsed
/// once; an unparseable value panics loudly rather than silently testing
/// the wrong thing.
pub fn env_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| match std::env::var("REEF_TEST_SEED") {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("REEF_TEST_SEED must be a u64, got {raw:?}")),
        Err(_) => 0,
    })
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from the test's name and the `REEF_TEST_SEED`
    /// environment override, stable across runs.
    pub fn deterministic(name: &str) -> Self {
        Self::deterministic_seeded(name, env_seed())
    }

    /// A generator seeded from the test's name mixed with `extra`.
    /// `extra == 0` reproduces the historical per-name stream exactly.
    pub fn deterministic_seeded(name: &str, extra: u64) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng(seed ^ extra.wrapping_mul(0x2545f4914f6cdd1d))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].new_value(rng)
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats across a wide dynamic range.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.below(41) as i32 - 20) as f64;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * 10f64.powf(exp)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ------------------------------------------------------- string strategies

/// `&str` strategies are regex-like patterns, as in upstream proptest.
///
/// Supported syntax: literal characters, character classes `[a-z0-9_]`
/// (ranges and literals, no negation), and repetition `{n}` / `{m,n}` on the
/// preceding atom. This covers the patterns in the reef test suites;
/// anything else panics loudly rather than generating wrong data.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.unwrap();
                            let hi = chars.next().unwrap();
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                            prev = None;
                        }
                        Some('\\') => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("bad pattern {pattern:?}"));
                            set.push(esc);
                            prev = Some(esc);
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                set
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("bad pattern {pattern:?}"));
                match esc {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    other => vec![other],
                }
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                panic!("unsupported regex syntax `{c}` in strategy pattern {pattern:?}")
            }
            literal => vec![literal],
        };
        // Optional repetition suffix.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ------------------------------------------------------------- collections

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length falls in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy generating `Option`s from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

/// Namespace alias used by `prop::collection::vec` call sites.
pub mod prop {
    pub use super::collection;
    pub use super::option;
}

/// The glob import used by every proptest suite.
pub mod prelude {
    pub use super::{
        any, prop, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestRng, Union,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

// ------------------------------------------------------------------ macros

/// Define property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                // Snapshot inputs up front: the body may consume them.
                let __inputs = format!("{:#?}", ($(&$arg,)*));
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\ninputs: {}\n\
                         seed: replay this stream with REEF_TEST_SEED={}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs,
                        $crate::env_seed()
                    );
                }
            }
        }
    )*};
}

/// Compose argument strategies into a derived strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)*), move |($($arg,)*)| $body)
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property body; failure aborts the case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}
