//! Offline workspace shim for `rand`.
//!
//! Provides the subset of the rand 0.8 API used by the reef workspace:
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64)
//! and [`rngs::mock::StepRng`]. Determinism only needs to hold within this
//! workspace — reef seeds every generator explicitly — so the exact stream
//! differs from upstream rand, which no code here depends on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] like upstream rand.
pub trait Rng: RngCore {
    /// A uniformly random `T` (bools, floats in `[0, 1)`, full-range ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from an [`Rng`] without parameters.
pub trait Standard: Sized {
    /// Draw a value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be drawn from, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform enough for simulation work and
/// branch-free (Lemire's method without the rejection step).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy — here, from the system clock,
    /// since the shim has no OS RNG and reef always seeds explicitly.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-progression generator: `start`, `start + step`, …
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// A generator yielding `start`, then adding `step` each call.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng { value: start, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.step);
                out
            }
        }
    }
}

/// A value from a clock-seeded [`rngs::StdRng`] (shim stand-in for rand's
/// thread-local generator).
pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    T::from_rng(&mut StdRng::from_entropy())
}
