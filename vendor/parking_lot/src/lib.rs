//! Offline workspace shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, and a poisoned lock (a thread panicked while holding it)
//! hands back the inner data rather than poisoning every later access.

use std::fmt;
use std::sync::{self, PoisonError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}
