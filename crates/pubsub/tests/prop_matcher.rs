//! Property-based tests for the matching engines and the covering relation.

use proptest::prelude::*;
use reef_pubsub::{
    Event, Filter, IndexMatcher, MatchEngine, NaiveMatcher, Op, SubscriptionId, Value,
};

/// Small attribute universe so filters and events actually collide.
const ATTRS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..5).prop_map(Value::from),
        (-5i64..5).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-c]{0,3}".prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Prefix),
        Just(Op::Suffix),
        Just(Op::Contains),
        Just(Op::Exists),
    ]
}

prop_compose! {
    fn arb_predicate()(attr in 0usize..4, op in arb_op(), operand in arb_value())
        -> (String, Op, Value)
    {
        (ATTRS[attr].to_owned(), op, operand)
    }
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop::collection::vec(arb_predicate(), 0..4).prop_map(|preds| {
        let mut f = Filter::new();
        for (attr, op, operand) in preds {
            // String ops need string operands to be valid; coerce.
            let operand = if op.is_string_op() {
                Value::from(operand.to_string())
            } else {
                operand
            };
            f = f.and(attr, op, operand);
        }
        f
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::vec((0usize..4, arb_value()), 0..5).prop_map(|pairs| {
        let mut e = Event::new();
        for (attr, value) in pairs {
            if value.is_valid() {
                e.set(ATTRS[attr], value);
            }
        }
        e
    })
}

proptest! {
    /// The index matcher and the naive matcher agree on every workload.
    #[test]
    fn engines_are_equivalent(filters in prop::collection::vec(arb_filter(), 0..25),
                              events in prop::collection::vec(arb_event(), 0..25)) {
        let mut naive = NaiveMatcher::new();
        let mut index = IndexMatcher::new();
        for (i, f) in filters.iter().enumerate() {
            naive.insert(SubscriptionId(i as u64), f.clone());
            index.insert(SubscriptionId(i as u64), f.clone());
        }
        for ev in &events {
            prop_assert_eq!(naive.matches(ev), index.matches(ev));
        }
    }

    /// Removing half the filters keeps the engines equivalent.
    #[test]
    fn engines_equivalent_after_removal(filters in prop::collection::vec(arb_filter(), 1..20),
                                        events in prop::collection::vec(arb_event(), 0..15)) {
        let mut naive = NaiveMatcher::new();
        let mut index = IndexMatcher::new();
        for (i, f) in filters.iter().enumerate() {
            naive.insert(SubscriptionId(i as u64), f.clone());
            index.insert(SubscriptionId(i as u64), f.clone());
        }
        for i in (0..filters.len()).step_by(2) {
            prop_assert_eq!(
                naive.remove(SubscriptionId(i as u64)),
                index.remove(SubscriptionId(i as u64))
            );
        }
        for ev in &events {
            prop_assert_eq!(naive.matches(ev), index.matches(ev));
        }
    }

    /// Covering soundness: if `wide.covers(narrow)`, then every event
    /// matched by `narrow` is matched by `wide`.
    #[test]
    fn covering_is_sound(wide in arb_filter(), narrow in arb_filter(),
                         events in prop::collection::vec(arb_event(), 0..40)) {
        if wide.covers(&narrow) {
            for ev in &events {
                if narrow.matches(ev) {
                    prop_assert!(
                        wide.matches(ev),
                        "covering violated for event {} (wide: {}, narrow: {})",
                        ev, wide, narrow
                    );
                }
            }
        }
    }

    /// Covering is reflexive.
    #[test]
    fn covering_is_reflexive(f in arb_filter()) {
        prop_assert!(f.covers(&f));
    }

    /// Filter matching is deterministic (same event, same answer) and the
    /// empty filter matches everything.
    #[test]
    fn match_all_invariant(ev in arb_event()) {
        prop_assert!(Filter::new().matches(&ev));
        let f = Filter::new().and("alpha", Op::Exists, true);
        prop_assert_eq!(f.matches(&ev), ev.has("alpha"));
    }

    /// An event always matches the exact-equality filter built from its own
    /// attributes.
    #[test]
    fn event_matches_its_own_profile(ev in arb_event()) {
        let mut f = Filter::new();
        for (name, value) in ev.iter() {
            f = f.and(name, Op::Eq, value.clone());
        }
        prop_assert!(f.matches(&ev));
    }
}
