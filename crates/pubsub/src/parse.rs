//! A textual subscription language for the filter algebra.
//!
//! The paper observes that "the gap between people's interests expressed
//! in a natural language and subscriptions expressed in an event algebra
//! … is large" and that such algebras are "meaningful only to experienced
//! programmers" (§2.1, §6). Reef's answer is automation — but a
//! programmer-facing textual form is still the natural way to write the
//! filters that tests, tools, and power users need:
//!
//! ```text
//! symbol = "ACME" && price > 10.5 && note =~ earnings
//! topic = "http://news.example/feed0.rss"
//! x exists && y != 3 || z <= 7        (|| separates alternatives)
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! filters    := conjunction ( "||" conjunction )*
//! conjunction:= predicate ( "&&" predicate )*
//! predicate  := ident OP value | ident "exists"
//! OP         := "=" | "==" | "!=" | "<" | "<=" | ">" | ">=" | "=^" | "=$" | "=~"
//! value      := "quoted string" | number | true | false | bareword
//! ```

use crate::filter::{Filter, Op, Predicate};
use crate::value::Value;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing filter text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl Error for ParseFilterError {}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.input[self.pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    fn peek_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.input[self.pos..].starts_with(s)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.peek_str(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseFilterError {
        ParseFilterError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseFilterError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.input[self.pos..].chars() {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an attribute name"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn operator(&mut self) -> Result<Op, ParseFilterError> {
        self.skip_ws();
        // Longest first.
        const OPS: [(&str, Op); 11] = [
            ("==", Op::Eq),
            ("!=", Op::Ne),
            ("<=", Op::Le),
            (">=", Op::Ge),
            ("=^", Op::Prefix),
            ("=$", Op::Suffix),
            ("=~", Op::Contains),
            ("<", Op::Lt),
            (">", Op::Gt),
            ("=", Op::Eq),
            ("exists", Op::Exists),
        ];
        for (text, op) in OPS {
            if self.eat_str(text) {
                return Ok(op);
            }
        }
        Err(self.error("expected an operator (=, !=, <, <=, >, >=, =^, =$, =~, exists)"))
    }

    fn value(&mut self) -> Result<Value, ParseFilterError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let mut chars = rest.chars();
        match chars.next() {
            None => Err(self.error("expected a value")),
            Some('"') | Some('\'') => {
                let quote = rest.chars().next().expect("checked");
                let body_start = self.pos + 1;
                let mut escaped = false;
                let mut out = String::new();
                let mut offset = 0;
                for c in self.input[body_start..].chars() {
                    offset += c.len_utf8();
                    if escaped {
                        out.push(c);
                        escaped = false;
                        continue;
                    }
                    match c {
                        '\\' => escaped = true,
                        c if c == quote => {
                            self.pos = body_start + offset;
                            return Ok(Value::Str(out));
                        }
                        c => out.push(c),
                    }
                }
                self.pos = self.input.len();
                Err(self.error("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = self.pos;
                self.pos += c.len_utf8();
                let mut is_float = false;
                for c in self.input[self.pos..].chars() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == '.' && !is_float {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.input[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|e| self.error(format!("bad float `{text}`: {e}")))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|e| self.error(format!("bad integer `{text}`: {e}")))
                }
            }
            Some(_) => {
                // Bareword: true/false or a plain string token.
                let word = self.ident()?;
                Ok(match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => Value::Str(word),
                })
            }
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseFilterError> {
        let attr = self.ident()?;
        let op = self.operator()?;
        if op == Op::Exists {
            return Ok(Predicate::new(attr, Op::Exists, true));
        }
        let value = self.value()?;
        Ok(Predicate::new(attr, op, value))
    }

    fn conjunction(&mut self) -> Result<Filter, ParseFilterError> {
        let mut filter = Filter::new();
        loop {
            filter.push(self.predicate()?);
            if !self.eat_str("&&") {
                return Ok(filter);
            }
        }
    }
}

/// Parse one conjunction, e.g. `symbol = "ACME" && price > 10`.
///
/// # Errors
///
/// Returns [`ParseFilterError`] with the byte offset of the first
/// syntax error.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{parse_filter, Event};
///
/// let filter = parse_filter(r#"symbol = ACME && price > 10"#)?;
/// let ev = Event::builder().attr("symbol", "ACME").attr("price", 12).build();
/// assert!(filter.matches(&ev));
/// # Ok::<(), reef_pubsub::ParseFilterError>(())
/// ```
pub fn parse_filter(input: &str) -> Result<Filter, ParseFilterError> {
    let mut lexer = Lexer::new(input);
    if lexer.at_end() {
        // The empty string is the match-all filter.
        return Ok(Filter::new());
    }
    let filter = lexer.conjunction()?;
    if !lexer.at_end() {
        return Err(lexer.error("unexpected trailing input"));
    }
    Ok(filter)
}

/// Parse a disjunction of conjunctions separated by `||`; an event matches
/// when any returned filter matches. Subscribe each filter separately to
/// get disjunctive semantics from a conjunctive broker.
///
/// # Errors
///
/// Returns [`ParseFilterError`] on the first syntax error.
pub fn parse_filters(input: &str) -> Result<Vec<Filter>, ParseFilterError> {
    let mut lexer = Lexer::new(input);
    if lexer.at_end() {
        return Ok(vec![Filter::new()]);
    }
    let mut filters = vec![lexer.conjunction()?];
    while lexer.eat_str("||") {
        filters.push(lexer.conjunction()?);
    }
    if !lexer.at_end() {
        return Err(lexer.error("unexpected trailing input"));
    }
    Ok(filters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(pairs: &[(&str, Value)]) -> Event {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn parses_simple_equality() {
        let f = parse_filter(r#"symbol = "ACME""#).unwrap();
        assert!(f.matches(&ev(&[("symbol", Value::from("ACME"))])));
        assert!(!f.matches(&ev(&[("symbol", Value::from("X"))])));
    }

    #[test]
    fn parses_conjunction_with_all_operators() {
        let f = parse_filter(
            r#"a = 1 && b != 2 && c < 3 && d <= 4 && e > 5 && f >= 6 && g =^ pre && h =$ post && i =~ mid && j exists"#,
        )
        .unwrap();
        assert_eq!(f.len(), 10);
        let e = ev(&[
            ("a", Value::from(1)),
            ("b", Value::from(3)),
            ("c", Value::from(2)),
            ("d", Value::from(4)),
            ("e", Value::from(6)),
            ("f", Value::from(6)),
            ("g", Value::from("prefix")),
            ("h", Value::from("a post")),
            ("i", Value::from("amidst")),
            ("j", Value::from(0)),
        ]);
        assert!(f.matches(&e));
    }

    #[test]
    fn numbers_and_booleans() {
        let f = parse_filter("x = -3 && y = 2.5 && z = true").unwrap();
        let e = ev(&[
            ("x", Value::from(-3)),
            ("y", Value::from(2.5)),
            ("z", Value::from(true)),
        ]);
        assert!(f.matches(&e));
    }

    #[test]
    fn quoted_strings_with_escapes_and_spaces() {
        let f = parse_filter(r#"title = "hello \"world\" & more""#).unwrap();
        assert!(f.matches(&ev(&[("title", Value::from(r#"hello "world" & more"#))])));
        let f2 = parse_filter("u = 'single quoted'").unwrap();
        assert!(f2.matches(&ev(&[("u", Value::from("single quoted"))])));
    }

    #[test]
    fn barewords_are_strings() {
        let f = parse_filter("city = tromso").unwrap();
        assert!(f.matches(&ev(&[("city", Value::from("tromso"))])));
    }

    #[test]
    fn empty_input_is_match_all() {
        assert!(parse_filter("").unwrap().is_empty());
        assert!(parse_filter("   ").unwrap().is_empty());
    }

    #[test]
    fn double_equals_is_equality() {
        let f = parse_filter("x == 5").unwrap();
        assert!(f.matches(&ev(&[("x", Value::from(5))])));
    }

    #[test]
    fn disjunction_splits_into_filters() {
        let fs = parse_filters("x = 1 || y = 2 && z = 3").unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].len(), 1);
        assert_eq!(fs[1].len(), 2);
        let e1 = ev(&[("x", Value::from(1))]);
        let e2 = ev(&[("y", Value::from(2)), ("z", Value::from(3))]);
        assert!(fs.iter().any(|f| f.matches(&e1)));
        assert!(fs.iter().any(|f| f.matches(&e2)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_filter("price >").unwrap_err();
        assert!(err.at >= 7, "position {}", err.at);
        assert!(err.to_string().contains("value"));

        let err = parse_filter("= 3").unwrap_err();
        assert!(err.message.contains("attribute"));

        let err = parse_filter("a = 1 extra").unwrap_err();
        assert!(err.message.contains("trailing") || err.message.contains("operator"));

        let err = parse_filter(r#"s = "unterminated"#).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn round_trips_through_display() {
        // Display of a parsed filter re-parses to an equivalent filter for
        // numeric/bareword operands.
        let f = parse_filter("a = 1 && b > 2.5 && c =~ mid").unwrap();
        let reparsed = parse_filter(&f.to_string().replace(" ∧ ", " && ")).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn parsed_filters_work_against_a_broker() {
        use crate::broker::Broker;
        let broker = Broker::new();
        let (me, inbox) = broker.register();
        for f in parse_filters("topic = sports || topic = finance").unwrap() {
            broker.subscribe(me, f).unwrap();
        }
        broker.publish(Event::topical("sports", "goal")).unwrap();
        broker.publish(Event::topical("weather", "rain")).unwrap();
        broker.publish(Event::topical("finance", "dip")).unwrap();
        assert_eq!(inbox.drain().len(), 2);
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_filter("x=1&&y>2").unwrap();
        let b = parse_filter("  x  =  1  &&  y  >  2  ").unwrap();
        assert_eq!(a, b);
    }
}
