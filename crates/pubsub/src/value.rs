//! Attribute values carried by events and compared by filters.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A typed attribute value.
///
/// Events in the publish-subscribe substrate are bags of name-value pairs
/// (see [`crate::Event`]); `Value` is the value side of a pair. The type is
/// deliberately small: the Reef paper only requires values that an attention
/// parser can extract from text (strings, numbers, booleans).
///
/// # Examples
///
/// ```
/// use reef_pubsub::Value;
///
/// let v = Value::from("tromso");
/// assert_eq!(v.type_name(), "string");
/// assert!(Value::from(3.5).partial_cmp_value(&Value::from(2)).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 string value.
    Str(String),
    /// Signed 64-bit integer value.
    Int(i64),
    /// 64-bit float value. `NaN` is rejected by [`Value::is_valid`].
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Human-readable name of the value's type, used in error messages and
    /// schema definitions.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
        }
    }

    /// The [`ValueType`] tag for this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Str(_) => ValueType::Str,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Returns `false` for values that must never enter the broker
    /// (currently only `NaN` floats, which would break matching totality).
    pub fn is_valid(&self) -> bool {
        match self {
            Value::Float(f) => !f.is_nan(),
            _ => true,
        }
    }

    /// Borrow the string content if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`, other types return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are *not* truncated; only `Int` returns `Some`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total comparison used by the matching engines.
    ///
    /// Numeric values (`Int`, `Float`) compare with each other on the real
    /// line; strings compare lexicographically; booleans as `false < true`.
    /// Cross-type comparisons (other than int/float) return `None`, which
    /// matchers treat as "predicate does not match".
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality used by the matching engines: int/float compare numerically
    /// (`Int(3) == Float(3.0)`), everything else by exact variant equality.
    pub fn eq_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                self.as_f64() == other.as_f64()
            }
            _ => self == other,
        }
    }

    /// Approximate on-the-wire size in bytes, used by the simulated network
    /// for traffic accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len() + 2,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Type tag for [`Value`], used by [`crate::Schema`] to declare the type of
/// each attribute in a publish-subscribe interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// UTF-8 string.
    Str,
    /// Signed 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
}

impl ValueType {
    /// `true` when a value of type `other` is acceptable where `self` is
    /// declared. Ints are acceptable where floats are declared (numeric
    /// widening), mirroring [`Value::eq_value`].
    pub fn accepts(self, other: ValueType) -> bool {
        self == other || (self == ValueType::Float && other == ValueType::Int)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Str => "string",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Bool => "bool",
        };
        f.write_str(name)
    }
}

/// A key usable in hash maps for equality-indexed matching.
///
/// Floats are keyed by their bit pattern of the canonicalized `f64`
/// representation (ints widen first), so `Int(3)` and `Float(3.0)` land in
/// the same bucket, consistent with [`Value::eq_value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// String key.
    Str(String),
    /// Canonical numeric key (bit pattern of the `f64` value).
    Num(u64),
    /// Boolean key.
    Bool(bool),
}

impl ValueKey {
    /// Build the canonical key for a value. Returns `None` for `NaN`.
    pub fn of(value: &Value) -> Option<ValueKey> {
        match value {
            Value::Str(s) => Some(ValueKey::Str(s.clone())),
            Value::Bool(b) => Some(ValueKey::Bool(*b)),
            v => {
                let f = v.as_f64()?;
                if f.is_nan() {
                    return None;
                }
                // Normalize -0.0 to 0.0 so both hash identically.
                let f = if f == 0.0 { 0.0 } else { f };
                Some(ValueKey::Num(f.to_bits()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from(true).to_string(), "true");
    }

    #[test]
    fn numeric_equality_crosses_int_float() {
        assert!(Value::from(3).eq_value(&Value::from(3.0)));
        assert!(!Value::from(3).eq_value(&Value::from(3.5)));
        assert!(!Value::from("3").eq_value(&Value::from(3)));
    }

    #[test]
    fn ordering_within_and_across_numeric_types() {
        assert_eq!(
            Value::from(2).partial_cmp_value(&Value::from(3.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("b").partial_cmp_value(&Value::from("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::from("b").partial_cmp_value(&Value::from(1)), None);
    }

    #[test]
    fn nan_is_invalid() {
        assert!(!Value::Float(f64::NAN).is_valid());
        assert!(Value::Float(1.0).is_valid());
        assert!(ValueKey::of(&Value::Float(f64::NAN)).is_none());
    }

    #[test]
    fn value_key_unifies_int_and_float() {
        assert_eq!(
            ValueKey::of(&Value::from(3)),
            ValueKey::of(&Value::from(3.0))
        );
        assert_ne!(ValueKey::of(&Value::from(3)), ValueKey::of(&Value::from(4)));
    }

    #[test]
    fn value_key_normalizes_negative_zero() {
        assert_eq!(
            ValueKey::of(&Value::Float(-0.0)),
            ValueKey::of(&Value::Float(0.0))
        );
    }

    #[test]
    fn value_type_accepts_widening() {
        assert!(ValueType::Float.accepts(ValueType::Int));
        assert!(!ValueType::Int.accepts(ValueType::Float));
        assert!(ValueType::Str.accepts(ValueType::Str));
    }

    #[test]
    fn accessor_views() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(5).as_i64(), Some(5));
        assert_eq!(Value::from(5.5).as_i64(), None);
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(5).as_f64(), Some(5.0));
    }

    #[test]
    fn wire_size_scales_with_string_length() {
        assert!(Value::from("aaaaaaaaaa").wire_size() > Value::from("a").wire_size());
        assert_eq!(Value::from(1).wire_size(), 8);
    }
}
