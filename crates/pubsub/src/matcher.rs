//! Matching engines: deciding which subscriptions an event satisfies.
//!
//! Two engines are provided behind the [`MatchEngine`] trait:
//!
//! * [`NaiveMatcher`] — evaluates every registered filter against every
//!   event. Simple, and fastest for very small subscription sets.
//! * [`IndexMatcher`] — the counting algorithm used by scalable
//!   content-based systems (Gryphon's matching tree and Siena's forwarding
//!   tables are refinements of it): predicates are indexed so that an event
//!   only touches predicates over attributes it actually carries, and a
//!   filter matches when its per-event satisfied-predicate count reaches its
//!   total predicate count.
//!
//! Benchmark **B1** (`cargo bench -p reef-bench --bench matcher`) compares
//! the two across subscription-set sizes.

use crate::event::Event;
use crate::filter::{Filter, Op, Predicate};
use crate::value::ValueKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a subscription within one matcher/broker.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// A matching engine maps events to the set of subscription ids whose
/// filters they satisfy.
///
/// Engines are deterministic: [`MatchEngine::matches`] returns ids sorted
/// ascending.
pub trait MatchEngine: fmt::Debug + Send + Sync {
    /// Register a filter under an id. Ids must be unique; re-inserting an
    /// existing id replaces its filter.
    fn insert(&mut self, id: SubscriptionId, filter: Filter);

    /// Remove a subscription. Returns the removed filter, or `None` if the
    /// id was not registered.
    fn remove(&mut self, id: SubscriptionId) -> Option<Filter>;

    /// All subscription ids whose filters match `event`, sorted ascending.
    fn matches(&self, event: &Event) -> Vec<SubscriptionId>;

    /// Number of registered subscriptions.
    fn len(&self) -> usize;

    /// `true` when no subscriptions are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the filter registered under `id`.
    fn filter(&self, id: SubscriptionId) -> Option<&Filter>;

    /// Deep-copy the engine behind a fresh box. Read-mostly callers (the
    /// broker's snapshot index) clone the engine to build an immutable
    /// published view, so matching never has to share a lock with
    /// writers.
    fn clone_box(&self) -> Box<dyn MatchEngine>;
}

/// Linear-scan matcher: evaluates every filter per event.
#[derive(Debug, Default, Clone)]
pub struct NaiveMatcher {
    filters: HashMap<SubscriptionId, Filter>,
}

impl NaiveMatcher {
    /// Create an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchEngine for NaiveMatcher {
    fn insert(&mut self, id: SubscriptionId, filter: Filter) {
        self.filters.insert(id, filter);
    }

    fn remove(&mut self, id: SubscriptionId) -> Option<Filter> {
        self.filters.remove(&id)
    }

    fn matches(&self, event: &Event) -> Vec<SubscriptionId> {
        let mut out: Vec<SubscriptionId> = self
            .filters
            .iter()
            .filter(|(_, f)| f.matches(event))
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.filters.len()
    }

    fn filter(&self, id: SubscriptionId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    fn clone_box(&self) -> Box<dyn MatchEngine> {
        Box::new(self.clone())
    }
}

/// Internal record of one indexed predicate: which filter it belongs to.
#[derive(Debug, Clone)]
struct PredEntry {
    id: SubscriptionId,
    pred: Predicate,
}

/// Counting-based index matcher.
///
/// Predicates are partitioned by attribute name, and within an attribute by
/// class:
///
/// * equality predicates live in a hash map keyed by the canonical
///   [`ValueKey`] of the operand — an event attribute probes one bucket;
/// * existence predicates live in a per-attribute list satisfied by
///   presence alone;
/// * all other predicates (ordered and string operators) live in a
///   per-attribute list evaluated against the event's value for that
///   attribute only.
///
/// A per-event counter per candidate filter tracks how many of its
/// predicates were satisfied; a filter matches when the counter reaches the
/// filter's predicate count. Empty (match-all) filters are tracked
/// separately and match every event.
#[derive(Debug, Default, Clone)]
pub struct IndexMatcher {
    filters: HashMap<SubscriptionId, Filter>,
    /// Predicate counts per filter (cached from `filters`).
    arity: HashMap<SubscriptionId, usize>,
    /// attr -> operand key -> subscriptions with `attr = operand`.
    eq_index: HashMap<String, HashMap<ValueKey, Vec<SubscriptionId>>>,
    /// attr -> subscriptions with `attr exists`.
    exists_index: HashMap<String, Vec<SubscriptionId>>,
    /// attr -> other predicates on that attribute, scanned per event-attr.
    scan_index: HashMap<String, Vec<PredEntry>>,
    /// Subscriptions whose filter is empty (match-all).
    match_all: Vec<SubscriptionId>,
}

impl IndexMatcher {
    /// Create an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    fn index_predicate(&mut self, id: SubscriptionId, pred: &Predicate) {
        match pred.op {
            Op::Eq => {
                if let Some(key) = ValueKey::of(&pred.operand) {
                    self.eq_index
                        .entry(pred.attr.clone())
                        .or_default()
                        .entry(key)
                        .or_default()
                        .push(id);
                } else {
                    // Unkeyable operand (NaN): keep correct by scanning.
                    self.scan_index
                        .entry(pred.attr.clone())
                        .or_default()
                        .push(PredEntry {
                            id,
                            pred: pred.clone(),
                        });
                }
            }
            Op::Exists => {
                self.exists_index
                    .entry(pred.attr.clone())
                    .or_default()
                    .push(id);
            }
            _ => {
                self.scan_index
                    .entry(pred.attr.clone())
                    .or_default()
                    .push(PredEntry {
                        id,
                        pred: pred.clone(),
                    });
            }
        }
    }

    fn unindex_subscription(&mut self, id: SubscriptionId, filter: &Filter) {
        for pred in filter.predicates() {
            match pred.op {
                Op::Eq => {
                    if let Some(key) = ValueKey::of(&pred.operand) {
                        if let Some(by_val) = self.eq_index.get_mut(&pred.attr) {
                            if let Some(ids) = by_val.get_mut(&key) {
                                ids.retain(|x| *x != id);
                                if ids.is_empty() {
                                    by_val.remove(&key);
                                }
                            }
                            if by_val.is_empty() {
                                self.eq_index.remove(&pred.attr);
                            }
                        }
                        continue;
                    }
                    // NaN-keyed equality went to the scan index.
                    if let Some(list) = self.scan_index.get_mut(&pred.attr) {
                        list.retain(|e| e.id != id);
                        if list.is_empty() {
                            self.scan_index.remove(&pred.attr);
                        }
                    }
                }
                Op::Exists => {
                    if let Some(ids) = self.exists_index.get_mut(&pred.attr) {
                        ids.retain(|x| *x != id);
                        if ids.is_empty() {
                            self.exists_index.remove(&pred.attr);
                        }
                    }
                }
                _ => {
                    if let Some(list) = self.scan_index.get_mut(&pred.attr) {
                        list.retain(|e| e.id != id);
                        if list.is_empty() {
                            self.scan_index.remove(&pred.attr);
                        }
                    }
                }
            }
        }
        self.match_all.retain(|x| *x != id);
    }
}

impl MatchEngine for IndexMatcher {
    fn insert(&mut self, id: SubscriptionId, filter: Filter) {
        if let Some(old) = self.filters.remove(&id) {
            self.unindex_subscription(id, &old);
        }
        if filter.is_empty() {
            self.match_all.push(id);
        } else {
            // A filter may constrain the same attribute more than once
            // (e.g. 3 < x < 7); each predicate is indexed and counted
            // separately, so duplicates are handled naturally.
            let preds: Vec<Predicate> = filter.predicates().to_vec();
            for pred in &preds {
                self.index_predicate(id, pred);
            }
        }
        self.arity.insert(id, filter.len());
        self.filters.insert(id, filter);
    }

    fn remove(&mut self, id: SubscriptionId) -> Option<Filter> {
        let filter = self.filters.remove(&id)?;
        self.unindex_subscription(id, &filter);
        self.arity.remove(&id);
        Some(filter)
    }

    fn matches(&self, event: &Event) -> Vec<SubscriptionId> {
        let mut counts: HashMap<SubscriptionId, usize> = HashMap::new();
        for (attr, value) in event.iter() {
            if let Some(by_val) = self.eq_index.get(attr) {
                if let Some(key) = ValueKey::of(value) {
                    if let Some(ids) = by_val.get(&key) {
                        for id in ids {
                            *counts.entry(*id).or_insert(0) += 1;
                        }
                    }
                }
            }
            if let Some(ids) = self.exists_index.get(attr) {
                for id in ids {
                    *counts.entry(*id).or_insert(0) += 1;
                }
            }
            if let Some(entries) = self.scan_index.get(attr) {
                for e in entries {
                    if e.pred.eval(value) {
                        *counts.entry(e.id).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<SubscriptionId> = counts
            .into_iter()
            .filter(|(id, n)| self.arity.get(id).is_some_and(|a| n == a))
            .map(|(id, _)| id)
            .collect();
        out.extend(self.match_all.iter().copied());
        out.sort_unstable();
        out.dedup();
        out
    }

    fn len(&self) -> usize {
        self.filters.len()
    }

    fn filter(&self, id: SubscriptionId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    fn clone_box(&self) -> Box<dyn MatchEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn engines() -> Vec<Box<dyn MatchEngine>> {
        vec![Box::new(NaiveMatcher::new()), Box::new(IndexMatcher::new())]
    }

    fn ev(pairs: &[(&str, Value)]) -> Event {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn both_engines_match_simple_equality() {
        for mut m in engines() {
            m.insert(SubscriptionId(1), Filter::new().and("a", Op::Eq, 1));
            m.insert(SubscriptionId(2), Filter::new().and("a", Op::Eq, 2));
            let got = m.matches(&ev(&[("a", Value::from(1))]));
            assert_eq!(got, vec![SubscriptionId(1)], "engine {m:?}");
        }
    }

    #[test]
    fn conjunction_counts_all_predicates() {
        for mut m in engines() {
            m.insert(
                SubscriptionId(1),
                Filter::new().and("a", Op::Eq, 1).and("b", Op::Gt, 5),
            );
            assert!(m.matches(&ev(&[("a", Value::from(1))])).is_empty());
            assert_eq!(
                m.matches(&ev(&[("a", Value::from(1)), ("b", Value::from(6))])),
                vec![SubscriptionId(1)]
            );
        }
    }

    #[test]
    fn range_filter_on_same_attribute() {
        for mut m in engines() {
            m.insert(
                SubscriptionId(7),
                Filter::new().and("x", Op::Gt, 3).and("x", Op::Lt, 7),
            );
            assert_eq!(
                m.matches(&ev(&[("x", Value::from(5))])),
                vec![SubscriptionId(7)]
            );
            assert!(m.matches(&ev(&[("x", Value::from(3))])).is_empty());
            assert!(m.matches(&ev(&[("x", Value::from(9))])).is_empty());
        }
    }

    #[test]
    fn match_all_filter_matches_everything() {
        for mut m in engines() {
            m.insert(SubscriptionId(1), Filter::new());
            assert_eq!(m.matches(&Event::new()), vec![SubscriptionId(1)]);
            assert_eq!(
                m.matches(&ev(&[("z", Value::from(1))])),
                vec![SubscriptionId(1)]
            );
        }
    }

    #[test]
    fn exists_and_string_predicates() {
        for mut m in engines() {
            m.insert(SubscriptionId(1), Filter::new().and_exists("tag"));
            m.insert(
                SubscriptionId(2),
                Filter::new().and("url", Op::Suffix, ".rss"),
            );
            let e = ev(&[
                ("tag", Value::from(true)),
                ("url", Value::from("http://x/.rss")),
            ]);
            assert_eq!(m.matches(&e), vec![SubscriptionId(1), SubscriptionId(2)]);
        }
    }

    #[test]
    fn remove_unregisters_all_predicates() {
        for mut m in engines() {
            let f = Filter::new()
                .and("a", Op::Eq, 1)
                .and("b", Op::Contains, "x");
            m.insert(SubscriptionId(1), f.clone());
            assert_eq!(m.remove(SubscriptionId(1)), Some(f));
            assert!(m.remove(SubscriptionId(1)).is_none());
            assert!(m
                .matches(&ev(&[("a", Value::from(1)), ("b", Value::from("x"))]))
                .is_empty());
            assert_eq!(m.len(), 0);
        }
    }

    #[test]
    fn reinsert_replaces_filter() {
        for mut m in engines() {
            m.insert(SubscriptionId(1), Filter::new().and("a", Op::Eq, 1));
            m.insert(SubscriptionId(1), Filter::new().and("a", Op::Eq, 2));
            assert!(m.matches(&ev(&[("a", Value::from(1))])).is_empty());
            assert_eq!(
                m.matches(&ev(&[("a", Value::from(2))])),
                vec![SubscriptionId(1)]
            );
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn numeric_equality_crosses_types_in_index() {
        let mut m = IndexMatcher::new();
        m.insert(SubscriptionId(1), Filter::new().and("n", Op::Eq, 3));
        assert_eq!(
            m.matches(&ev(&[("n", Value::from(3.0))])),
            vec![SubscriptionId(1)]
        );
    }

    #[test]
    fn filter_lookup() {
        for mut m in engines() {
            let f = Filter::topic("t");
            m.insert(SubscriptionId(9), f.clone());
            assert_eq!(m.filter(SubscriptionId(9)), Some(&f));
            assert_eq!(m.filter(SubscriptionId(8)), None);
        }
    }

    #[test]
    fn engines_agree_on_mixed_workload() {
        // Deterministic pseudo-random workload, no external RNG needed.
        let mut naive = NaiveMatcher::new();
        let mut index = IndexMatcher::new();
        let attrs = ["a", "b", "c", "d"];
        let mut x: u64 = 42;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..200u64 {
            let mut f = Filter::new();
            let n_preds = (next() % 3) + 1;
            for _ in 0..n_preds {
                let attr = attrs[(next() % 4) as usize];
                let val = (next() % 10) as i64;
                let op = match next() % 5 {
                    0 => Op::Eq,
                    1 => Op::Ne,
                    2 => Op::Lt,
                    3 => Op::Gt,
                    _ => Op::Exists,
                };
                f = f.and(attr, op, val);
            }
            naive.insert(SubscriptionId(i), f.clone());
            index.insert(SubscriptionId(i), f);
        }
        for _ in 0..300 {
            let mut e = Event::new();
            let n_attrs = (next() % 4) + 1;
            for _ in 0..n_attrs {
                let attr = attrs[(next() % 4) as usize];
                e.set(attr, (next() % 10) as i64);
            }
            assert_eq!(naive.matches(&e), index.matches(&e), "event {e}");
        }
    }
}
