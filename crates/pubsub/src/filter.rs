//! Subscription filters: the event algebra of the substrate.
//!
//! A [`Filter`] is a conjunction of [`Predicate`]s over event attributes.
//! This is the same expressiveness class as Siena's filters and covers the
//! two subscription styles the Reef paper generates automatically:
//! *topic-based* subscriptions (equality on the reserved `topic` attribute,
//! e.g. a feed URL) and *content-based* subscriptions (keyword containment
//! and comparisons over arbitrary attributes).

use crate::event::{Event, TOPIC_ATTR};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of a [`Predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Attribute equals operand (numeric equality crosses int/float).
    Eq,
    /// Attribute differs from operand.
    Ne,
    /// Attribute is strictly less than operand.
    Lt,
    /// Attribute is less than or equal to operand.
    Le,
    /// Attribute is strictly greater than operand.
    Gt,
    /// Attribute is greater than or equal to operand.
    Ge,
    /// String attribute starts with the operand string.
    Prefix,
    /// String attribute ends with the operand string.
    Suffix,
    /// String attribute contains the operand substring (keyword match).
    Contains,
    /// Attribute exists, regardless of value (operand is ignored).
    Exists,
}

impl Op {
    /// All operators, in a stable order (useful for tests and generators).
    pub const ALL: [Op; 10] = [
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Prefix,
        Op::Suffix,
        Op::Contains,
        Op::Exists,
    ];

    /// `true` for operators whose operand must be a string.
    pub fn is_string_op(self) -> bool {
        matches!(self, Op::Prefix | Op::Suffix | Op::Contains)
    }

    /// `true` for the ordered comparison operators.
    pub fn is_ordering_op(self) -> bool {
        matches!(self, Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Prefix => "=^",
            Op::Suffix => "=$",
            Op::Contains => "=~",
            Op::Exists => "exists",
        };
        f.write_str(s)
    }
}

/// One constraint on one attribute: `attr op operand`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name the predicate constrains.
    pub attr: String,
    /// Comparison operator.
    pub op: Op,
    /// Operand compared against the event's attribute value.
    pub operand: Value,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(attr: impl Into<String>, op: Op, operand: impl Into<Value>) -> Self {
        Predicate {
            attr: attr.into(),
            op,
            operand: operand.into(),
        }
    }

    /// Evaluate the predicate against a single value.
    pub fn eval(&self, value: &Value) -> bool {
        match self.op {
            Op::Eq => value.eq_value(&self.operand),
            Op::Ne => !value.eq_value(&self.operand),
            Op::Lt => matches!(value.partial_cmp_value(&self.operand), Some(Ordering::Less)),
            Op::Le => matches!(
                value.partial_cmp_value(&self.operand),
                Some(Ordering::Less | Ordering::Equal)
            ),
            Op::Gt => matches!(
                value.partial_cmp_value(&self.operand),
                Some(Ordering::Greater)
            ),
            Op::Ge => matches!(
                value.partial_cmp_value(&self.operand),
                Some(Ordering::Greater | Ordering::Equal)
            ),
            Op::Prefix => match (value.as_str(), self.operand.as_str()) {
                (Some(v), Some(p)) => v.starts_with(p),
                _ => false,
            },
            Op::Suffix => match (value.as_str(), self.operand.as_str()) {
                (Some(v), Some(p)) => v.ends_with(p),
                _ => false,
            },
            Op::Contains => match (value.as_str(), self.operand.as_str()) {
                (Some(v), Some(p)) => v.contains(p),
                _ => false,
            },
            Op::Exists => true,
        }
    }

    /// Evaluate against an event: the attribute must be present and satisfy
    /// the operator.
    pub fn matches(&self, event: &Event) -> bool {
        match event.get(&self.attr) {
            Some(v) => self.eval(v),
            None => false,
        }
    }

    /// Conservative implication test: `true` means *every* value satisfying
    /// `self` also satisfies `other` (`self ⇒ other`). Used for
    /// covering-based routing-table compression in the broker overlay; a
    /// `false` result is always safe.
    pub fn implies(&self, other: &Predicate) -> bool {
        if self.attr != other.attr {
            return false;
        }
        if other.op == Op::Exists {
            return true;
        }
        if self == other {
            return true;
        }
        match (self.op, other.op) {
            // x = c implies anything c itself satisfies.
            (Op::Eq, _) => Predicate::new(other.attr.clone(), other.op, other.operand.clone())
                .eval(&self.operand),
            // Range-to-range implications on the same attribute.
            (Op::Lt, Op::Lt) | (Op::Le, Op::Le) | (Op::Le, Op::Lt) => {
                // x < a ⇒ x < b  iff a <= b; x <= a ⇒ x < b iff a < b.
                match self.operand.partial_cmp_value(&other.operand) {
                    Some(Ordering::Less) => true,
                    Some(Ordering::Equal) => self.op == other.op || other.op == Op::Le,
                    _ => false,
                }
            }
            (Op::Lt, Op::Le) => matches!(
                self.operand.partial_cmp_value(&other.operand),
                Some(Ordering::Less | Ordering::Equal)
            ),
            (Op::Gt, Op::Gt) | (Op::Ge, Op::Ge) | (Op::Ge, Op::Gt) => {
                match self.operand.partial_cmp_value(&other.operand) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => self.op == other.op || other.op == Op::Ge,
                    _ => false,
                }
            }
            (Op::Gt, Op::Ge) => matches!(
                self.operand.partial_cmp_value(&other.operand),
                Some(Ordering::Greater | Ordering::Equal)
            ),
            // String structure implications.
            (Op::Prefix, Op::Prefix) => match (self.operand.as_str(), other.operand.as_str()) {
                (Some(a), Some(b)) => a.starts_with(b),
                _ => false,
            },
            (Op::Suffix, Op::Suffix) => match (self.operand.as_str(), other.operand.as_str()) {
                (Some(a), Some(b)) => a.ends_with(b),
                _ => false,
            },
            (Op::Contains, Op::Contains)
            | (Op::Prefix, Op::Contains)
            | (Op::Suffix, Op::Contains) => match (self.operand.as_str(), other.operand.as_str()) {
                (Some(a), Some(b)) => a.contains(b),
                _ => false,
            },
            _ => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == Op::Exists {
            write!(f, "{} exists", self.attr)
        } else {
            write!(f, "{} {} {}", self.attr, self.op, self.operand)
        }
    }
}

/// A conjunction of predicates. An event matches when every predicate holds.
///
/// The empty filter matches every event (useful as a wildcard subscription).
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Event, Filter, Op};
///
/// let f = Filter::new()
///     .and("symbol", Op::Eq, "ACME")
///     .and("price", Op::Gt, 10.0);
/// let ev = Event::builder().attr("symbol", "ACME").attr("price", 12.5).build();
/// assert!(f.matches(&ev));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// The empty (match-all) filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a topic-based subscription (`topic = name`), the style
    /// Reef generates for Web feeds (the topic being the feed URL).
    pub fn topic(name: &str) -> Self {
        Filter::new().and(TOPIC_ATTR, Op::Eq, name)
    }

    /// Convenience: a keyword subscription (`attr =~ keyword`), the style
    /// Reef generates for content-based video-news queries.
    pub fn keyword(attr: &str, keyword: &str) -> Self {
        Filter::new().and(attr, Op::Contains, keyword)
    }

    /// Add a predicate (builder style).
    pub fn and(mut self, attr: impl Into<String>, op: Op, operand: impl Into<Value>) -> Self {
        self.predicates.push(Predicate::new(attr, op, operand));
        self
    }

    /// Add an existence predicate (builder style).
    pub fn and_exists(mut self, attr: impl Into<String>) -> Self {
        self.predicates
            .push(Predicate::new(attr, Op::Exists, Value::Bool(true)));
        self
    }

    /// Push an already-built predicate.
    pub fn push(&mut self, p: Predicate) {
        self.predicates.push(p);
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` for the match-all filter.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluate the conjunction against an event.
    pub fn matches(&self, event: &Event) -> bool {
        self.predicates.iter().all(|p| p.matches(event))
    }

    /// Conservative covering test: `true` means every event matching `other`
    /// also matches `self` (`self` is the wider filter). Used by the broker
    /// overlay to avoid forwarding subscriptions that are already covered.
    ///
    /// `self` covers `other` when each predicate of `self` is implied by at
    /// least one predicate of `other`.
    pub fn covers(&self, other: &Filter) -> bool {
        self.predicates
            .iter()
            .all(|ps| other.predicates.iter().any(|po| po.implies(ps)))
    }

    /// Attributes with equality predicates, in filter order — the fast-path
    /// keys used by the index matcher.
    pub fn eq_attrs(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.predicates
            .iter()
            .filter(|p| p.op == Op::Eq)
            .map(|p| (p.attr.as_str(), &p.operand))
    }

    /// Approximate serialized size in bytes, for network accounting.
    pub fn wire_size(&self) -> usize {
        self.predicates
            .iter()
            .map(|p| p.attr.len() + p.operand.wire_size() + 3)
            .sum::<usize>()
            + 8
    }

    /// Check every operand for validity (no NaN, string ops have string
    /// operands). Returns the first offending predicate.
    pub fn validate_operands(&self) -> Result<(), &Predicate> {
        for p in &self.predicates {
            if !p.operand.is_valid() {
                return Err(p);
            }
            if p.op.is_string_op() && p.operand.as_str().is_none() {
                return Err(p);
            }
        }
        Ok(())
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("<match-all>");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<Predicate> for Filter {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Filter {
            predicates: iter.into_iter().collect(),
        }
    }
}

/// Expected type of the operand for predicates on an attribute of type `ty`
/// under operator `op`. Used by [`crate::Schema`] validation.
pub fn expected_operand_type(ty: ValueType, op: Op) -> ValueType {
    if op.is_string_op() {
        ValueType::Str
    } else {
        ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, Value)]) -> Event {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn equality_and_ordering_predicates() {
        let e = ev(&[("price", Value::from(10)), ("sym", Value::from("ACME"))]);
        assert!(Predicate::new("price", Op::Eq, 10.0).matches(&e));
        assert!(Predicate::new("price", Op::Ge, 10).matches(&e));
        assert!(Predicate::new("price", Op::Lt, 11).matches(&e));
        assert!(!Predicate::new("price", Op::Gt, 10).matches(&e));
        assert!(Predicate::new("sym", Op::Ne, "X").matches(&e));
    }

    #[test]
    fn string_predicates() {
        let e = ev(&[("url", Value::from("http://news.example/rss"))]);
        assert!(Predicate::new("url", Op::Prefix, "http://").matches(&e));
        assert!(Predicate::new("url", Op::Suffix, "/rss").matches(&e));
        assert!(Predicate::new("url", Op::Contains, "news").matches(&e));
        assert!(!Predicate::new("url", Op::Contains, "sports").matches(&e));
    }

    #[test]
    fn exists_and_missing_attribute() {
        let e = ev(&[("a", Value::from(1))]);
        assert!(Predicate::new("a", Op::Exists, true).matches(&e));
        assert!(!Predicate::new("b", Op::Exists, true).matches(&e));
        assert!(!Predicate::new("b", Op::Eq, 1).matches(&e));
    }

    #[test]
    fn string_ops_against_non_string_values_do_not_match() {
        let e = ev(&[("n", Value::from(5))]);
        assert!(!Predicate::new("n", Op::Prefix, "5").matches(&e));
        assert!(!Predicate::new("n", Op::Contains, "5").matches(&e));
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(Filter::new().matches(&Event::new()));
        assert!(Filter::new().matches(&ev(&[("x", Value::from(1))])));
    }

    #[test]
    fn conjunction_requires_all() {
        let f = Filter::new().and("a", Op::Eq, 1).and("b", Op::Gt, 2);
        assert!(f.matches(&ev(&[("a", Value::from(1)), ("b", Value::from(3))])));
        assert!(!f.matches(&ev(&[("a", Value::from(1)), ("b", Value::from(2))])));
        assert!(!f.matches(&ev(&[("a", Value::from(1))])));
    }

    #[test]
    fn topic_filter_matches_topical_event() {
        let f = Filter::topic("http://feed.example/rss");
        assert!(f.matches(&Event::topical("http://feed.example/rss", "item")));
        assert!(!f.matches(&Event::topical("http://other.example/rss", "item")));
    }

    #[test]
    fn predicate_implication_equality() {
        let p_eq5 = Predicate::new("x", Op::Eq, 5);
        assert!(p_eq5.implies(&Predicate::new("x", Op::Gt, 3)));
        assert!(p_eq5.implies(&Predicate::new("x", Op::Le, 5)));
        assert!(!p_eq5.implies(&Predicate::new("x", Op::Gt, 5)));
        assert!(!p_eq5.implies(&Predicate::new("y", Op::Gt, 3)));
    }

    #[test]
    fn predicate_implication_ranges() {
        assert!(Predicate::new("x", Op::Lt, 3).implies(&Predicate::new("x", Op::Lt, 5)));
        assert!(Predicate::new("x", Op::Lt, 5).implies(&Predicate::new("x", Op::Le, 5)));
        assert!(!Predicate::new("x", Op::Le, 5).implies(&Predicate::new("x", Op::Lt, 5)));
        assert!(Predicate::new("x", Op::Gt, 5).implies(&Predicate::new("x", Op::Ge, 5)));
        assert!(Predicate::new("x", Op::Ge, 6).implies(&Predicate::new("x", Op::Gt, 5)));
    }

    #[test]
    fn predicate_implication_strings() {
        assert!(
            Predicate::new("s", Op::Prefix, "abc").implies(&Predicate::new("s", Op::Prefix, "ab"))
        );
        assert!(
            Predicate::new("s", Op::Prefix, "abc").implies(&Predicate::new("s", Op::Contains, "b"))
        );
        assert!(
            !Predicate::new("s", Op::Prefix, "ab").implies(&Predicate::new("s", Op::Prefix, "abc"))
        );
        assert!(
            Predicate::new("s", Op::Contains, "xyz").implies(&Predicate::new(
                "s",
                Op::Contains,
                "y"
            ))
        );
    }

    #[test]
    fn everything_implies_exists() {
        assert!(Predicate::new("x", Op::Lt, 3).implies(&Predicate::new("x", Op::Exists, true)));
        assert!(!Predicate::new("x", Op::Lt, 3).implies(&Predicate::new("y", Op::Exists, true)));
    }

    #[test]
    fn filter_covering_basic() {
        let wide = Filter::new().and("price", Op::Gt, 5);
        let narrow = Filter::new()
            .and("price", Op::Gt, 10)
            .and("sym", Op::Eq, "A");
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        // Match-all covers everything.
        assert!(Filter::new().covers(&wide));
        assert!(!wide.covers(&Filter::new()));
    }

    #[test]
    fn covering_is_sound_on_samples() {
        // If covers() says yes, actual matching must agree on sample events.
        let wide = Filter::new().and("x", Op::Ge, 0);
        let narrow = Filter::new().and("x", Op::Gt, 3).and("y", Op::Eq, 1);
        assert!(wide.covers(&narrow));
        for xv in [-1, 0, 4, 100] {
            let e = ev(&[("x", Value::from(xv)), ("y", Value::from(1))]);
            if narrow.matches(&e) {
                assert!(wide.matches(&e));
            }
        }
    }

    #[test]
    fn validate_operands_rejects_nan_and_bad_string_ops() {
        let f = Filter::new().and("x", Op::Gt, f64::NAN);
        assert!(f.validate_operands().is_err());
        let f = Filter::new().and("x", Op::Prefix, 3);
        assert!(f.validate_operands().is_err());
        let f = Filter::new().and("x", Op::Prefix, "a").and("y", Op::Lt, 3);
        assert!(f.validate_operands().is_ok());
    }

    #[test]
    fn display_formats() {
        let f = Filter::new().and("a", Op::Eq, 1).and_exists("b");
        assert_eq!(f.to_string(), "a = 1 ∧ b exists");
        assert_eq!(Filter::new().to_string(), "<match-all>");
    }
}
