//! Error types for the publish-subscribe substrate.

use crate::value::{Value, ValueType};
use std::error::Error;
use std::fmt;

/// Errors produced when validating events or filters against a
/// [`crate::Schema`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The attribute is not declared and the schema is closed.
    UnknownAttr {
        /// Schema name.
        schema: String,
        /// Offending attribute.
        attr: String,
    },
    /// The value's type does not fit the declared attribute type.
    TypeMismatch {
        /// Offending attribute.
        attr: String,
        /// Declared/expected type.
        expected: ValueType,
        /// Actual type supplied.
        got: ValueType,
    },
    /// The value is outside the attribute's enumerated domain.
    OutOfDomain {
        /// Offending attribute.
        attr: String,
        /// The rejected value.
        value: Value,
    },
    /// A required attribute is missing from the event.
    MissingRequired {
        /// Schema name.
        schema: String,
        /// Missing attribute.
        attr: String,
    },
    /// The value itself is malformed (e.g. NaN).
    InvalidValue {
        /// Offending attribute.
        attr: String,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownAttr { schema, attr } => {
                write!(f, "attribute `{attr}` is not declared in schema `{schema}`")
            }
            SchemaError::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute `{attr}` expects {expected}, got {got}")
            }
            SchemaError::OutOfDomain { attr, value } => {
                write!(
                    f,
                    "value `{value}` is outside the domain of attribute `{attr}`"
                )
            }
            SchemaError::MissingRequired { schema, attr } => {
                write!(
                    f,
                    "required attribute `{attr}` of schema `{schema}` is missing"
                )
            }
            SchemaError::InvalidValue { attr, reason } => {
                write!(f, "invalid value for attribute `{attr}`: {reason}")
            }
        }
    }
}

impl Error for SchemaError {}

/// Errors produced by broker operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// The referenced subscriber is not registered with the broker.
    UnknownSubscriber(crate::broker::SubscriberId),
    /// The referenced subscription does not exist.
    UnknownSubscription(crate::matcher::SubscriptionId),
    /// The event or filter failed schema validation.
    Schema(SchemaError),
    /// The subscriber's delivery queue overflowed and the event was dropped.
    QueueFull {
        /// Subscriber whose queue overflowed.
        subscriber: crate::broker::SubscriberId,
        /// Capacity at the time of overflow.
        capacity: usize,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownSubscriber(id) => write!(f, "unknown subscriber {id}"),
            BrokerError::UnknownSubscription(id) => write!(f, "unknown subscription {id}"),
            BrokerError::Schema(e) => write!(f, "schema validation failed: {e}"),
            BrokerError::QueueFull {
                subscriber,
                capacity,
            } => write!(
                f,
                "delivery queue of subscriber {subscriber} is full (capacity {capacity})"
            ),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchemaError> for BrokerError {
    fn from(e: SchemaError) -> Self {
        BrokerError::Schema(e)
    }
}

/// Errors produced by the broker overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayError {
    /// The referenced broker node does not exist.
    UnknownBroker(crate::net::NodeId),
    /// The referenced client is not attached to any broker.
    UnknownClient(crate::overlay::ClientId),
    /// Adding the link would create a cycle (the overlay must stay a tree).
    WouldCreateCycle(crate::net::NodeId, crate::net::NodeId),
    /// The operation (link removal, broker crash) needs a mesh overlay;
    /// a tree overlay cannot survive it.
    RequiresMesh,
    /// The two brokers are not linked.
    NoSuchLink(crate::net::NodeId, crate::net::NodeId),
    /// A broker-level error occurred while handling an overlay operation.
    Broker(BrokerError),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnknownBroker(id) => write!(f, "unknown broker node {id}"),
            OverlayError::UnknownClient(id) => write!(f, "unknown overlay client {id}"),
            OverlayError::WouldCreateCycle(a, b) => {
                write!(f, "link {a}-{b} would create a cycle in the broker tree")
            }
            OverlayError::RequiresMesh => {
                write!(
                    f,
                    "operation requires a mesh overlay (tree overlays cannot lose links)"
                )
            }
            OverlayError::NoSuchLink(a, b) => write!(f, "brokers {a} and {b} are not linked"),
            OverlayError::Broker(e) => write!(f, "broker error: {e}"),
        }
    }
}

impl Error for OverlayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OverlayError::Broker(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BrokerError> for OverlayError {
    fn from(e: BrokerError) -> Self {
        OverlayError::Broker(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SchemaError::UnknownAttr {
            schema: "s".into(),
            attr: "a".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`a`"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn broker_error_wraps_schema_error_as_source() {
        let e = BrokerError::from(SchemaError::InvalidValue {
            attr: "x".into(),
            reason: "NaN".into(),
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchemaError>();
        assert_send_sync::<BrokerError>();
        assert_send_sync::<OverlayError>();
    }
}
