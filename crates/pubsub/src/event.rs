//! Events: the unit of publication.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Monotonically increasing event identifier assigned at publication time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

/// Reserved attribute name carrying an event's topic, when it has one.
///
/// Topic-based publish-subscribe (the Web-feed case study of the paper) is
/// expressed as content-based filtering on this attribute.
pub const TOPIC_ATTR: &str = "topic";

/// An event is a set of name-value pairs, published into the substrate and
/// matched against subscription filters.
///
/// Attributes are kept in a `BTreeMap` so iteration order — and therefore
/// matching, routing, and wire-size accounting — is deterministic.
///
/// # Examples
///
/// ```
/// use reef_pubsub::Event;
///
/// let ev = Event::builder()
///     .attr("symbol", "ACME")
///     .attr("price", 12.5)
///     .build();
/// assert_eq!(ev.get("symbol").and_then(|v| v.as_str()), Some("ACME"));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Event {
    attrs: BTreeMap<String, Value>,
}

impl Event {
    /// Create an empty event. Prefer [`Event::builder`] for non-trivial
    /// construction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building an event.
    pub fn builder() -> EventBuilder {
        EventBuilder::default()
    }

    /// Convenience constructor for a topic-based event: sets [`TOPIC_ATTR`]
    /// and a `body` attribute.
    pub fn topical(topic: &str, body: &str) -> Self {
        Event::builder()
            .attr(TOPIC_ATTR, topic)
            .attr("body", body)
            .build()
    }

    /// Look up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// `true` when the event carries an attribute with this name.
    pub fn has(&self, name: &str) -> bool {
        self.attrs.contains_key(name)
    }

    /// The event's topic, if it has one.
    pub fn topic(&self) -> Option<&str> {
        self.get(TOPIC_ATTR).and_then(Value::as_str)
    }

    /// Insert or replace an attribute. Returns the previous value, if any.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(name.into(), value.into())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when the event has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate over `(name, value)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Approximate serialized size in bytes, used by the simulated network.
    pub fn wire_size(&self) -> usize {
        self.attrs
            .iter()
            .map(|(k, v)| k.len() + v.wire_size() + 2)
            .sum::<usize>()
            + 8
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Event {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Event {
            attrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for Event {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.attrs.extend(iter);
    }
}

/// Builder for [`Event`] values.
///
/// # Examples
///
/// ```
/// use reef_pubsub::Event;
///
/// let ev = Event::builder().attr("kind", "feed-item").build();
/// assert!(ev.has("kind"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventBuilder {
    attrs: BTreeMap<String, Value>,
}

impl EventBuilder {
    /// Add one attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Add an attribute only when `value` is `Some`.
    pub fn attr_opt(self, name: impl Into<String>, value: Option<impl Into<Value>>) -> Self {
        match value {
            Some(v) => self.attr(name, v),
            None => self,
        }
    }

    /// Finish building the event.
    pub fn build(self) -> Event {
        Event { attrs: self.attrs }
    }
}

/// An event together with the identifier assigned by a broker at publish
/// time; this is what subscribers receive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedEvent {
    /// Identifier assigned by the broker.
    pub id: EventId,
    /// Virtual timestamp (broker clock) of publication.
    pub published_at: u64,
    /// The event payload.
    pub event: Event,
}

impl fmt::Display for PublishedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{} {}", self.id, self.published_at, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_attributes() {
        let ev = Event::builder()
            .attr("a", 1)
            .attr("b", "two")
            .attr_opt("c", Some(3.0))
            .attr_opt("d", None::<i64>)
            .build();
        assert_eq!(ev.len(), 3);
        assert!(ev.has("c"));
        assert!(!ev.has("d"));
    }

    #[test]
    fn topical_constructor_sets_topic() {
        let ev = Event::topical("sports", "match report");
        assert_eq!(ev.topic(), Some("sports"));
        assert_eq!(ev.get("body").and_then(Value::as_str), Some("match report"));
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let mut ev = Event::new();
        assert!(ev.set("k", 1).is_none());
        assert_eq!(ev.set("k", 2), Some(Value::Int(1)));
        assert_eq!(ev.get("k"), Some(&Value::Int(2)));
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let ev = Event::builder()
            .attr("z", 1)
            .attr("a", 2)
            .attr("m", 3)
            .build();
        let names: Vec<&str> = ev.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn display_is_compact() {
        let ev = Event::builder().attr("a", 1).attr("b", "x").build();
        assert_eq!(ev.to_string(), "{a=1, b=x}");
        assert_eq!(Event::new().to_string(), "{}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut ev: Event = vec![("a".to_owned(), Value::from(1))].into_iter().collect();
        ev.extend(vec![("b".to_owned(), Value::from(2))]);
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn wire_size_grows_with_attributes() {
        let small = Event::builder().attr("a", 1).build();
        let big = Event::builder().attr("a", 1).attr("bbbb", "cccc").build();
        assert!(big.wire_size() > small.wire_size());
    }
}
