//! Deterministic simulated network and the transport abstraction.
//!
//! The paper's evaluation ran over the real Internet; we substitute a
//! virtual-time message-passing network so experiments are reproducible and
//! so the centralized-vs-distributed comparison (experiment **E4**) can
//! account every byte that crosses the wire. Messages are delivered in
//! timestamp order with FIFO tie-breaking, so a simulation driven through
//! [`SimNet::recv_next`] is fully deterministic.
//!
//! On top of the raw [`SimNet`] sits the [`Transport`] trait: the message
//! plane a [`crate::BrokerNode`] driver sends [`crate::PeerMsg`]s through.
//! [`SimTransport`] is the deterministic in-process implementation used by
//! [`crate::Overlay`]; `reef-wire` provides a `TcpTransport` that carries
//! the identical messages between daemons over OS sockets.

use crate::overlay::PeerMsg;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

/// Identifier of a node attached to a [`SimNet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Errors produced by [`SimNet`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The referenced node was never added to the network.
    UnknownNode(NodeId),
    /// There is no link between the two nodes.
    NoLink(NodeId, NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown network node {n}"),
            NetError::NoLink(a, b) => write!(f, "no link between {a} and {b}"),
        }
    }
}

impl Error for NetError {}

/// A message in flight, as handed to the receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Virtual time at which the message arrives.
    pub arrive_at: u64,
    /// Accounted size of the message in bytes.
    pub size: usize,
    /// Application payload.
    pub payload: M,
}

#[derive(Debug)]
struct Scheduled<M> {
    arrive_at: u64,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.arrive_at == other.arrive_at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrive_at, self.seq).cmp(&(other.arrive_at, other.seq))
    }
}

/// Aggregate traffic statistics for a [`SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Total accounted bytes.
    pub bytes: u64,
    /// Messages still queued (not yet received).
    pub in_flight: u64,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs, {} bytes, {} in flight",
            self.messages, self.bytes, self.in_flight
        )
    }
}

/// A deterministic virtual-time network carrying messages of type `M`.
///
/// # Examples
///
/// ```
/// use reef_pubsub::net::SimNet;
///
/// let mut net: SimNet<&'static str> = SimNet::new();
/// let a = net.add_node();
/// let b = net.add_node();
/// net.connect(a, b, 10);
/// net.send(a, b, "hello", 5).unwrap();
/// let env = net.recv_next().unwrap();
/// assert_eq!(env.payload, "hello");
/// assert_eq!(env.arrive_at, 10);
/// ```
#[derive(Debug)]
pub struct SimNet<M> {
    next_node: u32,
    links: HashMap<(NodeId, NodeId), u64>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    clock: u64,
    seq: u64,
    messages: u64,
    bytes: u64,
    /// Bytes per directed (src, dst) pair, for experiment accounting.
    link_bytes: HashMap<(NodeId, NodeId), u64>,
}

impl<M> Default for SimNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SimNet<M> {
    /// An empty network.
    pub fn new() -> Self {
        SimNet {
            next_node: 0,
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            clock: 0,
            seq: 0,
            messages: 0,
            bytes: 0,
            link_bytes: HashMap::new(),
        }
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// `true` when the id refers to an existing node.
    pub fn has_node(&self, id: NodeId) -> bool {
        id.0 < self.next_node
    }

    /// Create a bidirectional link with the given one-way latency (virtual
    /// time units). Re-connecting replaces the latency.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: u64) {
        self.links.insert((a, b), latency);
        self.links.insert((b, a), latency);
    }

    /// One-way latency of the link from `a` to `b`, if connected.
    pub fn latency(&self, a: NodeId, b: NodeId) -> Option<u64> {
        self.links.get(&(a, b)).copied()
    }

    /// Kill the link between `a` and `b`. Messages already in flight on
    /// the link are **lost**, in both directions — a dead wire delivers
    /// nothing, which is exactly the failure a mesh overlay's routing
    /// layer must survive. Returns `false` when no such link existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        let existed = self.links.remove(&(a, b)).is_some();
        self.links.remove(&(b, a));
        if existed {
            let survivors: BinaryHeap<Reverse<Scheduled<M>>> = std::mem::take(&mut self.queue)
                .into_iter()
                .filter(|Reverse(s)| {
                    let (src, dst) = (s.envelope.src, s.envelope.dst);
                    !((src == a && dst == b) || (src == b && dst == a))
                })
                .collect();
            self.queue = survivors;
        }
        existed
    }

    /// Current virtual time (advanced by [`SimNet::recv_next`]).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Schedule a message. The message arrives `latency(src, dst)` after the
    /// current virtual time.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] if either endpoint does not exist.
    /// * [`NetError::NoLink`] if the endpoints are not connected.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: M,
        size: usize,
    ) -> Result<u64, NetError> {
        if !self.has_node(src) {
            return Err(NetError::UnknownNode(src));
        }
        if !self.has_node(dst) {
            return Err(NetError::UnknownNode(dst));
        }
        let latency = self
            .links
            .get(&(src, dst))
            .copied()
            .ok_or(NetError::NoLink(src, dst))?;
        let arrive_at = self.clock + latency;
        let seq = self.seq;
        self.seq += 1;
        self.messages += 1;
        self.bytes += size as u64;
        *self.link_bytes.entry((src, dst)).or_insert(0) += size as u64;
        self.queue.push(Reverse(Scheduled {
            arrive_at,
            seq,
            envelope: Envelope {
                src,
                dst,
                arrive_at,
                size,
                payload,
            },
        }));
        Ok(arrive_at)
    }

    /// Deliver the earliest in-flight message, advancing the clock to its
    /// arrival time. Returns `None` when the network is idle.
    pub fn recv_next(&mut self) -> Option<Envelope<M>> {
        let Reverse(scheduled) = self.queue.pop()?;
        self.clock = self.clock.max(scheduled.arrive_at);
        Some(scheduled.envelope)
    }

    /// Number of messages not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Aggregate traffic statistics.
    pub fn stats(&self) -> NetStats {
        NetStats {
            messages: self.messages,
            bytes: self.bytes,
            in_flight: self.queue.len() as u64,
        }
    }

    /// Bytes sent on the directed link `src -> dst` so far.
    pub fn bytes_on_link(&self, src: NodeId, dst: NodeId) -> u64 {
        self.link_bytes.get(&(src, dst)).copied().unwrap_or(0)
    }
}

/// One routed broker-to-broker message, as handed to a transport driver.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportDelivery {
    /// Sending broker link.
    pub src: NodeId,
    /// Receiving broker link.
    pub dst: NodeId,
    /// The routing message.
    pub msg: PeerMsg,
}

/// The message plane a [`crate::BrokerNode`] driver moves [`PeerMsg`]s
/// through.
///
/// A transport is dumb on purpose: it carries messages between link
/// endpoints and surfaces what arrived; every routing decision stays in
/// the sans-io core. Two implementations exist: [`SimTransport`]
/// (deterministic, virtual-time, in-process) and `reef-wire`'s
/// `TcpTransport` (real sockets between daemons). Because both move the
/// same `PeerMsg` values, a workload scripted against one can be replayed
/// against the other — the transport-equivalence property test does
/// exactly that.
pub trait Transport {
    /// Transport-specific failure type.
    type Error: Error;

    /// Queue `msg` from link endpoint `src` toward `dst`.
    ///
    /// # Errors
    ///
    /// Implementation-specific; e.g. the endpoints are not connected.
    fn send(&mut self, src: NodeId, dst: NodeId, msg: PeerMsg) -> Result<(), Self::Error>;

    /// The next message that has arrived, if any.
    ///
    /// `None` means "nothing available right now"; for [`SimTransport`]
    /// that is equivalent to "the network is idle", while a socket-backed
    /// transport may produce more messages later.
    fn recv(&mut self) -> Option<TransportDelivery>;
}

/// The deterministic in-process [`Transport`]: a thin wrapper around
/// [`SimNet`] that byte-accounts every [`PeerMsg`] and delivers in
/// virtual-time order.
///
/// # Examples
///
/// ```
/// use reef_pubsub::net::{SimTransport, Transport};
/// use reef_pubsub::{GlobalSubId, PeerMsg};
///
/// let mut t = SimTransport::new();
/// let a = t.add_node();
/// let b = t.add_node();
/// t.connect(a, b, 3);
/// t.send(a, b, PeerMsg::UnsubFwd { sub: GlobalSubId(1) }).unwrap();
/// let d = t.recv().unwrap();
/// assert_eq!((d.src, d.dst), (a, b));
/// assert_eq!(t.now(), 3);
/// ```
#[derive(Debug, Default)]
pub struct SimTransport {
    net: SimNet<PeerMsg>,
}

impl SimTransport {
    /// An empty transport with no nodes.
    pub fn new() -> Self {
        SimTransport { net: SimNet::new() }
    }

    /// Add a link endpoint and return its id.
    pub fn add_node(&mut self) -> NodeId {
        self.net.add_node()
    }

    /// Create a bidirectional link with the given one-way latency.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: u64) {
        self.net.connect(a, b, latency);
    }

    /// Kill the link between `a` and `b`, losing in-flight messages on
    /// it (see [`SimNet::disconnect`]). Returns `false` when no such
    /// link existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        self.net.disconnect(a, b)
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Aggregate traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Bytes sent on the directed link `src -> dst` so far.
    pub fn bytes_on_link(&self, src: NodeId, dst: NodeId) -> u64 {
        self.net.bytes_on_link(src, dst)
    }
}

impl Transport for SimTransport {
    type Error = NetError;

    fn send(&mut self, src: NodeId, dst: NodeId, msg: PeerMsg) -> Result<(), NetError> {
        let size = msg.wire_size();
        self.net.send(src, dst, msg, size)?;
        Ok(())
    }

    fn recv(&mut self) -> Option<TransportDelivery> {
        self.net.recv_next().map(|env| TransportDelivery {
            src: env.src,
            dst: env.dst,
            msg: env.payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_time_order() {
        let mut net: SimNet<u32> = SimNet::new();
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        net.connect(a, b, 10);
        net.connect(a, c, 3);
        net.send(a, b, 1, 8).unwrap();
        net.send(a, c, 2, 8).unwrap();
        assert_eq!(net.recv_next().unwrap().payload, 2);
        assert_eq!(net.recv_next().unwrap().payload, 1);
        assert!(net.recv_next().is_none());
        assert_eq!(net.now(), 10);
    }

    #[test]
    fn fifo_tie_breaking_at_equal_latency() {
        let mut net: SimNet<u32> = SimNet::new();
        let a = net.add_node();
        let b = net.add_node();
        net.connect(a, b, 5);
        for i in 0..10 {
            net.send(a, b, i, 1).unwrap();
        }
        let got: Vec<u32> = std::iter::from_fn(|| net.recv_next().map(|e| e.payload)).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_requires_link_and_nodes() {
        let mut net: SimNet<()> = SimNet::new();
        let a = net.add_node();
        let b = net.add_node();
        assert_eq!(net.send(a, b, (), 1), Err(NetError::NoLink(a, b)));
        assert_eq!(
            net.send(a, NodeId(99), (), 1),
            Err(NetError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn byte_accounting_per_link_and_total() {
        let mut net: SimNet<()> = SimNet::new();
        let a = net.add_node();
        let b = net.add_node();
        net.connect(a, b, 1);
        net.send(a, b, (), 100).unwrap();
        net.send(b, a, (), 50).unwrap();
        assert_eq!(net.bytes_on_link(a, b), 100);
        assert_eq!(net.bytes_on_link(b, a), 50);
        let stats = net.stats();
        assert_eq!(stats.bytes, 150);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.in_flight, 2);
    }

    #[test]
    fn clock_advances_monotonically_with_chained_sends() {
        let mut net: SimNet<u32> = SimNet::new();
        let a = net.add_node();
        let b = net.add_node();
        net.connect(a, b, 7);
        net.send(a, b, 0, 1).unwrap();
        let env = net.recv_next().unwrap();
        assert_eq!(env.arrive_at, 7);
        // A reply sent after receipt arrives at 14.
        net.send(b, a, 1, 1).unwrap();
        assert_eq!(net.recv_next().unwrap().arrive_at, 14);
    }
}
