//! Path-vector mesh routing: redundant links as failover, not faults.
//!
//! The tree overlay ([`crate::Overlay`]) forbids cycles because classic
//! reverse-path forwarding duplicates events on redundant links. This
//! module supplies the opposite trade, in the tradition of PSVR-style
//! self-stabilizing pub/sub routing: cycles are *allowed*, redundancy is
//! *used*, and two mechanisms keep routing correct anyway:
//!
//! * **path-vector advertisements** — every advertised subscription
//!   carries the list of broker ids it traversed ([`PeerMsg::SubAdv`]).
//!   A broker rejects any advertisement whose path already contains its
//!   own id, so advertisement loops die at the first revisit; among the
//!   live paths for a subscription the shortest (ties broken by
//!   lexicographic path) is the *fast path* that gets re-advertised,
//!   while the rest are retained as failover alternates;
//! * **duplicate suppression** — events fan out over every live route,
//!   and each broker admits an event id only once through a bounded
//!   seen-cache. The shortest path delivers first; redundant copies are
//!   counted and dropped. The hop ceiling [`crate::MAX_HOPS`] remains
//!   only as a backstop.
//!
//! Self-stabilization: when a link dies, routes learned through it are
//! torn down immediately, surviving alternates are promoted (counted as
//! `reroutes`) and the resulting advertisement diff is pushed to the
//! remaining neighbors, so tables converge without waiting for timers.
//! A periodic full re-advertisement (`MeshRouter::clear_advertised` +
//! re-sync, driven by the overlay's or daemon's refresh timer) heals any
//! state a lossy or crashed peer missed.
//!
//! [`MeshRouter`] holds only the *remote* route state; the owning
//! [`crate::BrokerNode`] keeps local subscriptions and the match index,
//! and delegates here when constructed in mesh mode
//! ([`crate::BrokerNode::new_mesh`]).
//!
//! [`PeerMsg::SubAdv`]: crate::PeerMsg::SubAdv

use crate::event::EventId;
use crate::filter::Filter;
use crate::net::NodeId;
use crate::overlay::{GlobalSubId, PeerMsg};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Default bound on the duplicate-suppression seen-cache.
pub const DEFAULT_SEEN_CAPACITY: usize = 4096;

/// All live routes this broker holds for one remote subscription: the
/// advertised filter plus, per incoming link, the broker-id path the
/// advertisement travelled (excluding this broker).
#[derive(Debug, Clone)]
struct RouteSet {
    filter: Filter,
    via: BTreeMap<NodeId, Vec<u32>>,
}

impl RouteSet {
    /// The fast path: shortest, ties broken by lexicographic path then
    /// link id — a total order, so every broker (and both transports)
    /// picks the same winner.
    fn best(&self) -> Option<(NodeId, &[u32])> {
        self.via
            .iter()
            .min_by(|(la, pa), (lb, pb)| {
                (pa.len(), pa.as_slice(), la.0).cmp(&(pb.len(), pb.as_slice(), lb.0))
            })
            .map(|(link, path)| (*link, path.as_slice()))
    }
}

/// Bounded insert-order-evicting event-id cache: the primary loop and
/// duplicate defense of mesh routing.
#[derive(Debug)]
struct SeenCache {
    cap: usize,
    set: HashSet<EventId>,
    order: VecDeque<EventId>,
}

impl SeenCache {
    fn new(cap: usize) -> Self {
        SeenCache {
            cap: cap.max(1),
            set: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// `true` the first time `id` is offered, `false` on every repeat
    /// still inside the window.
    fn first_sight(&mut self, id: EventId) -> bool {
        if !self.set.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.cap {
            if let Some(evicted) = self.order.pop_front() {
                self.set.remove(&evicted);
            }
        }
        true
    }
}

/// Outcome of withdrawing one route of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RouteRemoval {
    /// The (link, sub) pair held no route; nothing changed.
    NotFound,
    /// Other routes remain; the best may have been promoted.
    Changed,
    /// That was the last route — the subscription is unreachable and
    /// must leave the match index too.
    Gone,
}

/// The path-vector routing table of one mesh-mode broker.
#[derive(Debug)]
pub struct MeshRouter {
    broker_id: u32,
    /// Remote broker id per neighbor link, learned at handshake.
    neighbor_brokers: HashMap<NodeId, u32>,
    routes: HashMap<GlobalSubId, RouteSet>,
    /// What has been advertised per neighbor: filter and full path (this
    /// broker included), diffed by [`MeshRouter::sync`].
    advertised: HashMap<NodeId, BTreeMap<GlobalSubId, (Filter, Vec<u32>)>>,
    seen: SeenCache,
    reroutes: u64,
    duplicates_suppressed: u64,
}

impl MeshRouter {
    /// An empty routing table for the broker with federation-wide id
    /// `broker_id`.
    pub fn new(broker_id: u32) -> Self {
        MeshRouter {
            broker_id,
            neighbor_brokers: HashMap::new(),
            routes: HashMap::new(),
            advertised: HashMap::new(),
            seen: SeenCache::new(DEFAULT_SEEN_CAPACITY),
            reroutes: 0,
            duplicates_suppressed: 0,
        }
    }

    /// This broker's own id (the one rejected in incoming paths).
    pub fn broker_id(&self) -> u32 {
        self.broker_id
    }

    pub(crate) fn add_neighbor(&mut self, link: NodeId, broker: u32) {
        self.neighbor_brokers.insert(link, broker);
    }

    /// Tear down every route learned through `link` and return the
    /// subscriptions left with no route at all. Surviving subscriptions
    /// whose fast path died have an alternate promoted (counted).
    pub(crate) fn remove_neighbor(&mut self, link: NodeId) -> Vec<GlobalSubId> {
        self.neighbor_brokers.remove(&link);
        self.advertised.remove(&link);
        let mut gone = Vec::new();
        self.routes.retain(|sub, set| {
            let was_best = set.best().map(|(l, _)| l) == Some(link);
            if set.via.remove(&link).is_none() {
                return true;
            }
            if set.via.is_empty() {
                gone.push(*sub);
                false
            } else {
                if was_best {
                    self.reroutes += 1;
                }
                true
            }
        });
        gone.sort_unstable();
        gone
    }

    /// Record an advertisement received on `link`. Returns `false` when
    /// the path already contains this broker (a cycle echo, dropped).
    pub(crate) fn insert_route(
        &mut self,
        link: NodeId,
        sub: GlobalSubId,
        filter: Filter,
        path: Vec<u32>,
    ) -> bool {
        if path.contains(&self.broker_id) {
            return false;
        }
        let set = self.routes.entry(sub).or_insert_with(|| RouteSet {
            filter: filter.clone(),
            via: BTreeMap::new(),
        });
        set.filter = filter;
        set.via.insert(link, path);
        true
    }

    /// Withdraw the route for `sub` learned via `link`.
    pub(crate) fn remove_route(&mut self, link: NodeId, sub: GlobalSubId) -> RouteRemoval {
        let Some(set) = self.routes.get_mut(&sub) else {
            return RouteRemoval::NotFound;
        };
        let was_best = set.best().map(|(l, _)| l) == Some(link);
        if set.via.remove(&link).is_none() {
            return RouteRemoval::NotFound;
        }
        if set.via.is_empty() {
            self.routes.remove(&sub);
            RouteRemoval::Gone
        } else {
            if was_best {
                self.reroutes += 1;
            }
            RouteRemoval::Changed
        }
    }

    /// Admit an event id once: `true` on first sight, `false` (and a
    /// bump of the suppression gauge) on a duplicate.
    pub(crate) fn first_sight(&mut self, id: EventId) -> bool {
        if self.seen.first_sight(id) {
            true
        } else {
            self.duplicates_suppressed += 1;
            false
        }
    }

    /// Every link holding a live route for `sub`, in link order.
    pub(crate) fn via_links(&self, sub: GlobalSubId) -> impl Iterator<Item = NodeId> + '_ {
        self.routes
            .get(&sub)
            .into_iter()
            .flat_map(|set| set.via.keys().copied())
    }

    /// Diff desired vs already-sent advertisements toward each neighbor
    /// and return the messages closing the gap. `locals` are this
    /// broker's own subscriptions (advertised with path `[broker_id]`);
    /// remote subscriptions are advertised along their fast path with
    /// this broker appended, skipping any neighbor already on that path
    /// (split horizon — it would reject the advertisement anyway).
    pub(crate) fn sync(
        &mut self,
        neighbors: &[NodeId],
        locals: &[(GlobalSubId, Filter)],
    ) -> Vec<(NodeId, PeerMsg)> {
        let mut out = Vec::new();
        for &n in neighbors {
            let Some(&remote_broker) = self.neighbor_brokers.get(&n) else {
                continue;
            };
            let mut desired: BTreeMap<GlobalSubId, (Filter, Vec<u32>)> = BTreeMap::new();
            for (sub, filter) in locals {
                desired.insert(*sub, (filter.clone(), vec![self.broker_id]));
            }
            for (sub, set) in &self.routes {
                let Some((_, best_path)) = set.best() else {
                    continue;
                };
                let mut path = Vec::with_capacity(best_path.len() + 1);
                path.extend_from_slice(best_path);
                path.push(self.broker_id);
                if path.contains(&remote_broker) {
                    continue;
                }
                desired.insert(*sub, (set.filter.clone(), path));
            }
            let current = self.advertised.entry(n).or_default();
            let removals: Vec<GlobalSubId> = current
                .keys()
                .filter(|sub| !desired.contains_key(sub))
                .copied()
                .collect();
            for sub in removals {
                current.remove(&sub);
                out.push((n, PeerMsg::UnsubFwd { sub }));
            }
            for (sub, (filter, path)) in desired {
                if current.get(&sub) != Some(&(filter.clone(), path.clone())) {
                    current.insert(sub, (filter.clone(), path.clone()));
                    out.push((n, PeerMsg::SubAdv { sub, filter, path }));
                }
            }
        }
        out
    }

    /// Forget what was advertised, so the next [`MeshRouter::sync`]
    /// re-sends everything — the periodic refresh that re-converges
    /// tables after arbitrary churn.
    pub(crate) fn clear_advertised(&mut self) {
        self.advertised.clear();
    }

    /// Number of remote subscriptions with at least one live route.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Non-fast-path routes currently held as failover.
    pub fn alternates(&self) -> usize {
        self.routes
            .values()
            .map(|set| set.via.len().saturating_sub(1))
            .sum()
    }

    /// Times a dead fast path was replaced by a surviving alternate.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Duplicate event copies dropped by the seen-cache.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Advertisements currently held toward neighbors.
    pub(crate) fn advertisement_count(&self) -> usize {
        self.advertised.values().map(BTreeMap::len).sum()
    }

    /// Every live route: `(subscription, incoming link, broker-id path)`
    /// triples, sorted, fast path and alternates alike. This is the raw
    /// table a convergence oracle checks — e.g. that no retained path
    /// crosses a dead link or broker.
    pub fn route_table(&self) -> Vec<(GlobalSubId, NodeId, Vec<u32>)> {
        let mut out: Vec<(GlobalSubId, NodeId, Vec<u32>)> = self
            .routes
            .iter()
            .flat_map(|(sub, set)| {
                set.via
                    .iter()
                    .map(move |(link, path)| (*sub, *link, path.clone()))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The fast path per subscription: `(subscription, link, path)`,
    /// sorted by subscription. A convergence oracle compares these
    /// against the graph's true shortest live paths.
    pub fn best_routes(&self) -> Vec<(GlobalSubId, NodeId, Vec<u32>)> {
        let mut out: Vec<(GlobalSubId, NodeId, Vec<u32>)> = self
            .routes
            .iter()
            .filter_map(|(sub, set)| set.best().map(|(link, path)| (*sub, link, path.to_vec())))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adv(router: &mut MeshRouter, link: u32, sub: u64, path: &[u32]) -> bool {
        router.insert_route(
            NodeId(link),
            GlobalSubId(sub),
            Filter::topic("t"),
            path.to_vec(),
        )
    }

    #[test]
    fn own_id_in_path_is_rejected() {
        let mut r = MeshRouter::new(7);
        assert!(!adv(&mut r, 1, 0, &[3, 7]));
        assert_eq!(r.route_count(), 0);
        assert!(adv(&mut r, 1, 0, &[3, 4]));
        assert_eq!(r.route_count(), 1);
    }

    #[test]
    fn best_prefers_shortest_then_lexicographic_path() {
        let mut r = MeshRouter::new(0);
        assert!(adv(&mut r, 1, 5, &[9, 8, 7]));
        assert!(adv(&mut r, 2, 5, &[9, 8]));
        assert!(adv(&mut r, 3, 5, &[9, 2]));
        let set = r.routes.get(&GlobalSubId(5)).unwrap();
        // Two 2-hop paths: [9, 2] < [9, 8] lexicographically.
        assert_eq!(set.best().unwrap(), (NodeId(3), &[9, 2][..]));
        assert_eq!(r.alternates(), 2);
    }

    #[test]
    fn losing_the_fast_path_promotes_an_alternate() {
        let mut r = MeshRouter::new(0);
        assert!(adv(&mut r, 1, 5, &[9]));
        assert!(adv(&mut r, 2, 5, &[9, 8]));
        assert_eq!(
            r.remove_route(NodeId(1), GlobalSubId(5)),
            RouteRemoval::Changed
        );
        assert_eq!(r.reroutes(), 1);
        let set = r.routes.get(&GlobalSubId(5)).unwrap();
        assert_eq!(set.best().unwrap().0, NodeId(2));
        // Losing an alternate is not a reroute.
        let mut r2 = MeshRouter::new(0);
        assert!(adv(&mut r2, 1, 5, &[9]));
        assert!(adv(&mut r2, 2, 5, &[9, 8]));
        assert_eq!(
            r2.remove_route(NodeId(2), GlobalSubId(5)),
            RouteRemoval::Changed
        );
        assert_eq!(r2.reroutes(), 0);
    }

    #[test]
    fn last_route_removal_reports_gone() {
        let mut r = MeshRouter::new(0);
        assert!(adv(&mut r, 1, 5, &[9]));
        assert_eq!(
            r.remove_route(NodeId(1), GlobalSubId(5)),
            RouteRemoval::Gone
        );
        assert_eq!(r.route_count(), 0);
        assert_eq!(
            r.remove_route(NodeId(1), GlobalSubId(5)),
            RouteRemoval::NotFound
        );
    }

    #[test]
    fn neighbor_removal_tears_down_its_routes() {
        let mut r = MeshRouter::new(0);
        r.add_neighbor(NodeId(1), 10);
        r.add_neighbor(NodeId(2), 20);
        assert!(adv(&mut r, 1, 5, &[10]));
        assert!(adv(&mut r, 1, 6, &[10]));
        assert!(adv(&mut r, 2, 6, &[20, 10]));
        let gone = r.remove_neighbor(NodeId(1));
        assert_eq!(gone, vec![GlobalSubId(5)]);
        assert_eq!(r.route_count(), 1);
        assert_eq!(r.reroutes(), 1, "sub 6 promoted its alternate");
    }

    #[test]
    fn seen_cache_suppresses_duplicates_within_window() {
        let mut r = MeshRouter::new(0);
        assert!(r.first_sight(EventId(1)));
        assert!(!r.first_sight(EventId(1)));
        assert_eq!(r.duplicates_suppressed(), 1);
    }

    #[test]
    fn seen_cache_is_bounded() {
        let mut cache = SeenCache::new(2);
        assert!(cache.first_sight(EventId(1)));
        assert!(cache.first_sight(EventId(2)));
        assert!(cache.first_sight(EventId(3)));
        // Id 1 was evicted, so it is "new" again; 3 is still inside.
        assert!(cache.first_sight(EventId(1)));
        assert!(!cache.first_sight(EventId(3)));
    }

    #[test]
    fn sync_split_horizon_skips_neighbors_on_the_path() {
        let mut r = MeshRouter::new(0);
        r.add_neighbor(NodeId(1), 10);
        r.add_neighbor(NodeId(2), 20);
        assert!(adv(&mut r, 1, 5, &[10]));
        let msgs = r.sync(&[NodeId(1), NodeId(2)], &[]);
        // Advertised toward broker 20 with path [10, 0]; not back toward
        // broker 10, which is already on the path.
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            &msgs[0],
            (n, PeerMsg::SubAdv { sub, path, .. })
                if *n == NodeId(2) && *sub == GlobalSubId(5) && path == &vec![10, 0]
        ));
        // Syncing again sends nothing: the diff is empty.
        assert!(r.sync(&[NodeId(1), NodeId(2)], &[]).is_empty());
        // After a refresh the same advertisement is re-sent.
        r.clear_advertised();
        assert_eq!(r.sync(&[NodeId(1), NodeId(2)], &[]).len(), 1);
    }

    #[test]
    fn sync_withdraws_routes_that_disappeared() {
        let mut r = MeshRouter::new(0);
        r.add_neighbor(NodeId(1), 10);
        r.add_neighbor(NodeId(2), 20);
        assert!(adv(&mut r, 1, 5, &[10]));
        r.sync(&[NodeId(1), NodeId(2)], &[]);
        assert_eq!(
            r.remove_route(NodeId(1), GlobalSubId(5)),
            RouteRemoval::Gone
        );
        let msgs = r.sync(&[NodeId(1), NodeId(2)], &[]);
        assert!(matches!(
            msgs.as_slice(),
            [(n, PeerMsg::UnsubFwd { sub })] if *n == NodeId(2) && *sub == GlobalSubId(5)
        ));
    }

    #[test]
    fn locals_are_advertised_with_own_id_as_path() {
        let mut r = MeshRouter::new(3);
        r.add_neighbor(NodeId(1), 10);
        let msgs = r.sync(&[NodeId(1)], &[(GlobalSubId(9), Filter::topic("t"))]);
        assert!(matches!(
            msgs.as_slice(),
            [(_, PeerMsg::SubAdv { path, .. })] if path == &vec![3]
        ));
    }
}
