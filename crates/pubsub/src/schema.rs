//! Publish-subscribe interface specifications.
//!
//! The Reef paper assumes "a publish-subscribe system with a well-defined
//! event algebra syntax and a specification for valid name-value pairs"
//! (§2.1). [`Schema`] is that specification: it declares the attributes an
//! interface understands, their types, and (optionally) their enumerated
//! domains. The attention parser uses schemas to decide which tokens in a
//! user's attention stream can form valid subscriptions — e.g. known stock
//! symbols for a stock-quote interface.

use crate::error::SchemaError;
use crate::event::Event;
use crate::filter::{expected_operand_type, Filter};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Declaration of a single attribute in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Declared type of the attribute.
    pub ty: ValueType,
    /// When `Some`, the attribute's value must be one of these strings
    /// (only meaningful for string attributes — e.g. stock symbols).
    pub domain: Option<BTreeSet<String>>,
    /// Whether every event published on this interface must carry the
    /// attribute.
    pub required: bool,
}

impl AttrSpec {
    /// An optional attribute of the given type, with open domain.
    pub fn of(ty: ValueType) -> Self {
        AttrSpec {
            ty,
            domain: None,
            required: false,
        }
    }

    /// Mark the attribute required.
    pub fn required(mut self) -> Self {
        self.required = true;
        self
    }

    /// Restrict a string attribute to an enumerated domain.
    pub fn with_domain<I, S>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.domain = Some(values.into_iter().map(Into::into).collect());
        self
    }
}

/// A specification of valid name-value pairs for one publish-subscribe
/// interface.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Schema, AttrSpec, ValueType, Event};
///
/// let schema = Schema::builder("stock-quotes")
///     .attr("symbol", AttrSpec::of(ValueType::Str).required().with_domain(["ACME", "GLOBEX"]))
///     .attr("price", AttrSpec::of(ValueType::Float).required())
///     .build();
/// let ev = Event::builder().attr("symbol", "ACME").attr("price", 10.0).build();
/// assert!(schema.validate_event(&ev).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attrs: BTreeMap<String, AttrSpec>,
    /// Whether events may carry attributes not declared in the schema.
    open: bool,
}

impl Schema {
    /// Start building a schema with the given interface name.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: BTreeMap::new(),
            open: false,
        }
    }

    /// Interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Look up an attribute declaration.
    pub fn attr(&self, name: &str) -> Option<&AttrSpec> {
        self.attrs.get(name)
    }

    /// Iterate over declared attributes in sorted order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrSpec)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when events may carry undeclared attributes.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Check that a name-value pair is valid on this interface. This is the
    /// core question the attention parser asks for each candidate token.
    pub fn validate_pair(&self, name: &str, value: &Value) -> Result<(), SchemaError> {
        let spec = match self.attrs.get(name) {
            Some(s) => s,
            None if self.open => return Ok(()),
            None => {
                return Err(SchemaError::UnknownAttr {
                    schema: self.name.clone(),
                    attr: name.to_owned(),
                })
            }
        };
        if !value.is_valid() {
            return Err(SchemaError::InvalidValue {
                attr: name.to_owned(),
                reason: "NaN is not permitted".to_owned(),
            });
        }
        if !spec.ty.accepts(value.value_type()) {
            return Err(SchemaError::TypeMismatch {
                attr: name.to_owned(),
                expected: spec.ty,
                got: value.value_type(),
            });
        }
        if let Some(domain) = &spec.domain {
            match value.as_str() {
                Some(s) if domain.contains(s) => {}
                _ => {
                    return Err(SchemaError::OutOfDomain {
                        attr: name.to_owned(),
                        value: value.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Validate a whole event: every pair must be valid and every required
    /// attribute present.
    pub fn validate_event(&self, event: &Event) -> Result<(), SchemaError> {
        for (name, value) in event.iter() {
            self.validate_pair(name, value)?;
        }
        for (name, spec) in &self.attrs {
            if spec.required && !event.has(name) {
                return Err(SchemaError::MissingRequired {
                    schema: self.name.clone(),
                    attr: name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Validate a subscription filter: attributes must be declared (unless
    /// the schema is open), operand types must fit the operator, and
    /// equality operands must respect enumerated domains.
    pub fn validate_filter(&self, filter: &Filter) -> Result<(), SchemaError> {
        if let Err(p) = filter.validate_operands() {
            return Err(SchemaError::InvalidValue {
                attr: p.attr.clone(),
                reason: format!("invalid operand for operator {}", p.op),
            });
        }
        for p in filter.predicates() {
            let spec = match self.attrs.get(&p.attr) {
                Some(s) => s,
                None if self.open => continue,
                None => {
                    return Err(SchemaError::UnknownAttr {
                        schema: self.name.clone(),
                        attr: p.attr.clone(),
                    })
                }
            };
            if p.op == crate::filter::Op::Exists {
                continue;
            }
            let expected = expected_operand_type(spec.ty, p.op);
            if !expected.accepts(p.operand.value_type()) {
                return Err(SchemaError::TypeMismatch {
                    attr: p.attr.clone(),
                    expected,
                    got: p.operand.value_type(),
                });
            }
            if p.op == crate::filter::Op::Eq {
                if let Some(domain) = &spec.domain {
                    match p.operand.as_str() {
                        Some(s) if domain.contains(s) => {}
                        _ => {
                            return Err(SchemaError::OutOfDomain {
                                attr: p.attr.clone(),
                                value: p.operand.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema {}({} attrs)", self.name, self.attrs.len())
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attrs: BTreeMap<String, AttrSpec>,
    open: bool,
}

impl SchemaBuilder {
    /// Declare an attribute.
    pub fn attr(mut self, name: impl Into<String>, spec: AttrSpec) -> Self {
        self.attrs.insert(name.into(), spec);
        self
    }

    /// Allow events to carry undeclared attributes.
    pub fn open(mut self) -> Self {
        self.open = true;
        self
    }

    /// Finish building.
    pub fn build(self) -> Schema {
        Schema {
            name: self.name,
            attrs: self.attrs,
            open: self.open,
        }
    }
}

/// The schema used by the Web-feed case study: topical events whose topic is
/// a feed URL (see [`crate::event::TOPIC_ATTR`]).
pub fn feed_events_schema() -> Schema {
    Schema::builder("waif-feed-events")
        .attr("topic", AttrSpec::of(ValueType::Str).required())
        .attr("title", AttrSpec::of(ValueType::Str))
        .attr("link", AttrSpec::of(ValueType::Str))
        .attr("body", AttrSpec::of(ValueType::Str))
        .attr("published_day", AttrSpec::of(ValueType::Int))
        .open()
        .build()
}

/// A stock-quote schema mirroring the paper's §2.2 example ("the attention
/// parser would be looking for known stock symbols").
pub fn stock_quote_schema<I, S>(symbols: I) -> Schema
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    Schema::builder("stock-quotes")
        .attr(
            "symbol",
            AttrSpec::of(ValueType::Str).required().with_domain(symbols),
        )
        .attr("price", AttrSpec::of(ValueType::Float).required())
        .attr("volume", AttrSpec::of(ValueType::Int))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Op;

    fn schema() -> Schema {
        stock_quote_schema(["ACME", "GLOBEX"])
    }

    #[test]
    fn validate_pair_accepts_domain_member() {
        assert!(schema()
            .validate_pair("symbol", &Value::from("ACME"))
            .is_ok());
    }

    #[test]
    fn validate_pair_rejects_unknown_symbol() {
        let err = schema()
            .validate_pair("symbol", &Value::from("ENRON"))
            .unwrap_err();
        assert!(matches!(err, SchemaError::OutOfDomain { .. }));
    }

    #[test]
    fn validate_pair_rejects_unknown_attr_when_closed() {
        let err = schema()
            .validate_pair("color", &Value::from("red"))
            .unwrap_err();
        assert!(matches!(err, SchemaError::UnknownAttr { .. }));
    }

    #[test]
    fn open_schema_accepts_extra_attrs() {
        let s = feed_events_schema();
        assert!(s.validate_pair("anything", &Value::from(1)).is_ok());
    }

    #[test]
    fn validate_pair_type_mismatch() {
        let err = schema()
            .validate_pair("price", &Value::from("ten"))
            .unwrap_err();
        assert!(matches!(err, SchemaError::TypeMismatch { .. }));
        // Int accepted where float declared.
        assert!(schema().validate_pair("price", &Value::from(10)).is_ok());
    }

    #[test]
    fn validate_event_checks_required() {
        let ev = Event::builder().attr("symbol", "ACME").build();
        let err = schema().validate_event(&ev).unwrap_err();
        assert!(matches!(err, SchemaError::MissingRequired { .. }));
        let ok = Event::builder()
            .attr("symbol", "ACME")
            .attr("price", 1.0)
            .build();
        assert!(schema().validate_event(&ok).is_ok());
    }

    #[test]
    fn validate_event_rejects_nan() {
        let ev = Event::builder()
            .attr("symbol", "ACME")
            .attr("price", f64::NAN)
            .build();
        assert!(matches!(
            schema().validate_event(&ev),
            Err(SchemaError::InvalidValue { .. })
        ));
    }

    #[test]
    fn validate_filter_checks_types_and_domain() {
        let ok = Filter::new()
            .and("symbol", Op::Eq, "ACME")
            .and("price", Op::Gt, 5.0);
        assert!(schema().validate_filter(&ok).is_ok());

        let bad_domain = Filter::new().and("symbol", Op::Eq, "NOPE");
        assert!(matches!(
            schema().validate_filter(&bad_domain),
            Err(SchemaError::OutOfDomain { .. })
        ));

        let bad_type = Filter::new().and("price", Op::Gt, "cheap");
        assert!(matches!(
            schema().validate_filter(&bad_type),
            Err(SchemaError::TypeMismatch { .. })
        ));

        let unknown = Filter::new().and("colour", Op::Eq, "red");
        assert!(matches!(
            schema().validate_filter(&unknown),
            Err(SchemaError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn validate_filter_allows_string_ops_on_domain_attrs() {
        // Prefix match on symbol is fine even with a domain: domains restrict
        // equality operands only.
        let f = Filter::new().and("symbol", Op::Prefix, "AC");
        assert!(schema().validate_filter(&f).is_ok());
    }

    #[test]
    fn exists_predicate_always_type_checks() {
        let f = Filter::new().and_exists("price");
        assert!(schema().validate_filter(&f).is_ok());
    }
}
