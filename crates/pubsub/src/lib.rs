//! # reef-pubsub — content-based publish-subscribe substrate
//!
//! This crate is the publish-subscribe substrate that the Reef architecture
//! (Brenna et al., *Automatic Subscriptions In Publish-Subscribe Systems*,
//! ICDCSW'06) places subscriptions into. It provides, from scratch:
//!
//! * typed **events** as name-value pairs ([`Event`], [`Value`]);
//! * a **filter algebra** — conjunctions of predicates with equality,
//!   ordering, string and existence operators ([`Filter`], [`Op`]) plus a
//!   covering relation used for routing optimization;
//! * **schemas** describing "valid name-value pairs" of a pub/sub
//!   interface ([`Schema`]), the contract the attention parser matches
//!   tokens against (paper §2.1);
//! * two **matching engines** ([`NaiveMatcher`], [`IndexMatcher`]) behind
//!   a common trait ([`MatchEngine`]);
//! * a thread-safe single-node **broker** ([`Broker`]) with per-subscriber
//!   delivery queues;
//! * a sans-io **broker routing core** ([`BrokerNode`]) — subscription
//!   forwarding, covering-based pruning and reverse-path event routing as
//!   a pure message-in/message-out state machine ([`PeerMsg`]), with no
//!   I/O and no clock;
//! * a [`net::Transport`] abstraction over the message plane between
//!   brokers, and a deterministic **multi-broker overlay** ([`Overlay`])
//!   driving `BrokerNode`s over the simulated, byte-accounted
//!   [`net::SimTransport`] (`reef-wire` drives the same core over TCP).
//!
//! # Quickstart
//!
//! ```
//! use reef_pubsub::{Broker, Event, Filter, Op};
//!
//! let broker = Broker::new();
//! let (me, inbox) = broker.register();
//! broker.subscribe(me, Filter::new().and("price", Op::Gt, 10.0))?;
//! broker.publish(Event::builder().attr("price", 12.5).build())?;
//! assert_eq!(inbox.drain().len(), 1);
//! # Ok::<(), reef_pubsub::BrokerError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod clock;
pub mod error;
pub mod event;
pub mod filter;
pub mod matcher;
pub mod net;
pub mod overlay;
pub mod parse;
pub mod routing;
pub mod schema;
pub mod stats;
pub mod value;

pub use broker::{
    Broker, BrokerBuilder, DeliveryNotifier, OverflowPolicy, PublishOutcome, SubscriberHandle,
    SubscriberId, DEFAULT_BLOCK_TIMEOUT,
};
pub use clock::{Clock, ManualClock, SystemClock};
pub use error::{BrokerError, OverlayError, SchemaError};
pub use event::{Event, EventBuilder, EventId, PublishedEvent, TOPIC_ATTR};
pub use filter::{Filter, Op, Predicate};
pub use matcher::{IndexMatcher, MatchEngine, NaiveMatcher, SubscriptionId};
pub use net::{NetStats, NodeId, SimTransport, Transport, TransportDelivery};
pub use overlay::{BrokerNode, ClientId, GlobalSubId, NodeOutput, Overlay, PeerMsg, MAX_HOPS};
pub use parse::{parse_filter, parse_filters, ParseFilterError};
pub use routing::MeshRouter;
pub use schema::{feed_events_schema, stock_quote_schema, AttrSpec, Schema, SchemaBuilder};
pub use stats::BrokerStatsSnapshot;
pub use value::{Value, ValueType};
