//! Time as an injected dependency.
//!
//! The sans-io routing core ([`crate::BrokerNode`]) reads no clock at
//! all, but the layers above it — peer-link keepalive, periodic mesh
//! route refresh, auto-subscription decay — need a notion of "now".
//! Reading `Instant::now()` directly would make those layers untestable
//! under deterministic simulation, so they take a [`Clock`] instead:
//!
//! * production code injects [`SystemClock`] (monotonic wall time since
//!   construction — exactly the `Instant`-based epoch it replaces);
//! * a deterministic-simulation harness injects [`ManualClock`] and
//!   advances virtual time explicitly, making every timer decision
//!   (probe, teardown, refresh, decay) replayable from a seed.
//!
//! Together with explicit `tick()` entry points this is the
//! "abstract time, sockets and randomness" discipline that makes a run
//! reproducible: the only clock a simulated component ever sees is the
//! one the scheduler advances.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock.
///
/// Implementations must be cheap to read and never go backwards.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds elapsed since this clock's epoch.
    fn now_ms(&self) -> u64;
}

/// The production clock: wall time since construction, read through a
/// monotonic [`Instant`].
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }

    /// A fresh shared handle, the form the configs take.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// A virtual clock advanced explicitly by a test or simulation driver.
///
/// Reads never block and never move on their own; time passes only
/// through [`ManualClock::advance`] / [`ManualClock::set`], so every
/// timer decision downstream is a deterministic function of the driver's
/// schedule.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A fresh shared handle whose `Arc` the driver keeps to advance it.
    pub fn shared() -> Arc<ManualClock> {
        Arc::new(ManualClock::new())
    }

    /// Advance virtual time by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jump to an absolute virtual time. Saturating: the clock never
    /// goes backwards (a lower value is ignored).
    pub fn set(&self, ms: u64) {
        self.ms.fetch_max(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ms(), 250);
        clock.set(1000);
        assert_eq!(clock.now_ms(), 1000);
        clock.set(10);
        assert_eq!(clock.now_ms(), 1000, "never backwards");
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
