//! A distributed broker overlay with content-based routing.
//!
//! The Reef paper's substrate box (Figures 1 and 2) is a wide-area
//! publish-subscribe system in the tradition of Siena and Gryphon (§5.3).
//! This module implements that substrate as a **sans-io state machine**
//! plus a simulation driver:
//!
//! * [`BrokerNode`] — one broker's routing brain. It owns the routing
//!   table, advertisement state and covering logic, and communicates
//!   exclusively through values: every entry point returns the
//!   [`PeerMsg`]s that must be sent to neighboring brokers, and
//!   [`BrokerNode::handle`] consumes one incoming message and returns the
//!   local deliveries plus follow-up messages it caused. The node performs
//!   no I/O and reads no clock, so the same core can be driven by the
//!   deterministic [`crate::net::SimNet`] simulation *or* by real sockets
//!   (see `reef-wire`'s TCP federation).
//! * [`Overlay`] — the deterministic multi-broker driver: a *tree* of
//!   [`BrokerNode`]s over a [`crate::net::SimTransport`], with client
//!   attachment, mailboxes and virtual-time message delivery.
//!
//! The routing protocol itself is unchanged from the classic design:
//!
//! * **subscription forwarding** — a subscription placed at one broker is
//!   advertised through the tree so events published anywhere reach it;
//! * **covering-based pruning** — a broker does not advertise a
//!   subscription to a neighbor when an already-advertised subscription
//!   covers it ([`Filter::covers`]), shrinking routing tables and control
//!   traffic (ablation in bench **B2**);
//! * **reverse-path event routing** — an event is forwarded only on links
//!   from which a matching interest was advertised.

use crate::error::OverlayError;
use crate::event::{Event, EventId, PublishedEvent};
use crate::filter::Filter;
use crate::matcher::{IndexMatcher, MatchEngine, SubscriptionId};
use crate::net::{NetStats, NodeId, SimTransport, Transport};
use crate::routing::{MeshRouter, RouteRemoval};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Identifier of a client attached to some broker of the overlay.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Overlay-wide subscription identifier.
///
/// The sans-io core does not mint these itself: the driver supplies them,
/// so a simulation can use a dense global counter while a federation of
/// independent daemons namespaces ids by broker to keep them unique.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GlobalSubId(pub u64);

impl fmt::Display for GlobalSubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gsub#{}", self.0)
    }
}

/// Ceiling on [`PeerMsg::EventFwd`] hop counts. A correctly configured
/// overlay is a tree and never approaches this; the limit stops an
/// accidentally cyclic federation from forwarding an event forever.
pub const MAX_HOPS: u32 = 32;

/// Where a broker learned about a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubOrigin {
    /// Placed by a client attached to this broker.
    Local(ClientId),
    /// Advertised by a neighboring broker.
    Neighbor(NodeId),
}

/// Messages exchanged between brokers.
///
/// This is the complete broker-to-broker vocabulary of the routing
/// protocol. The enum is serde-serializable so transports can ship it
/// as-is — the simulation passes it by value, `reef-wire` JSON-encodes it
/// into peer frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeerMsg {
    /// Advertise a subscription to a neighbor (covering-pruned: only
    /// maximal filters are advertised when pruning is on).
    SubFwd {
        /// Overlay-wide id of the advertised subscription.
        sub: GlobalSubId,
        /// The subscription's filter.
        filter: Filter,
    },
    /// Withdraw a previously advertised subscription.
    UnsubFwd {
        /// Id of the subscription being withdrawn.
        sub: GlobalSubId,
    },
    /// Forward a published event along the tree.
    EventFwd {
        /// The event, with origin-broker id and timestamp.
        event: PublishedEvent,
        /// Broker-to-broker hops travelled so far (0 = first link).
        hops: u32,
    },
    /// Path-vector advertisement of a subscription (mesh mode): the
    /// filter plus the broker-id path the advertisement travelled,
    /// sender last. A receiver whose id is already on the path drops it
    /// — that is what lets mesh overlays contain cycles.
    SubAdv {
        /// Overlay-wide id of the advertised subscription.
        sub: GlobalSubId,
        /// The subscription's filter.
        filter: Filter,
        /// Broker ids traversed so far, the advertising broker last.
        path: Vec<u32>,
    },
    /// Keepalive probe on an idle peer link; the receiver echoes the
    /// nonce back as [`PeerMsg::Pong`]. Carried as a control message so
    /// it is never dropped by event backpressure.
    Ping {
        /// Opaque value echoed back unchanged.
        nonce: u64,
    },
    /// Keepalive reply; any traffic (this included) proves the link is
    /// alive.
    Pong {
        /// The probed nonce, returned unchanged.
        nonce: u64,
    },
}

impl PeerMsg {
    /// Accounted size of this message on a byte-counting transport.
    pub fn wire_size(&self) -> usize {
        match self {
            PeerMsg::SubFwd { filter, .. } => filter.wire_size() + 16,
            PeerMsg::UnsubFwd { .. } => 16,
            PeerMsg::EventFwd { event, .. } => event.event.wire_size() + 24,
            PeerMsg::SubAdv { filter, path, .. } => filter.wire_size() + 24 + 4 * path.len(),
            PeerMsg::Ping { .. } | PeerMsg::Pong { .. } => 16,
        }
    }
}

/// What a [`BrokerNode`] wants done after processing one input: events to
/// hand to locally attached clients, and messages to send to neighbors.
///
/// The node never performs these effects itself — the driver (simulated
/// or socket-backed) owns delivery and transmission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeOutput {
    /// Events to deliver to local clients, one entry per matching local
    /// subscription (a client with two matching subscriptions appears
    /// twice, mirroring the flat broker's per-subscription delivery).
    pub deliveries: Vec<(ClientId, PublishedEvent)>,
    /// Messages to transmit, in order, to the named neighbors.
    pub messages: Vec<(NodeId, PeerMsg)>,
}

impl NodeOutput {
    fn from_messages(messages: Vec<(NodeId, PeerMsg)>) -> Self {
        NodeOutput {
            deliveries: Vec::new(),
            messages,
        }
    }
}

/// One broker's routing core: a transport-agnostic, clock-free state
/// machine.
///
/// A `BrokerNode` knows its neighbors only as opaque [`NodeId`] link
/// handles; what those handles mean (a simulated link, a TCP connection)
/// is the driver's business. All mutation happens through four entry
/// points — [`subscribe_local`](Self::subscribe_local),
/// [`unsubscribe_local`](Self::unsubscribe_local),
/// [`publish_local`](Self::publish_local) and [`handle`](Self::handle) —
/// each returning the messages (and, for events, local deliveries) the
/// driver must carry out.
///
/// # Examples
///
/// Two nodes wired back-to-back by hand, no transport at all:
///
/// ```
/// use reef_pubsub::net::NodeId;
/// use reef_pubsub::{BrokerNode, ClientId, Event, EventId, Filter, GlobalSubId, PublishedEvent};
///
/// let (a, b) = (NodeId(0), NodeId(1));
/// let mut node_a = BrokerNode::new(true);
/// let mut node_b = BrokerNode::new(true);
/// node_a.add_neighbor(b);
/// node_b.add_neighbor(a);
///
/// // A subscription at B is advertised to A...
/// let ads = node_b.subscribe_local(GlobalSubId(0), ClientId(0), Filter::topic("t"));
/// for (_, msg) in ads {
///     node_a.handle(b, msg);
/// }
/// // ...so a publish at A is forwarded to B and delivered there.
/// let event = PublishedEvent { id: EventId(0), published_at: 0, event: Event::topical("t", "x") };
/// let out = node_a.publish_local(event);
/// let (dst, fwd) = out.messages.into_iter().next().unwrap();
/// assert_eq!(dst, b);
/// let delivered = node_b.handle(a, fwd);
/// assert_eq!(delivered.deliveries.len(), 1);
/// ```
pub struct BrokerNode {
    covering: bool,
    neighbors: Vec<NodeId>,
    /// Everything this broker knows: local subs and neighbor advertisements.
    matcher: IndexMatcher,
    origin: HashMap<GlobalSubId, SubOrigin>,
    filters: HashMap<GlobalSubId, Filter>,
    /// What this broker has advertised to each neighbor.
    advertised: HashMap<NodeId, BTreeMap<GlobalSubId, Filter>>,
    /// Path-vector routing state; `Some` makes this a mesh-mode node
    /// that tolerates cycles and redundant links.
    mesh: Option<MeshRouter>,
}

impl fmt::Debug for BrokerNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerNode")
            .field("neighbors", &self.neighbors.len())
            .field("routing_entries", &self.matcher.len())
            .field("covering", &self.covering)
            .field("mesh", &self.mesh.is_some())
            .finish()
    }
}

impl BrokerNode {
    /// An isolated node with no neighbors. `covering` enables
    /// covering-based advertisement pruning.
    pub fn new(covering: bool) -> Self {
        BrokerNode {
            covering,
            neighbors: Vec::new(),
            matcher: IndexMatcher::new(),
            origin: HashMap::new(),
            filters: HashMap::new(),
            advertised: HashMap::new(),
            mesh: None,
        }
    }

    /// An isolated **mesh-mode** node: subscriptions travel as
    /// path-vector advertisements ([`PeerMsg::SubAdv`]), cycles and
    /// redundant links are tolerated (shortest live path is the fast
    /// path, the rest failover alternates), and duplicate events are
    /// suppressed by a bounded seen-cache instead of relying on
    /// [`MAX_HOPS`]. `broker_id` must be unique across the federation —
    /// it is the id rejected in incoming advertisement paths. Mesh mode
    /// advertises every known subscription (no covering pruning: a
    /// covering filter and its coveree may route along different paths).
    pub fn new_mesh(broker_id: u32) -> Self {
        BrokerNode {
            covering: false,
            neighbors: Vec::new(),
            matcher: IndexMatcher::new(),
            origin: HashMap::new(),
            filters: HashMap::new(),
            advertised: HashMap::new(),
            mesh: Some(MeshRouter::new(broker_id)),
        }
    }

    /// Whether covering-based pruning is enabled.
    pub fn covering(&self) -> bool {
        self.covering
    }

    /// Whether this node routes in mesh (path-vector) mode.
    pub fn is_mesh(&self) -> bool {
        self.mesh.is_some()
    }

    /// The node's current neighbor links.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Register a new neighbor link and return the advertisements that
    /// must be sent to bring it up to date with this node's current
    /// knowledge (empty when the node knows no subscriptions yet).
    ///
    /// Tree mode only; mesh nodes must use
    /// [`BrokerNode::add_mesh_neighbor`], which also records the remote
    /// broker id the path vectors need.
    pub fn add_neighbor(&mut self, neighbor: NodeId) -> Vec<(NodeId, PeerMsg)> {
        debug_assert!(self.mesh.is_none(), "mesh nodes use add_mesh_neighbor");
        if !self.neighbors.contains(&neighbor) {
            self.neighbors.push(neighbor);
        }
        self.sync_advertisements()
    }

    /// Mesh-mode counterpart of [`BrokerNode::add_neighbor`]: registers
    /// the link together with the remote end's federation-wide broker
    /// id (learned at handshake) and returns the path-vector
    /// advertisements bringing the new neighbor up to date.
    pub fn add_mesh_neighbor(&mut self, neighbor: NodeId, broker: u32) -> Vec<(NodeId, PeerMsg)> {
        let router = self.mesh.as_mut().expect("add_mesh_neighbor on mesh node");
        router.add_neighbor(neighbor, broker);
        if !self.neighbors.contains(&neighbor) {
            self.neighbors.push(neighbor);
        }
        self.mesh_sync()
    }

    /// Drop a neighbor link: forget everything it advertised and
    /// re-advertise to the remaining neighbors (filters that were pruned
    /// because the departed neighbor covered them may need to resurface).
    ///
    /// In mesh mode this is the self-stabilization step: routes learned
    /// through the lost link are torn down *immediately*, surviving
    /// alternates are promoted to fast path, subscriptions with no
    /// remaining route are withdrawn from the remaining neighbors, and
    /// changed fast paths are re-advertised — the routing diff of the
    /// link's death, pushed without waiting for any timer.
    pub fn remove_neighbor(&mut self, neighbor: NodeId) -> Vec<(NodeId, PeerMsg)> {
        self.neighbors.retain(|n| *n != neighbor);
        if let Some(router) = self.mesh.as_mut() {
            for sub in router.remove_neighbor(neighbor) {
                self.remove_sub(sub);
            }
            return self.mesh_sync();
        }
        self.advertised.remove(&neighbor);
        let gone: Vec<GlobalSubId> = self
            .origin
            .iter()
            .filter(|(_, o)| matches!(o, SubOrigin::Neighbor(n) if *n == neighbor))
            .map(|(s, _)| *s)
            .collect();
        for sub in gone {
            self.remove_sub(sub);
        }
        self.sync_advertisements()
    }

    /// Re-send every current advertisement (mesh mode): the periodic
    /// refresh that lets routing tables converge after arbitrary
    /// join/leave/crash churn even if a peer missed a diff. No-op on
    /// tree nodes, whose diffs are lossless by construction.
    pub fn refresh(&mut self) -> Vec<(NodeId, PeerMsg)> {
        match self.mesh.as_mut() {
            Some(router) => {
                router.clear_advertised();
                self.mesh_sync()
            }
            None => Vec::new(),
        }
    }

    /// Place a subscription for a locally attached client. Returns the
    /// advertisements to propagate.
    ///
    /// The caller mints `sub`; it must be unique across the whole overlay
    /// (a federation of daemons namespaces the id space per broker).
    pub fn subscribe_local(
        &mut self,
        sub: GlobalSubId,
        client: ClientId,
        filter: Filter,
    ) -> Vec<(NodeId, PeerMsg)> {
        self.insert_sub(sub, SubOrigin::Local(client), filter);
        if self.mesh.is_some() {
            self.mesh_sync()
        } else {
            self.sync_advertisements()
        }
    }

    /// Withdraw a locally placed subscription. Returns the control
    /// messages to propagate. `false` means the id was unknown (no
    /// messages are produced).
    pub fn unsubscribe_local(&mut self, sub: GlobalSubId) -> Vec<(NodeId, PeerMsg)> {
        if self.remove_sub(sub) {
            if self.mesh.is_some() {
                self.mesh_sync()
            } else {
                self.sync_advertisements()
            }
        } else {
            Vec::new()
        }
    }

    /// Route an event published by a locally attached client.
    ///
    /// The returned output contains the local deliveries (the publisher's
    /// own broker may host matching subscribers) and the forwards toward
    /// interested neighbors, with hop count 0.
    pub fn publish_local(&mut self, event: PublishedEvent) -> NodeOutput {
        if let Some(router) = self.mesh.as_mut() {
            // Mark the id seen so a copy echoed back over a cycle is
            // suppressed (and counted) instead of re-delivered.
            let _ = router.first_sight(event.id);
            return self.route_event_mesh(None, event, 0);
        }
        self.route_event(None, event, 0)
    }

    /// Process one message received from neighbor `from` and return the
    /// effects: local deliveries and follow-up messages.
    ///
    /// Tree advertisements ([`PeerMsg::SubFwd`]) are ignored by mesh
    /// nodes and path-vector ones ([`PeerMsg::SubAdv`]) by tree nodes: a
    /// mixed-mode federation must not corrupt either routing table.
    pub fn handle(&mut self, from: NodeId, msg: PeerMsg) -> NodeOutput {
        match msg {
            PeerMsg::SubFwd { sub, filter } => {
                if self.mesh.is_some() {
                    return NodeOutput::default();
                }
                // A SubFwd for a subscription this node already knows from
                // elsewhere is a cycle echo (the overlay is supposed to be
                // a tree, but a misconfigured federation is not). Adopting
                // it would overwrite the true origin — destroying a local
                // subscription or flipping a reverse path — so drop it;
                // only a re-advertisement from the same neighbor (a link
                // re-sync) updates the filter.
                match self.origin.get(&sub) {
                    Some(SubOrigin::Local(_)) => return NodeOutput::default(),
                    Some(SubOrigin::Neighbor(n)) if *n != from => {
                        return NodeOutput::default();
                    }
                    _ => {}
                }
                self.insert_sub(sub, SubOrigin::Neighbor(from), filter);
                NodeOutput::from_messages(self.sync_advertisements())
            }
            PeerMsg::SubAdv { sub, filter, path } => {
                // A SubAdv for a local subscription can only be a forged
                // or corrupted echo — the path check would catch the
                // honest case, but never risk hijacking a local origin.
                if matches!(self.origin.get(&sub), Some(SubOrigin::Local(_))) {
                    return NodeOutput::default();
                }
                let Some(router) = self.mesh.as_mut() else {
                    return NodeOutput::default();
                };
                if !router.insert_route(from, sub, filter.clone(), path) {
                    return NodeOutput::default();
                }
                self.insert_sub(sub, SubOrigin::Neighbor(from), filter);
                NodeOutput::from_messages(self.mesh_sync())
            }
            PeerMsg::UnsubFwd { sub } => {
                if let Some(router) = self.mesh.as_mut() {
                    return match router.remove_route(from, sub) {
                        RouteRemoval::NotFound => NodeOutput::default(),
                        RouteRemoval::Changed => NodeOutput::from_messages(self.mesh_sync()),
                        RouteRemoval::Gone => {
                            self.remove_sub(sub);
                            NodeOutput::from_messages(self.mesh_sync())
                        }
                    };
                }
                if self.remove_sub(sub) {
                    NodeOutput::from_messages(self.sync_advertisements())
                } else {
                    NodeOutput::default()
                }
            }
            PeerMsg::EventFwd { event, hops } => {
                if hops >= MAX_HOPS {
                    return NodeOutput::default();
                }
                if let Some(router) = self.mesh.as_mut() {
                    if !router.first_sight(event.id) {
                        return NodeOutput::default();
                    }
                    return self.route_event_mesh(Some(from), event, hops + 1);
                }
                self.route_event(Some(from), event, hops + 1)
            }
            PeerMsg::Ping { nonce } => {
                NodeOutput::from_messages(vec![(from, PeerMsg::Pong { nonce })])
            }
            PeerMsg::Pong { .. } => NodeOutput::default(),
        }
    }

    /// Routing-table entries this node holds (local subscriptions plus
    /// neighbor advertisements).
    pub fn routing_entries(&self) -> usize {
        self.matcher.len()
    }

    /// Advertisements currently held toward neighbors.
    pub fn advertisement_count(&self) -> usize {
        match &self.mesh {
            Some(router) => router.advertisement_count(),
            None => self.advertised.values().map(BTreeMap::len).sum(),
        }
    }

    /// Failover routes held beyond each subscription's fast path.
    /// Always 0 on tree nodes.
    pub fn mesh_alternates(&self) -> usize {
        self.mesh.as_ref().map_or(0, MeshRouter::alternates)
    }

    /// Times a dead fast path was replaced by a surviving alternate.
    /// Always 0 on tree nodes.
    pub fn mesh_reroutes(&self) -> u64 {
        self.mesh.as_ref().map_or(0, MeshRouter::reroutes)
    }

    /// Duplicate event copies dropped by the mesh seen-cache. Always 0
    /// on tree nodes.
    pub fn mesh_duplicates_suppressed(&self) -> u64 {
        self.mesh
            .as_ref()
            .map_or(0, MeshRouter::duplicates_suppressed)
    }

    /// Every live mesh route as `(subscription, incoming link, path)`
    /// triples — fast paths and alternates alike, sorted. Empty on tree
    /// nodes. See [`MeshRouter::route_table`].
    pub fn mesh_route_table(&self) -> Vec<(GlobalSubId, NodeId, Vec<u32>)> {
        self.mesh
            .as_ref()
            .map_or_else(Vec::new, MeshRouter::route_table)
    }

    /// The fast path per remote mesh subscription, sorted. Empty on tree
    /// nodes. See [`MeshRouter::best_routes`].
    pub fn mesh_best_routes(&self) -> Vec<(GlobalSubId, NodeId, Vec<u32>)> {
        self.mesh
            .as_ref()
            .map_or_else(Vec::new, MeshRouter::best_routes)
    }

    /// Everything this node currently knows: each subscription id with
    /// its filter, local and neighbor-advertised alike.
    pub fn knowledge(&self) -> impl Iterator<Item = (GlobalSubId, &Filter)> {
        self.filters.iter().map(|(sub, f)| (*sub, f))
    }

    fn insert_sub(&mut self, sub: GlobalSubId, origin: SubOrigin, filter: Filter) {
        self.matcher.insert(SubscriptionId(sub.0), filter.clone());
        self.origin.insert(sub, origin);
        self.filters.insert(sub, filter);
    }

    fn remove_sub(&mut self, sub: GlobalSubId) -> bool {
        let existed = self.matcher.remove(SubscriptionId(sub.0)).is_some();
        self.origin.remove(&sub);
        self.filters.remove(&sub);
        existed
    }

    /// The set of subscriptions this broker *should* be advertising to
    /// `neighbor`, given its current knowledge.
    ///
    /// Without covering: every known subscription not originating at that
    /// neighbor. With covering: only the maximal ones — a subscription is
    /// dropped when another candidate strictly covers it, or when an
    /// equivalent candidate with a smaller id exists (canonical
    /// representative of an equivalence class).
    fn desired_ads(&self, neighbor: NodeId) -> BTreeMap<GlobalSubId, Filter> {
        let candidates: BTreeMap<GlobalSubId, &Filter> = self
            .filters
            .iter()
            .filter(|(sub, _)| match self.origin.get(sub) {
                Some(SubOrigin::Neighbor(n)) => *n != neighbor,
                Some(SubOrigin::Local(_)) => true,
                None => false,
            })
            .map(|(sub, f)| (*sub, f))
            .collect();
        if !self.covering {
            return candidates
                .into_iter()
                .map(|(s, f)| (s, f.clone()))
                .collect();
        }
        let mut out = BTreeMap::new();
        'outer: for (&sub, &filter) in &candidates {
            for (&other_sub, &other_filter) in &candidates {
                if other_sub == sub {
                    continue;
                }
                if other_filter.covers(filter) {
                    let equivalent = filter.covers(other_filter);
                    // Strictly covered, or covered by an equivalent filter
                    // with a smaller id (the canonical representative).
                    if !equivalent || other_sub < sub {
                        continue 'outer;
                    }
                }
            }
            out.insert(sub, filter.clone());
        }
        out
    }

    /// Diff desired vs actual advertisements toward each neighbor and
    /// return the control messages closing the gap.
    fn sync_advertisements(&mut self) -> Vec<(NodeId, PeerMsg)> {
        let mut to_send: Vec<(NodeId, PeerMsg)> = Vec::new();
        let neighbors = self.neighbors.clone();
        for n in neighbors {
            let desired = self.desired_ads(n);
            let current = self.advertised.entry(n).or_default();
            let mut removals: Vec<GlobalSubId> = Vec::new();
            for sub in current.keys() {
                if !desired.contains_key(sub) {
                    removals.push(*sub);
                }
            }
            for sub in removals {
                current.remove(&sub);
                to_send.push((n, PeerMsg::UnsubFwd { sub }));
            }
            for (sub, filter) in &desired {
                // Re-send when the id is new to this neighbor *or* the
                // filter changed: a same-neighbor re-advertisement (a
                // link re-sync) may update a subscription's filter, and
                // that update must travel onward, not stop one hop in.
                if current.get(sub) != Some(filter) {
                    current.insert(*sub, filter.clone());
                    to_send.push((
                        n,
                        PeerMsg::SubFwd {
                            sub: *sub,
                            filter: filter.clone(),
                        },
                    ));
                }
            }
        }
        to_send
    }

    /// Mesh counterpart of [`BrokerNode::sync_advertisements`]: hand the
    /// router the current locals and neighbors and let it diff what each
    /// neighbor should see (fast paths + split horizon) against what was
    /// already sent.
    fn mesh_sync(&mut self) -> Vec<(NodeId, PeerMsg)> {
        let locals: Vec<(GlobalSubId, Filter)> = self
            .filters
            .iter()
            .filter(|(sub, _)| matches!(self.origin.get(*sub), Some(SubOrigin::Local(_))))
            .map(|(sub, filter)| (*sub, filter.clone()))
            .collect();
        let neighbors = self.neighbors.clone();
        self.mesh
            .as_mut()
            .expect("mesh_sync on mesh node")
            .sync(&neighbors, &locals)
    }

    /// Mesh event routing: deliver locally, then forward over **every**
    /// live route of each matching remote subscription (except the link
    /// the event came in on). The fast path delivers first; redundant
    /// copies are suppressed by the receivers' seen-caches, which is
    /// what lets delivery survive a link dying mid-event.
    fn route_event_mesh(
        &mut self,
        from: Option<NodeId>,
        event: PublishedEvent,
        hops: u32,
    ) -> NodeOutput {
        let router = self.mesh.as_ref().expect("mesh routing on mesh node");
        let matched = self.matcher.matches(&event.event);
        let mut local: Vec<ClientId> = Vec::new();
        let mut forward: Vec<NodeId> = Vec::new();
        for m in matched {
            let sub = GlobalSubId(m.0);
            match self.origin.get(&sub) {
                Some(SubOrigin::Local(c)) => local.push(*c),
                Some(SubOrigin::Neighbor(_)) => {
                    for link in router.via_links(sub) {
                        if Some(link) != from && !forward.contains(&link) {
                            forward.push(link);
                        }
                    }
                }
                None => {}
            }
        }
        forward.sort_unstable_by_key(|n| n.0);
        let deliveries = local.into_iter().map(|c| (c, event.clone())).collect();
        let messages = forward
            .into_iter()
            .map(|n| {
                (
                    n,
                    PeerMsg::EventFwd {
                        event: event.clone(),
                        hops,
                    },
                )
            })
            .collect();
        NodeOutput {
            deliveries,
            messages,
        }
    }

    /// Deliver locally and forward along interested links.
    fn route_event(
        &mut self,
        from: Option<NodeId>,
        event: PublishedEvent,
        hops: u32,
    ) -> NodeOutput {
        let matched = self.matcher.matches(&event.event);
        let mut local: Vec<ClientId> = Vec::new();
        let mut forward: Vec<NodeId> = Vec::new();
        for m in matched {
            match self.origin.get(&GlobalSubId(m.0)) {
                Some(SubOrigin::Local(c)) => local.push(*c),
                Some(SubOrigin::Neighbor(n)) if Some(*n) != from && !forward.contains(n) => {
                    forward.push(*n);
                }
                Some(SubOrigin::Neighbor(_)) | None => {}
            }
        }
        forward.sort_unstable_by_key(|n| n.0);
        let deliveries = local.into_iter().map(|c| (c, event.clone())).collect();
        let messages = forward
            .into_iter()
            .map(|n| {
                (
                    n,
                    PeerMsg::EventFwd {
                        event: event.clone(),
                        hops,
                    },
                )
            })
            .collect();
        NodeOutput {
            deliveries,
            messages,
        }
    }
}

/// Per-client state: attachment point and mailbox.
struct ClientState {
    broker: NodeId,
    mailbox: Vec<PublishedEvent>,
    /// Live subscriptions owned by this client.
    subs: HashSet<GlobalSubId>,
}

/// A deterministic multi-broker publish-subscribe overlay.
///
/// `Overlay` is a thin driver: it holds one [`BrokerNode`] per broker and
/// shuttles [`PeerMsg`]s between them over a [`SimTransport`] in
/// virtual-time order. All routing decisions live in the nodes; all
/// delivery and transmission lives here.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Overlay, Event, Filter};
///
/// let mut overlay = Overlay::new(true);
/// let b1 = overlay.add_broker();
/// let b2 = overlay.add_broker();
/// overlay.link(b1, b2, 10)?;
/// let alice = overlay.attach_client(b1)?;
/// let bob = overlay.attach_client(b2)?;
/// overlay.subscribe(bob, Filter::topic("news"))?;
/// overlay.run_until_idle();
/// overlay.publish(alice, Event::topical("news", "hi"))?;
/// overlay.run_until_idle();
/// assert_eq!(overlay.take_delivered(bob)?.len(), 1);
/// # Ok::<(), reef_pubsub::OverlayError>(())
/// ```
pub struct Overlay {
    transport: SimTransport,
    brokers: HashMap<NodeId, BrokerNode>,
    clients: HashMap<ClientId, ClientState>,
    covering: bool,
    /// Mesh overlays route by path vector and accept cyclic links.
    mesh: bool,
    next_client: u64,
    next_sub: u64,
    next_event: u64,
    /// Union-find over broker ids for cycle prevention (tree mode only).
    parent: HashMap<NodeId, NodeId>,
}

impl fmt::Debug for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Overlay")
            .field("brokers", &self.brokers.len())
            .field("clients", &self.clients.len())
            .field("covering", &self.covering)
            .finish()
    }
}

impl Overlay {
    /// Create an empty overlay. `covering` enables covering-based
    /// advertisement pruning.
    pub fn new(covering: bool) -> Self {
        Overlay {
            transport: SimTransport::new(),
            brokers: HashMap::new(),
            clients: HashMap::new(),
            covering,
            mesh: false,
            next_client: 0,
            next_sub: 0,
            next_event: 0,
            parent: HashMap::new(),
        }
    }

    /// Create an empty **mesh** overlay: links may form cycles and
    /// redundant paths, brokers route by path-vector advertisement
    /// ([`BrokerNode::new_mesh`]), and [`Overlay::unlink`] /
    /// [`Overlay::crash_broker`] model churn the routing layer must
    /// survive. In the simulation a broker's federation-wide id is its
    /// [`NodeId`] value.
    pub fn new_mesh() -> Self {
        Overlay {
            transport: SimTransport::new(),
            brokers: HashMap::new(),
            clients: HashMap::new(),
            covering: false,
            mesh: true,
            next_client: 0,
            next_sub: 0,
            next_event: 0,
            parent: HashMap::new(),
        }
    }

    /// Whether this overlay routes in mesh (path-vector) mode.
    pub fn is_mesh(&self) -> bool {
        self.mesh
    }

    /// Add a broker node.
    pub fn add_broker(&mut self) -> NodeId {
        let id = self.transport.add_node();
        let node = if self.mesh {
            BrokerNode::new_mesh(id.0)
        } else {
            BrokerNode::new(self.covering)
        };
        self.brokers.insert(id, node);
        self.parent.insert(id, id);
        id
    }

    fn find_root(&mut self, mut x: NodeId) -> NodeId {
        while self.parent[&x] != x {
            let grand = self.parent[&self.parent[&x]];
            self.parent.insert(x, grand);
            x = grand;
        }
        x
    }

    /// Connect two brokers with the given one-way latency.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownBroker`] if either endpoint does not exist.
    /// * [`OverlayError::WouldCreateCycle`] if the link would close a loop
    ///   in a **tree** overlay (reverse-path routing must stay
    ///   duplicate-free). Mesh overlays accept cyclic links — that is
    ///   their point.
    pub fn link(&mut self, a: NodeId, b: NodeId, latency: u64) -> Result<(), OverlayError> {
        if !self.brokers.contains_key(&a) {
            return Err(OverlayError::UnknownBroker(a));
        }
        if !self.brokers.contains_key(&b) {
            return Err(OverlayError::UnknownBroker(b));
        }
        if self.mesh {
            self.transport.connect(a, b, latency);
            let sync_a = self
                .brokers
                .get_mut(&a)
                .expect("checked")
                .add_mesh_neighbor(b, b.0);
            self.send_all(a, sync_a);
            let sync_b = self
                .brokers
                .get_mut(&b)
                .expect("checked")
                .add_mesh_neighbor(a, a.0);
            self.send_all(b, sync_b);
            return Ok(());
        }
        let (ra, rb) = (self.find_root(a), self.find_root(b));
        if ra == rb {
            return Err(OverlayError::WouldCreateCycle(a, b));
        }
        self.parent.insert(ra, rb);
        self.transport.connect(a, b, latency);
        let sync_a = self.brokers.get_mut(&a).expect("checked").add_neighbor(b);
        self.send_all(a, sync_a);
        let sync_b = self.brokers.get_mut(&b).expect("checked").add_neighbor(a);
        self.send_all(b, sync_b);
        Ok(())
    }

    /// Kill the link between two brokers (mesh only): in-flight messages
    /// on the link are lost, both ends tear down routes learned through
    /// it and push the routing diff to their surviving neighbors.
    ///
    /// # Errors
    ///
    /// [`OverlayError::RequiresMesh`] on a tree overlay,
    /// [`OverlayError::UnknownBroker`] / [`OverlayError::NoSuchLink`] for
    /// bad endpoints.
    pub fn unlink(&mut self, a: NodeId, b: NodeId) -> Result<(), OverlayError> {
        if !self.mesh {
            return Err(OverlayError::RequiresMesh);
        }
        if !self.brokers.contains_key(&a) {
            return Err(OverlayError::UnknownBroker(a));
        }
        if !self.brokers.contains_key(&b) {
            return Err(OverlayError::UnknownBroker(b));
        }
        if !self.transport.disconnect(a, b) {
            return Err(OverlayError::NoSuchLink(a, b));
        }
        let out_a = self
            .brokers
            .get_mut(&a)
            .expect("checked")
            .remove_neighbor(b);
        self.send_all(a, out_a);
        let out_b = self
            .brokers
            .get_mut(&b)
            .expect("checked")
            .remove_neighbor(a);
        self.send_all(b, out_b);
        Ok(())
    }

    /// Crash a broker (mesh only): every link it held dies as in
    /// [`Overlay::unlink`], its clients (and their subscriptions) vanish
    /// with it, and the surviving brokers converge on routes that avoid
    /// it.
    ///
    /// # Errors
    ///
    /// [`OverlayError::RequiresMesh`] on a tree overlay,
    /// [`OverlayError::UnknownBroker`] if the broker does not exist.
    pub fn crash_broker(&mut self, broker: NodeId) -> Result<(), OverlayError> {
        if !self.mesh {
            return Err(OverlayError::RequiresMesh);
        }
        if !self.brokers.contains_key(&broker) {
            return Err(OverlayError::UnknownBroker(broker));
        }
        let peers: Vec<NodeId> = self
            .brokers
            .iter()
            .filter(|(id, node)| **id != broker && node.neighbors().contains(&broker))
            .map(|(id, _)| *id)
            .collect();
        for peer in peers {
            self.transport.disconnect(peer, broker);
            let out = self
                .brokers
                .get_mut(&peer)
                .expect("peer exists")
                .remove_neighbor(broker);
            self.send_all(peer, out);
        }
        self.brokers.remove(&broker);
        self.clients.retain(|_, state| state.broker != broker);
        Ok(())
    }

    /// Drive one periodic refresh round: every broker re-sends its
    /// current advertisements (no-op per node on tree overlays). Call
    /// [`Overlay::run_until_idle`] afterwards to let tables converge.
    pub fn refresh_all(&mut self) {
        let mut ids: Vec<NodeId> = self.brokers.keys().copied().collect();
        ids.sort_unstable_by_key(|n| n.0);
        for id in ids {
            let messages = self
                .brokers
                .get_mut(&id)
                .expect("listed broker exists")
                .refresh();
            self.send_all(id, messages);
        }
    }

    /// Attach a client to a broker.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownBroker`] if the broker does not exist.
    pub fn attach_client(&mut self, broker: NodeId) -> Result<ClientId, OverlayError> {
        if !self.brokers.contains_key(&broker) {
            return Err(OverlayError::UnknownBroker(broker));
        }
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.clients.insert(
            id,
            ClientState {
                broker,
                mailbox: Vec::new(),
                subs: HashSet::new(),
            },
        );
        Ok(id)
    }

    /// Place a subscription for `client`. Propagation messages are queued;
    /// call [`Overlay::run_until_idle`] to flush them through the tree.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn subscribe(
        &mut self,
        client: ClientId,
        filter: Filter,
    ) -> Result<GlobalSubId, OverlayError> {
        let broker_id = self
            .clients
            .get(&client)
            .ok_or(OverlayError::UnknownClient(client))?
            .broker;
        let sub = GlobalSubId(self.next_sub);
        self.next_sub += 1;
        let broker = self
            .brokers
            .get_mut(&broker_id)
            .expect("client broker exists");
        let messages = broker.subscribe_local(sub, client, filter);
        self.clients
            .get_mut(&client)
            .expect("checked")
            .subs
            .insert(sub);
        self.send_all(broker_id, messages);
        Ok(sub)
    }

    /// Withdraw a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if no client owns `sub`.
    pub fn unsubscribe(&mut self, sub: GlobalSubId) -> Result<(), OverlayError> {
        let owner = self
            .clients
            .iter()
            .find(|(_, c)| c.subs.contains(&sub))
            .map(|(id, c)| (*id, c.broker));
        let (client, broker_id) = owner.ok_or(OverlayError::UnknownClient(ClientId(u64::MAX)))?;
        self.clients
            .get_mut(&client)
            .expect("checked")
            .subs
            .remove(&sub);
        let broker = self
            .brokers
            .get_mut(&broker_id)
            .expect("client broker exists");
        let messages = broker.unsubscribe_local(sub);
        self.send_all(broker_id, messages);
        Ok(())
    }

    /// Publish an event from `client`. Local deliveries happen immediately;
    /// remote deliveries after [`Overlay::run_until_idle`].
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn publish(&mut self, client: ClientId, event: Event) -> Result<EventId, OverlayError> {
        let broker_id = self
            .clients
            .get(&client)
            .ok_or(OverlayError::UnknownClient(client))?
            .broker;
        let id = EventId(self.next_event);
        self.next_event += 1;
        let published = PublishedEvent {
            id,
            published_at: self.transport.now(),
            event,
        };
        let output = self
            .brokers
            .get_mut(&broker_id)
            .expect("client broker exists")
            .publish_local(published);
        self.apply(broker_id, output);
        Ok(id)
    }

    /// Hand a node's requested effects to the mailboxes and the transport.
    fn apply(&mut self, at: NodeId, output: NodeOutput) {
        for (client, event) in output.deliveries {
            if let Some(state) = self.clients.get_mut(&client) {
                state.mailbox.push(event);
            }
        }
        self.send_all(at, output.messages);
    }

    fn send_all(&mut self, from: NodeId, messages: Vec<(NodeId, PeerMsg)>) {
        for (to, msg) in messages {
            self.transport.send(from, to, msg).expect("linked neighbor");
        }
    }

    /// Process queued messages until the network is idle. Returns the number
    /// of messages processed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut processed = 0;
        while let Some(delivery) = self.transport.recv() {
            processed += 1;
            let output = self
                .brokers
                .get_mut(&delivery.dst)
                .expect("broker exists")
                .handle(delivery.src, delivery.msg);
            self.apply(delivery.dst, output);
        }
        processed
    }

    /// Take all events delivered to `client` so far.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn take_delivered(
        &mut self,
        client: ClientId,
    ) -> Result<Vec<PublishedEvent>, OverlayError> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or(OverlayError::UnknownClient(client))?;
        Ok(std::mem::take(&mut state.mailbox))
    }

    /// Aggregate network statistics (messages, bytes, in-flight).
    pub fn net_stats(&self) -> NetStats {
        self.transport.stats()
    }

    /// Total routing-table entries across all brokers (known subscriptions,
    /// local + remote). The covering ablation compares this with covering
    /// on and off.
    pub fn routing_entries(&self) -> usize {
        self.brokers.values().map(BrokerNode::routing_entries).sum()
    }

    /// Routing-table entries held by one broker.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownBroker`] if the broker does not exist.
    pub fn routing_entries_at(&self, broker: NodeId) -> Result<usize, OverlayError> {
        self.brokers
            .get(&broker)
            .map(BrokerNode::routing_entries)
            .ok_or(OverlayError::UnknownBroker(broker))
    }

    /// Total advertisements currently held toward neighbors.
    pub fn advertisement_count(&self) -> usize {
        self.brokers
            .values()
            .map(BrokerNode::advertisement_count)
            .sum()
    }

    /// Failover routes held beyond fast paths, summed across brokers
    /// (mesh overlays; always 0 on trees).
    pub fn mesh_alternates(&self) -> usize {
        self.brokers.values().map(BrokerNode::mesh_alternates).sum()
    }

    /// Fast-path promotions after route loss, summed across brokers.
    pub fn mesh_reroutes(&self) -> u64 {
        self.brokers.values().map(BrokerNode::mesh_reroutes).sum()
    }

    /// Duplicate event copies suppressed, summed across brokers.
    pub fn mesh_duplicates_suppressed(&self) -> u64 {
        self.brokers
            .values()
            .map(BrokerNode::mesh_duplicates_suppressed)
            .sum()
    }

    /// Current virtual time of the underlying network.
    pub fn now(&self) -> u64 {
        self.transport.now()
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Op;

    /// Build a 3-broker chain b0 - b1 - b2 with one client per broker.
    fn chain() -> (Overlay, Vec<NodeId>, Vec<ClientId>) {
        let mut ov = Overlay::new(true);
        let brokers: Vec<NodeId> = (0..3).map(|_| ov.add_broker()).collect();
        ov.link(brokers[0], brokers[1], 5).unwrap();
        ov.link(brokers[1], brokers[2], 5).unwrap();
        let clients: Vec<ClientId> = brokers
            .iter()
            .map(|b| ov.attach_client(*b).unwrap())
            .collect();
        (ov, brokers, clients)
    }

    #[test]
    fn event_crosses_the_tree_to_remote_subscriber() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1);
        assert!(ov.take_delivered(c[0]).unwrap().is_empty());
        assert!(ov.take_delivered(c[1]).unwrap().is_empty());
    }

    #[test]
    fn local_delivery_is_immediate() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[0], Filter::topic("t")).unwrap();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        // No run_until_idle needed for same-broker delivery.
        assert_eq!(ov.take_delivered(c[0]).unwrap().len(), 1);
    }

    #[test]
    fn non_matching_events_are_not_forwarded() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        let before = ov.net_stats().messages;
        ov.publish(c[0], Event::topical("other", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.net_stats().messages, before);
        assert!(ov.take_delivered(c[2]).unwrap().is_empty());
    }

    #[test]
    fn unsubscribe_withdraws_interest() {
        let (mut ov, _b, c) = chain();
        let sub = ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.unsubscribe(sub).unwrap();
        ov.run_until_idle();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert!(ov.take_delivered(c[2]).unwrap().is_empty());
        assert_eq!(ov.routing_entries(), 0);
    }

    #[test]
    fn covering_prunes_advertisements() {
        let run = |covering: bool| -> (usize, u64) {
            let mut ov = Overlay::new(covering);
            let b0 = ov.add_broker();
            let b1 = ov.add_broker();
            ov.link(b0, b1, 1).unwrap();
            let c = ov.attach_client(b0).unwrap();
            // One wide filter plus many narrow ones it covers.
            ov.subscribe(c, Filter::new().and("x", Op::Gt, 0)).unwrap();
            for i in 1..20 {
                ov.subscribe(
                    c,
                    Filter::new().and("x", Op::Gt, 0).and("y", Op::Eq, i as i64),
                )
                .unwrap();
            }
            ov.run_until_idle();
            (ov.advertisement_count(), ov.net_stats().messages)
        };
        let (ads_cov, msgs_cov) = run(true);
        let (ads_flood, msgs_flood) = run(false);
        assert_eq!(ads_cov, 1, "only the covering filter is advertised");
        assert_eq!(ads_flood, 20);
        assert!(msgs_cov < msgs_flood);
    }

    #[test]
    fn covered_subscriber_still_receives_events() {
        // Covering must not lose deliveries: the covered subscription's
        // events still flow because the covering one forwards them.
        let mut ov = Overlay::new(true);
        let b0 = ov.add_broker();
        let b1 = ov.add_broker();
        ov.link(b0, b1, 1).unwrap();
        let wide = ov.attach_client(b0).unwrap();
        let narrow = ov.attach_client(b0).unwrap();
        let publisher = ov.attach_client(b1).unwrap();
        ov.subscribe(wide, Filter::new().and("x", Op::Gt, 0))
            .unwrap();
        ov.subscribe(narrow, Filter::new().and("x", Op::Gt, 5))
            .unwrap();
        ov.run_until_idle();
        ov.publish(publisher, Event::builder().attr("x", 10).build())
            .unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(wide).unwrap().len(), 1);
        assert_eq!(ov.take_delivered(narrow).unwrap().len(), 1);
    }

    #[test]
    fn unsubscribing_covering_filter_readvertises_covered() {
        let mut ov = Overlay::new(true);
        let b0 = ov.add_broker();
        let b1 = ov.add_broker();
        ov.link(b0, b1, 1).unwrap();
        let c0 = ov.attach_client(b0).unwrap();
        let c1 = ov.attach_client(b1).unwrap();
        let wide = ov.subscribe(c0, Filter::new().and("x", Op::Gt, 0)).unwrap();
        ov.subscribe(c0, Filter::new().and("x", Op::Gt, 5)).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.advertisement_count(), 1);
        ov.unsubscribe(wide).unwrap();
        ov.run_until_idle();
        // The narrow filter must now be advertised and still routable.
        assert_eq!(ov.advertisement_count(), 1);
        ov.publish(c1, Event::builder().attr("x", 10).build())
            .unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c0).unwrap().len(), 1);
    }

    #[test]
    fn cycle_links_are_rejected() {
        let mut ov = Overlay::new(true);
        let a = ov.add_broker();
        let b = ov.add_broker();
        let c = ov.add_broker();
        ov.link(a, b, 1).unwrap();
        ov.link(b, c, 1).unwrap();
        assert!(matches!(
            ov.link(a, c, 1),
            Err(OverlayError::WouldCreateCycle(_, _))
        ));
    }

    #[test]
    fn identical_filters_from_different_clients_both_deliver() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[0], Filter::topic("t")).unwrap();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.publish(c[1], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[0]).unwrap().len(), 1);
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1);
    }

    #[test]
    fn star_topology_fanout() {
        let mut ov = Overlay::new(true);
        let hub = ov.add_broker();
        let mut leaf_clients = Vec::new();
        for _ in 0..5 {
            let leaf = ov.add_broker();
            ov.link(hub, leaf, 2).unwrap();
            let c = ov.attach_client(leaf).unwrap();
            ov.subscribe(c, Filter::topic("t")).unwrap();
            leaf_clients.push(c);
        }
        let publisher = ov.attach_client(hub).unwrap();
        ov.run_until_idle();
        ov.publish(publisher, Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        for c in leaf_clients {
            assert_eq!(ov.take_delivered(c).unwrap().len(), 1);
        }
    }

    #[test]
    fn unknown_ids_error() {
        let mut ov = Overlay::new(true);
        assert!(matches!(
            ov.attach_client(NodeId(9)),
            Err(OverlayError::UnknownBroker(_))
        ));
        assert!(matches!(
            ov.subscribe(ClientId(9), Filter::new()),
            Err(OverlayError::UnknownClient(_))
        ));
        assert!(matches!(
            ov.publish(ClientId(9), Event::new()),
            Err(OverlayError::UnknownClient(_))
        ));
        assert!(matches!(
            ov.unsubscribe(GlobalSubId(9)),
            Err(OverlayError::UnknownClient(_))
        ));
    }

    #[test]
    fn deep_chain_propagation() {
        let mut ov = Overlay::new(true);
        let brokers: Vec<NodeId> = (0..8).map(|_| ov.add_broker()).collect();
        for w in brokers.windows(2) {
            ov.link(w[0], w[1], 3).unwrap();
        }
        let first = ov.attach_client(brokers[0]).unwrap();
        let last = ov.attach_client(brokers[7]).unwrap();
        ov.subscribe(last, Filter::topic("deep")).unwrap();
        ov.run_until_idle();
        ov.publish(first, Event::topical("deep", "x")).unwrap();
        ov.run_until_idle();
        let got = ov.take_delivered(last).unwrap();
        assert_eq!(got.len(), 1);
        // 7 hops * 3 latency each, at minimum.
        assert!(ov.now() >= 21);
    }

    // ------------------------------------------------------------------
    // Sans-io BrokerNode unit tests: the core driven entirely by hand,
    // with no transport at all.
    // ------------------------------------------------------------------

    fn published(event: Event) -> PublishedEvent {
        PublishedEvent {
            id: EventId(0),
            published_at: 0,
            event,
        }
    }

    #[test]
    fn node_forwards_events_only_toward_advertised_interest() {
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let mut hub = BrokerNode::new(true);
        hub.add_neighbor(b);
        hub.add_neighbor(c);
        // Neighbor b advertises interest in topic t; c stays silent.
        let out = hub.handle(
            b,
            PeerMsg::SubFwd {
                sub: GlobalSubId(1),
                filter: Filter::topic("t"),
            },
        );
        // The advertisement is re-advertised to c (not back to b).
        assert!(out
            .messages
            .iter()
            .all(|(dst, msg)| *dst == c && matches!(msg, PeerMsg::SubFwd { .. })));
        let out = hub.publish_local(published(Event::topical("t", "x")));
        assert_eq!(out.deliveries.len(), 0);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].0, b);
        let _ = a;
    }

    #[test]
    fn late_neighbor_receives_existing_advertisements() {
        let b = NodeId(7);
        let mut node = BrokerNode::new(true);
        node.subscribe_local(GlobalSubId(0), ClientId(0), Filter::topic("t"));
        // No neighbors yet, so nothing was advertised. Linking later must
        // bring the new neighbor up to date (a TCP peer can join at any
        // time).
        let sync = node.add_neighbor(b);
        assert_eq!(sync.len(), 1);
        assert!(matches!(sync[0], (n, PeerMsg::SubFwd { .. }) if n == b));
    }

    #[test]
    fn removing_neighbor_forgets_its_subscriptions() {
        let (b, c) = (NodeId(1), NodeId(2));
        let mut node = BrokerNode::new(true);
        node.add_neighbor(b);
        node.add_neighbor(c);
        node.handle(
            b,
            PeerMsg::SubFwd {
                sub: GlobalSubId(5),
                filter: Filter::topic("t"),
            },
        );
        assert_eq!(node.routing_entries(), 1);
        let msgs = node.remove_neighbor(b);
        assert_eq!(node.routing_entries(), 0);
        assert_eq!(node.neighbors(), &[c]);
        // The withdrawn interest is un-advertised toward c.
        assert!(msgs
            .iter()
            .any(|(dst, msg)| *dst == c && matches!(msg, PeerMsg::UnsubFwd { .. })));
    }

    #[test]
    fn hop_limit_stops_runaway_events() {
        let b = NodeId(1);
        let mut node = BrokerNode::new(true);
        node.add_neighbor(b);
        node.subscribe_local(GlobalSubId(0), ClientId(0), Filter::topic("t"));
        let msg = PeerMsg::EventFwd {
            event: published(Event::topical("t", "x")),
            hops: MAX_HOPS,
        };
        let out = node.handle(b, msg);
        assert!(out.deliveries.is_empty(), "event at hop limit is dropped");
        assert!(out.messages.is_empty());
    }

    #[test]
    fn cycle_echoed_subscription_does_not_hijack_origin() {
        // In a (misconfigured) cyclic federation, a node's own SubFwd can
        // loop back to it. Adopting it would overwrite the Local origin
        // and later withdraw the client's live subscription.
        let b = NodeId(1);
        let mut node = BrokerNode::new(true);
        node.add_neighbor(b);
        node.subscribe_local(GlobalSubId(7), ClientId(0), Filter::topic("t"));
        let out = node.handle(
            b,
            PeerMsg::SubFwd {
                sub: GlobalSubId(7),
                filter: Filter::topic("t"),
            },
        );
        assert!(out.messages.is_empty(), "cycle echo is dropped");
        // The local subscription still routes.
        let delivered = node.handle(
            b,
            PeerMsg::EventFwd {
                event: published(Event::topical("t", "x")),
                hops: 0,
            },
        );
        assert_eq!(delivered.deliveries.len(), 1);
    }

    #[test]
    fn same_neighbor_filter_update_propagates_onward() {
        // A link re-sync may re-advertise a subscription with a changed
        // filter; the update must be forwarded to other neighbors, not
        // absorbed (the advertisement diff is keyed by id *and* filter).
        let (a, b) = (NodeId(1), NodeId(2));
        let mut node = BrokerNode::new(true);
        node.add_neighbor(a);
        node.add_neighbor(b);
        node.handle(
            a,
            PeerMsg::SubFwd {
                sub: GlobalSubId(4),
                filter: Filter::topic("v1"),
            },
        );
        let out = node.handle(
            a,
            PeerMsg::SubFwd {
                sub: GlobalSubId(4),
                filter: Filter::topic("v2"),
            },
        );
        assert!(
            out.messages.iter().any(|(dst, msg)| *dst == b
                && matches!(msg, PeerMsg::SubFwd { sub, filter }
                    if *sub == GlobalSubId(4) && *filter == Filter::topic("v2"))),
            "updated filter re-advertised toward b: {:?}",
            out.messages
        );
    }

    #[test]
    fn hop_count_increments_on_forward() {
        let (b, c) = (NodeId(1), NodeId(2));
        let mut node = BrokerNode::new(true);
        node.add_neighbor(b);
        node.add_neighbor(c);
        node.handle(
            c,
            PeerMsg::SubFwd {
                sub: GlobalSubId(9),
                filter: Filter::topic("t"),
            },
        );
        let out = node.handle(
            b,
            PeerMsg::EventFwd {
                event: published(Event::topical("t", "x")),
                hops: 3,
            },
        );
        assert!(matches!(
            out.messages.as_slice(),
            [(n, PeerMsg::EventFwd { hops: 4, .. })] if *n == c
        ));
    }

    // ------------------------------------------------------------------
    // Mesh overlay: cyclic topologies, link loss, failover.
    // ------------------------------------------------------------------

    /// 3-broker ring b0 - b1 - b2 - b0 with one client per broker.
    fn mesh_ring() -> (Overlay, Vec<NodeId>, Vec<ClientId>) {
        let mut ov = Overlay::new_mesh();
        let brokers: Vec<NodeId> = (0..3).map(|_| ov.add_broker()).collect();
        ov.link(brokers[0], brokers[1], 5).unwrap();
        ov.link(brokers[1], brokers[2], 5).unwrap();
        ov.link(brokers[2], brokers[0], 5).unwrap();
        let clients: Vec<ClientId> = brokers
            .iter()
            .map(|b| ov.attach_client(*b).unwrap())
            .collect();
        (ov, brokers, clients)
    }

    #[test]
    fn mesh_accepts_cyclic_links() {
        let (ov, _b, _c) = mesh_ring();
        assert!(ov.is_mesh());
    }

    #[test]
    fn mesh_ring_delivers_exactly_once_and_suppresses_duplicates() {
        let (mut ov, _b, c) = mesh_ring();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        // The subscriber's broker holds an alternate route somewhere in
        // the ring (two disjoint paths from any publisher).
        assert!(ov.mesh_alternates() > 0, "ring yields redundant routes");
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1, "exactly once");
        assert!(
            ov.mesh_duplicates_suppressed() > 0,
            "the redundant copy was suppressed, not delivered"
        );
    }

    #[test]
    fn mesh_link_kill_fails_over_to_alternate_path() {
        let (mut ov, b, c) = mesh_ring();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        // Kill the direct b0-b2 link; the b0-b1-b2 path must take over.
        ov.unlink(b[0], b[2]).unwrap();
        ov.run_until_idle();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1);
        assert!(ov.mesh_reroutes() > 0, "losing the fast path is a reroute");
    }

    #[test]
    fn mesh_unsubscribe_withdraws_all_routes() {
        let (mut ov, _b, c) = mesh_ring();
        let sub = ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        assert!(ov.routing_entries() > 0);
        ov.unsubscribe(sub).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.routing_entries(), 0);
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert!(ov.take_delivered(c[2]).unwrap().is_empty());
    }

    #[test]
    fn mesh_crash_reroutes_around_dead_broker() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Subscriber at 3, publisher at 0.
        let mut ov = Overlay::new_mesh();
        let b: Vec<NodeId> = (0..4).map(|_| ov.add_broker()).collect();
        ov.link(b[0], b[1], 1).unwrap();
        ov.link(b[0], b[2], 1).unwrap();
        ov.link(b[1], b[3], 1).unwrap();
        ov.link(b[2], b[3], 1).unwrap();
        let publisher = ov.attach_client(b[0]).unwrap();
        let subscriber = ov.attach_client(b[3]).unwrap();
        ov.subscribe(subscriber, Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.crash_broker(b[1]).unwrap();
        ov.run_until_idle();
        ov.publish(publisher, Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(
            ov.take_delivered(subscriber).unwrap().len(),
            1,
            "delivery survives the crash via 0-2-3"
        );
        assert_eq!(ov.broker_count(), 3);
    }

    #[test]
    fn mesh_refresh_is_idempotent_when_converged() {
        let (mut ov, _b, c) = mesh_ring();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        let entries = ov.routing_entries();
        let ads = ov.advertisement_count();
        ov.refresh_all();
        ov.run_until_idle();
        assert_eq!(ov.routing_entries(), entries);
        assert_eq!(ov.advertisement_count(), ads);
    }

    #[test]
    fn tree_overlay_rejects_mesh_churn_operations() {
        let (mut ov, b, _c) = chain();
        assert!(matches!(
            ov.unlink(b[0], b[1]),
            Err(OverlayError::RequiresMesh)
        ));
        assert!(matches!(
            ov.crash_broker(b[0]),
            Err(OverlayError::RequiresMesh)
        ));
    }

    #[test]
    fn node_answers_ping_with_pong() {
        let b = NodeId(1);
        let mut node = BrokerNode::new(true);
        node.add_neighbor(b);
        let out = node.handle(b, PeerMsg::Ping { nonce: 42 });
        assert!(matches!(
            out.messages.as_slice(),
            [(n, PeerMsg::Pong { nonce: 42 })] if *n == b
        ));
        assert!(node
            .handle(b, PeerMsg::Pong { nonce: 42 })
            .messages
            .is_empty());
    }

    #[test]
    fn peer_msg_round_trips_through_serde() {
        for msg in [
            PeerMsg::SubFwd {
                sub: GlobalSubId(3),
                filter: Filter::new().and("x", Op::Gt, 1),
            },
            PeerMsg::UnsubFwd {
                sub: GlobalSubId(3),
            },
            PeerMsg::EventFwd {
                event: published(Event::topical("t", "x")),
                hops: 2,
            },
            PeerMsg::SubAdv {
                sub: GlobalSubId(4),
                filter: Filter::topic("t"),
                path: vec![3, 1, 2],
            },
            PeerMsg::Ping { nonce: 7 },
            PeerMsg::Pong { nonce: 7 },
        ] {
            let json = serde_json::to_string(&msg).unwrap();
            let back: PeerMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(back, msg);
        }
    }
}
