//! A distributed broker overlay with content-based routing.
//!
//! The Reef paper's substrate box (Figures 1 and 2) is a wide-area
//! publish-subscribe system in the tradition of Siena and Gryphon (§5.3).
//! This module implements that substrate: a *tree* of brokers connected by
//! simulated links ([`crate::net::SimNet`]), with
//!
//! * **subscription forwarding** — a subscription placed at one broker is
//!   advertised through the tree so events published anywhere reach it;
//! * **covering-based pruning** — a broker does not advertise a
//!   subscription to a neighbor when an already-advertised subscription
//!   covers it ([`Filter::covers`]), shrinking routing tables and control
//!   traffic (ablation in bench **B2**);
//! * **reverse-path event routing** — an event is forwarded only on links
//!   from which a matching interest was advertised.
//!
//! The overlay is single-threaded and deterministic: operations enqueue
//! messages, and [`Overlay::run_until_idle`] drains them in virtual-time
//! order.

use crate::error::OverlayError;
use crate::event::{Event, EventId, PublishedEvent};
use crate::filter::Filter;
use crate::matcher::{IndexMatcher, MatchEngine, SubscriptionId};
use crate::net::{NetStats, NodeId, SimNet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Identifier of a client attached to some broker of the overlay.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Overlay-wide subscription identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GlobalSubId(pub u64);

impl fmt::Display for GlobalSubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gsub#{}", self.0)
    }
}

/// Where a broker learned about a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubOrigin {
    /// Placed by a client attached to this broker.
    Local(ClientId),
    /// Advertised by a neighboring broker.
    Neighbor(NodeId),
}

/// Messages exchanged between brokers.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::enum_variant_names)]
enum OverlayMessage {
    /// Advertise a subscription to a neighbor.
    SubFwd { sub: GlobalSubId, filter: Filter },
    /// Withdraw a previously advertised subscription.
    UnsubFwd { sub: GlobalSubId },
    /// Forward a published event along the tree.
    EventFwd { event: PublishedEvent },
}

impl OverlayMessage {
    fn wire_size(&self) -> usize {
        match self {
            OverlayMessage::SubFwd { filter, .. } => filter.wire_size() + 16,
            OverlayMessage::UnsubFwd { .. } => 16,
            OverlayMessage::EventFwd { event } => event.event.wire_size() + 24,
        }
    }
}

/// Per-broker state.
struct BrokerNode {
    neighbors: Vec<NodeId>,
    /// Everything this broker knows: local subs and neighbor advertisements.
    matcher: IndexMatcher,
    origin: HashMap<GlobalSubId, SubOrigin>,
    filters: HashMap<GlobalSubId, Filter>,
    /// What this broker has advertised to each neighbor.
    advertised: HashMap<NodeId, BTreeMap<GlobalSubId, Filter>>,
}

impl BrokerNode {
    fn new() -> Self {
        BrokerNode {
            neighbors: Vec::new(),
            matcher: IndexMatcher::new(),
            origin: HashMap::new(),
            filters: HashMap::new(),
            advertised: HashMap::new(),
        }
    }

    fn insert_sub(&mut self, sub: GlobalSubId, origin: SubOrigin, filter: Filter) {
        self.matcher.insert(SubscriptionId(sub.0), filter.clone());
        self.origin.insert(sub, origin);
        self.filters.insert(sub, filter);
    }

    fn remove_sub(&mut self, sub: GlobalSubId) -> bool {
        let existed = self.matcher.remove(SubscriptionId(sub.0)).is_some();
        self.origin.remove(&sub);
        self.filters.remove(&sub);
        existed
    }

    /// The set of subscriptions this broker *should* be advertising to
    /// `neighbor`, given its current knowledge.
    ///
    /// Without covering: every known subscription not originating at that
    /// neighbor. With covering: only the maximal ones — a subscription is
    /// dropped when another candidate strictly covers it, or when an
    /// equivalent candidate with a smaller id exists (canonical
    /// representative of an equivalence class).
    fn desired_ads(&self, neighbor: NodeId, covering: bool) -> BTreeMap<GlobalSubId, Filter> {
        let candidates: BTreeMap<GlobalSubId, &Filter> = self
            .filters
            .iter()
            .filter(|(sub, _)| match self.origin.get(sub) {
                Some(SubOrigin::Neighbor(n)) => *n != neighbor,
                Some(SubOrigin::Local(_)) => true,
                None => false,
            })
            .map(|(sub, f)| (*sub, f))
            .collect();
        if !covering {
            return candidates
                .into_iter()
                .map(|(s, f)| (s, f.clone()))
                .collect();
        }
        let mut out = BTreeMap::new();
        'outer: for (&sub, &filter) in &candidates {
            for (&other_sub, &other_filter) in &candidates {
                if other_sub == sub {
                    continue;
                }
                if other_filter.covers(filter) {
                    let equivalent = filter.covers(other_filter);
                    // Strictly covered, or covered by an equivalent filter
                    // with a smaller id (the canonical representative).
                    if !equivalent || other_sub < sub {
                        continue 'outer;
                    }
                }
            }
            out.insert(sub, filter.clone());
        }
        out
    }
}

/// Per-client state: attachment point and mailbox.
struct ClientState {
    broker: NodeId,
    mailbox: Vec<PublishedEvent>,
    /// Live subscriptions owned by this client.
    subs: HashSet<GlobalSubId>,
}

/// A deterministic multi-broker publish-subscribe overlay.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Overlay, Event, Filter};
///
/// let mut overlay = Overlay::new(true);
/// let b1 = overlay.add_broker();
/// let b2 = overlay.add_broker();
/// overlay.link(b1, b2, 10)?;
/// let alice = overlay.attach_client(b1)?;
/// let bob = overlay.attach_client(b2)?;
/// overlay.subscribe(bob, Filter::topic("news"))?;
/// overlay.run_until_idle();
/// overlay.publish(alice, Event::topical("news", "hi"))?;
/// overlay.run_until_idle();
/// assert_eq!(overlay.take_delivered(bob)?.len(), 1);
/// # Ok::<(), reef_pubsub::OverlayError>(())
/// ```
pub struct Overlay {
    net: SimNet<OverlayMessage>,
    brokers: HashMap<NodeId, BrokerNode>,
    clients: HashMap<ClientId, ClientState>,
    covering: bool,
    next_client: u64,
    next_sub: u64,
    next_event: u64,
    /// Union-find over broker ids for cycle prevention.
    parent: HashMap<NodeId, NodeId>,
}

impl fmt::Debug for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Overlay")
            .field("brokers", &self.brokers.len())
            .field("clients", &self.clients.len())
            .field("covering", &self.covering)
            .finish()
    }
}

impl Overlay {
    /// Create an empty overlay. `covering` enables covering-based
    /// advertisement pruning.
    pub fn new(covering: bool) -> Self {
        Overlay {
            net: SimNet::new(),
            brokers: HashMap::new(),
            clients: HashMap::new(),
            covering,
            next_client: 0,
            next_sub: 0,
            next_event: 0,
            parent: HashMap::new(),
        }
    }

    /// Add a broker node.
    pub fn add_broker(&mut self) -> NodeId {
        let id = self.net.add_node();
        self.brokers.insert(id, BrokerNode::new());
        self.parent.insert(id, id);
        id
    }

    fn find_root(&mut self, mut x: NodeId) -> NodeId {
        while self.parent[&x] != x {
            let grand = self.parent[&self.parent[&x]];
            self.parent.insert(x, grand);
            x = grand;
        }
        x
    }

    /// Connect two brokers with the given one-way latency.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownBroker`] if either endpoint does not exist.
    /// * [`OverlayError::WouldCreateCycle`] if the link would close a loop
    ///   (the overlay must remain a tree for reverse-path routing to be
    ///   duplicate-free).
    pub fn link(&mut self, a: NodeId, b: NodeId, latency: u64) -> Result<(), OverlayError> {
        if !self.brokers.contains_key(&a) {
            return Err(OverlayError::UnknownBroker(a));
        }
        if !self.brokers.contains_key(&b) {
            return Err(OverlayError::UnknownBroker(b));
        }
        let (ra, rb) = (self.find_root(a), self.find_root(b));
        if ra == rb {
            return Err(OverlayError::WouldCreateCycle(a, b));
        }
        self.parent.insert(ra, rb);
        self.net.connect(a, b, latency);
        self.brokers.get_mut(&a).expect("checked").neighbors.push(b);
        self.brokers.get_mut(&b).expect("checked").neighbors.push(a);
        Ok(())
    }

    /// Attach a client to a broker.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownBroker`] if the broker does not exist.
    pub fn attach_client(&mut self, broker: NodeId) -> Result<ClientId, OverlayError> {
        if !self.brokers.contains_key(&broker) {
            return Err(OverlayError::UnknownBroker(broker));
        }
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.clients.insert(
            id,
            ClientState {
                broker,
                mailbox: Vec::new(),
                subs: HashSet::new(),
            },
        );
        Ok(id)
    }

    /// Place a subscription for `client`. Propagation messages are queued;
    /// call [`Overlay::run_until_idle`] to flush them through the tree.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn subscribe(
        &mut self,
        client: ClientId,
        filter: Filter,
    ) -> Result<GlobalSubId, OverlayError> {
        let broker_id = self
            .clients
            .get(&client)
            .ok_or(OverlayError::UnknownClient(client))?
            .broker;
        let sub = GlobalSubId(self.next_sub);
        self.next_sub += 1;
        let broker = self
            .brokers
            .get_mut(&broker_id)
            .expect("client broker exists");
        broker.insert_sub(sub, SubOrigin::Local(client), filter);
        self.clients
            .get_mut(&client)
            .expect("checked")
            .subs
            .insert(sub);
        self.sync_advertisements(broker_id);
        Ok(sub)
    }

    /// Withdraw a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if no client owns `sub`.
    pub fn unsubscribe(&mut self, sub: GlobalSubId) -> Result<(), OverlayError> {
        let owner = self
            .clients
            .iter()
            .find(|(_, c)| c.subs.contains(&sub))
            .map(|(id, c)| (*id, c.broker));
        let (client, broker_id) = owner.ok_or(OverlayError::UnknownClient(ClientId(u64::MAX)))?;
        self.clients
            .get_mut(&client)
            .expect("checked")
            .subs
            .remove(&sub);
        let broker = self
            .brokers
            .get_mut(&broker_id)
            .expect("client broker exists");
        broker.remove_sub(sub);
        self.sync_advertisements(broker_id);
        Ok(())
    }

    /// Publish an event from `client`. Local deliveries happen immediately;
    /// remote deliveries after [`Overlay::run_until_idle`].
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn publish(&mut self, client: ClientId, event: Event) -> Result<EventId, OverlayError> {
        let broker_id = self
            .clients
            .get(&client)
            .ok_or(OverlayError::UnknownClient(client))?
            .broker;
        let id = EventId(self.next_event);
        self.next_event += 1;
        let published = PublishedEvent {
            id,
            published_at: self.net.now(),
            event,
        };
        self.route_event(broker_id, None, published);
        Ok(id)
    }

    /// Deliver locally and forward along interested links.
    fn route_event(&mut self, at: NodeId, from: Option<NodeId>, event: PublishedEvent) {
        let broker = self.brokers.get_mut(&at).expect("broker exists");
        let matched = broker.matcher.matches(&event.event);
        let mut local: Vec<ClientId> = Vec::new();
        let mut forward: Vec<NodeId> = Vec::new();
        for m in matched {
            match broker.origin.get(&GlobalSubId(m.0)) {
                Some(SubOrigin::Local(c)) => local.push(*c),
                Some(SubOrigin::Neighbor(n)) if Some(*n) != from && !forward.contains(n) => {
                    forward.push(*n);
                }
                Some(SubOrigin::Neighbor(_)) | None => {}
            }
        }
        forward.sort_unstable_by_key(|n| n.0);
        for c in local {
            if let Some(state) = self.clients.get_mut(&c) {
                state.mailbox.push(event.clone());
            }
        }
        for n in forward {
            let msg = OverlayMessage::EventFwd {
                event: event.clone(),
            };
            let size = msg.wire_size();
            self.net.send(at, n, msg, size).expect("linked neighbor");
        }
    }

    /// Diff desired vs actual advertisements of `broker_id` toward each
    /// neighbor and queue the control messages.
    fn sync_advertisements(&mut self, broker_id: NodeId) {
        let covering = self.covering;
        let broker = self.brokers.get_mut(&broker_id).expect("broker exists");
        let mut to_send: Vec<(NodeId, OverlayMessage)> = Vec::new();
        let neighbors = broker.neighbors.clone();
        for n in neighbors {
            let desired = broker.desired_ads(n, covering);
            let current = broker.advertised.entry(n).or_default();
            let mut removals: Vec<GlobalSubId> = Vec::new();
            for sub in current.keys() {
                if !desired.contains_key(sub) {
                    removals.push(*sub);
                }
            }
            for sub in removals {
                current.remove(&sub);
                to_send.push((n, OverlayMessage::UnsubFwd { sub }));
            }
            for (sub, filter) in &desired {
                if !current.contains_key(sub) {
                    current.insert(*sub, filter.clone());
                    to_send.push((
                        n,
                        OverlayMessage::SubFwd {
                            sub: *sub,
                            filter: filter.clone(),
                        },
                    ));
                }
            }
        }
        for (n, msg) in to_send {
            let size = msg.wire_size();
            self.net
                .send(broker_id, n, msg, size)
                .expect("linked neighbor");
        }
    }

    /// Process queued messages until the network is idle. Returns the number
    /// of messages processed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut processed = 0;
        while let Some(env) = self.net.recv_next() {
            processed += 1;
            match env.payload {
                OverlayMessage::SubFwd { sub, filter } => {
                    let broker = self.brokers.get_mut(&env.dst).expect("broker exists");
                    broker.insert_sub(sub, SubOrigin::Neighbor(env.src), filter);
                    self.sync_advertisements(env.dst);
                }
                OverlayMessage::UnsubFwd { sub } => {
                    let broker = self.brokers.get_mut(&env.dst).expect("broker exists");
                    if broker.remove_sub(sub) {
                        self.sync_advertisements(env.dst);
                    }
                }
                OverlayMessage::EventFwd { event } => {
                    self.route_event(env.dst, Some(env.src), event);
                }
            }
        }
        processed
    }

    /// Take all events delivered to `client` so far.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownClient`] if the client is not
    /// attached.
    pub fn take_delivered(
        &mut self,
        client: ClientId,
    ) -> Result<Vec<PublishedEvent>, OverlayError> {
        let state = self
            .clients
            .get_mut(&client)
            .ok_or(OverlayError::UnknownClient(client))?;
        Ok(std::mem::take(&mut state.mailbox))
    }

    /// Aggregate network statistics (messages, bytes, in-flight).
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Total routing-table entries across all brokers (known subscriptions,
    /// local + remote). The covering ablation compares this with covering
    /// on and off.
    pub fn routing_entries(&self) -> usize {
        self.brokers.values().map(|b| b.matcher.len()).sum()
    }

    /// Total advertisements currently held toward neighbors.
    pub fn advertisement_count(&self) -> usize {
        self.brokers
            .values()
            .flat_map(|b| b.advertised.values())
            .map(BTreeMap::len)
            .sum()
    }

    /// Current virtual time of the underlying network.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Op;

    /// Build a 3-broker chain b0 - b1 - b2 with one client per broker.
    fn chain() -> (Overlay, Vec<NodeId>, Vec<ClientId>) {
        let mut ov = Overlay::new(true);
        let brokers: Vec<NodeId> = (0..3).map(|_| ov.add_broker()).collect();
        ov.link(brokers[0], brokers[1], 5).unwrap();
        ov.link(brokers[1], brokers[2], 5).unwrap();
        let clients: Vec<ClientId> = brokers
            .iter()
            .map(|b| ov.attach_client(*b).unwrap())
            .collect();
        (ov, brokers, clients)
    }

    #[test]
    fn event_crosses_the_tree_to_remote_subscriber() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1);
        assert!(ov.take_delivered(c[0]).unwrap().is_empty());
        assert!(ov.take_delivered(c[1]).unwrap().is_empty());
    }

    #[test]
    fn local_delivery_is_immediate() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[0], Filter::topic("t")).unwrap();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        // No run_until_idle needed for same-broker delivery.
        assert_eq!(ov.take_delivered(c[0]).unwrap().len(), 1);
    }

    #[test]
    fn non_matching_events_are_not_forwarded() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        let before = ov.net_stats().messages;
        ov.publish(c[0], Event::topical("other", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.net_stats().messages, before);
        assert!(ov.take_delivered(c[2]).unwrap().is_empty());
    }

    #[test]
    fn unsubscribe_withdraws_interest() {
        let (mut ov, _b, c) = chain();
        let sub = ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.unsubscribe(sub).unwrap();
        ov.run_until_idle();
        ov.publish(c[0], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert!(ov.take_delivered(c[2]).unwrap().is_empty());
        assert_eq!(ov.routing_entries(), 0);
    }

    #[test]
    fn covering_prunes_advertisements() {
        let run = |covering: bool| -> (usize, u64) {
            let mut ov = Overlay::new(covering);
            let b0 = ov.add_broker();
            let b1 = ov.add_broker();
            ov.link(b0, b1, 1).unwrap();
            let c = ov.attach_client(b0).unwrap();
            // One wide filter plus many narrow ones it covers.
            ov.subscribe(c, Filter::new().and("x", Op::Gt, 0)).unwrap();
            for i in 1..20 {
                ov.subscribe(
                    c,
                    Filter::new().and("x", Op::Gt, 0).and("y", Op::Eq, i as i64),
                )
                .unwrap();
            }
            ov.run_until_idle();
            (ov.advertisement_count(), ov.net_stats().messages)
        };
        let (ads_cov, msgs_cov) = run(true);
        let (ads_flood, msgs_flood) = run(false);
        assert_eq!(ads_cov, 1, "only the covering filter is advertised");
        assert_eq!(ads_flood, 20);
        assert!(msgs_cov < msgs_flood);
    }

    #[test]
    fn covered_subscriber_still_receives_events() {
        // Covering must not lose deliveries: the covered subscription's
        // events still flow because the covering one forwards them.
        let mut ov = Overlay::new(true);
        let b0 = ov.add_broker();
        let b1 = ov.add_broker();
        ov.link(b0, b1, 1).unwrap();
        let wide = ov.attach_client(b0).unwrap();
        let narrow = ov.attach_client(b0).unwrap();
        let publisher = ov.attach_client(b1).unwrap();
        ov.subscribe(wide, Filter::new().and("x", Op::Gt, 0))
            .unwrap();
        ov.subscribe(narrow, Filter::new().and("x", Op::Gt, 5))
            .unwrap();
        ov.run_until_idle();
        ov.publish(publisher, Event::builder().attr("x", 10).build())
            .unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(wide).unwrap().len(), 1);
        assert_eq!(ov.take_delivered(narrow).unwrap().len(), 1);
    }

    #[test]
    fn unsubscribing_covering_filter_readvertises_covered() {
        let mut ov = Overlay::new(true);
        let b0 = ov.add_broker();
        let b1 = ov.add_broker();
        ov.link(b0, b1, 1).unwrap();
        let c0 = ov.attach_client(b0).unwrap();
        let c1 = ov.attach_client(b1).unwrap();
        let wide = ov.subscribe(c0, Filter::new().and("x", Op::Gt, 0)).unwrap();
        ov.subscribe(c0, Filter::new().and("x", Op::Gt, 5)).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.advertisement_count(), 1);
        ov.unsubscribe(wide).unwrap();
        ov.run_until_idle();
        // The narrow filter must now be advertised and still routable.
        assert_eq!(ov.advertisement_count(), 1);
        ov.publish(c1, Event::builder().attr("x", 10).build())
            .unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c0).unwrap().len(), 1);
    }

    #[test]
    fn cycle_links_are_rejected() {
        let mut ov = Overlay::new(true);
        let a = ov.add_broker();
        let b = ov.add_broker();
        let c = ov.add_broker();
        ov.link(a, b, 1).unwrap();
        ov.link(b, c, 1).unwrap();
        assert!(matches!(
            ov.link(a, c, 1),
            Err(OverlayError::WouldCreateCycle(_, _))
        ));
    }

    #[test]
    fn identical_filters_from_different_clients_both_deliver() {
        let (mut ov, _b, c) = chain();
        ov.subscribe(c[0], Filter::topic("t")).unwrap();
        ov.subscribe(c[2], Filter::topic("t")).unwrap();
        ov.run_until_idle();
        ov.publish(c[1], Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        assert_eq!(ov.take_delivered(c[0]).unwrap().len(), 1);
        assert_eq!(ov.take_delivered(c[2]).unwrap().len(), 1);
    }

    #[test]
    fn star_topology_fanout() {
        let mut ov = Overlay::new(true);
        let hub = ov.add_broker();
        let mut leaf_clients = Vec::new();
        for _ in 0..5 {
            let leaf = ov.add_broker();
            ov.link(hub, leaf, 2).unwrap();
            let c = ov.attach_client(leaf).unwrap();
            ov.subscribe(c, Filter::topic("t")).unwrap();
            leaf_clients.push(c);
        }
        let publisher = ov.attach_client(hub).unwrap();
        ov.run_until_idle();
        ov.publish(publisher, Event::topical("t", "x")).unwrap();
        ov.run_until_idle();
        for c in leaf_clients {
            assert_eq!(ov.take_delivered(c).unwrap().len(), 1);
        }
    }

    #[test]
    fn unknown_ids_error() {
        let mut ov = Overlay::new(true);
        assert!(matches!(
            ov.attach_client(NodeId(9)),
            Err(OverlayError::UnknownBroker(_))
        ));
        assert!(matches!(
            ov.subscribe(ClientId(9), Filter::new()),
            Err(OverlayError::UnknownClient(_))
        ));
        assert!(matches!(
            ov.publish(ClientId(9), Event::new()),
            Err(OverlayError::UnknownClient(_))
        ));
        assert!(matches!(
            ov.unsubscribe(GlobalSubId(9)),
            Err(OverlayError::UnknownClient(_))
        ));
    }

    #[test]
    fn deep_chain_propagation() {
        let mut ov = Overlay::new(true);
        let brokers: Vec<NodeId> = (0..8).map(|_| ov.add_broker()).collect();
        for w in brokers.windows(2) {
            ov.link(w[0], w[1], 3).unwrap();
        }
        let first = ov.attach_client(brokers[0]).unwrap();
        let last = ov.attach_client(brokers[7]).unwrap();
        ov.subscribe(last, Filter::topic("deep")).unwrap();
        ov.run_until_idle();
        ov.publish(first, Event::topical("deep", "x")).unwrap();
        ov.run_until_idle();
        let got = ov.take_delivered(last).unwrap();
        assert_eq!(got.len(), 1);
        // 7 hops * 3 latency each, at minimum.
        assert!(ov.now() >= 21);
    }
}
