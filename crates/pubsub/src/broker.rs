//! A single-node publish-subscribe broker.
//!
//! The broker is the "publish-subscribe substrate" box of the paper's
//! Figures 1 and 2, in its local form: subscribers register, place
//! subscriptions (step 3 in Figure 1), and receive matching events on their
//! delivery queues (step 4). The multi-broker form lives in
//! [`crate::overlay`].
//!
//! The broker is thread-safe: `publish` takes `&self`, so producers on
//! multiple threads can publish concurrently while subscribers drain their
//! queues through [`SubscriberHandle`]s (crossbeam channels).
//!
//! # Zero-copy fan-out
//!
//! A published event is wrapped in one [`Arc`] and every matching
//! subscriber queue receives a clone of the *pointer*, not of the event:
//! fan-out to a thousand subscribers costs a thousand reference-count
//! bumps instead of a thousand deep copies of the attribute map.
//! Networked delivery pumps encode frames straight from the shared
//! borrow.
//!
//! # Read-mostly subscription index
//!
//! Matching never takes the broker's write lock. Writers maintain the
//! master state under `inner`'s write lock and *publish* an immutable
//! `IndexSnapshot` (swap-on-write, epoch-style): an `Arc` to an indexed
//! base plus a bounded delta of recent ops. `publish`/`deliver` clone
//! that `Arc` out of a momentary read lock and match against it, so a
//! publish storm proceeds at full speed while subscribe/unsubscribe churn
//! swaps snapshots underneath it. Every `DELTA_MATERIALIZE` ops a writer
//! pays the O(subscriptions) cost of materializing a fresh base; between
//! materializations writers only clone the bounded delta.

use crate::error::BrokerError;
use crate::event::{Event, EventId, PublishedEvent};
use crate::filter::Filter;
use crate::matcher::{IndexMatcher, MatchEngine, SubscriptionId};
use crate::schema::Schema;
use crate::stats::{BrokerStats, BrokerStatsSnapshot};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default upper bound on how long a publish waits for queue space under
/// [`OverflowPolicy::Block`] before giving the event up as dropped.
pub const DEFAULT_BLOCK_TIMEOUT: Duration = Duration::from_secs(1);

/// Observer of successful deliveries, registered with
/// [`Broker::set_delivery_notifier`].
///
/// Readiness-driven transports (e.g. `reef-wire`'s epoll event loop)
/// register one so a publish executed on *any* thread can wake the I/O
/// loop that drains the target subscriber's queue. The hook is called
/// after the event is on the queue, outside the broker's lock, at most
/// once per subscriber per publish.
pub trait DeliveryNotifier: Send + Sync {
    /// One or more events were queued for `subscriber`.
    fn notify(&self, subscriber: SubscriberId);

    /// One publish queued events for every subscriber in `subscribers`
    /// (each listed at most once). Sharded transports override this to
    /// group the wakeups per event loop — one eventfd write per shard
    /// instead of one per subscriber.
    fn notify_batch(&self, subscribers: &[SubscriberId]) {
        for subscriber in subscribers {
            self.notify(*subscriber);
        }
    }
}

/// Identifier of a subscriber registered with a [`Broker`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SubscriberId(pub u64);

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subr#{}", self.0)
    }
}

/// What to do when a bounded delivery queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the new event for that subscriber and count it in the stats
    /// (`drop-new`).
    #[default]
    DropAndCount,
    /// Evict the oldest queued event to make room for the new one
    /// (`drop-old`). The eviction is counted as a drop. Under this policy
    /// the broker keeps a handle on each queue's receiving side, so a
    /// subscriber that silently drops its [`SubscriberHandle`] is not
    /// detected until it deregisters.
    DropOldest,
    /// Block the publisher until space frees up, bounded by the broker's
    /// block timeout ([`BrokerBuilder::block_timeout`]); on timeout the
    /// event is dropped and counted. This is real backpressure: one slow
    /// subscriber throttles publishers.
    Block,
    /// Abort the publish with [`BrokerError::QueueFull`]. Deliveries already
    /// made to other subscribers are not rolled back.
    Error,
}

impl OverflowPolicy {
    /// Parse the CLI spelling used by `reefd --overflow`
    /// (`drop-new` | `drop-old` | `block` | `error`).
    pub fn parse(s: &str) -> Option<OverflowPolicy> {
        match s {
            "drop-new" => Some(OverflowPolicy::DropAndCount),
            "drop-old" => Some(OverflowPolicy::DropOldest),
            "block" => Some(OverflowPolicy::Block),
            "error" => Some(OverflowPolicy::Error),
            _ => None,
        }
    }
}

/// Outcome of a successful publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Identifier assigned to the event.
    pub id: EventId,
    /// Broker-local logical timestamp assigned to the event.
    pub published_at: u64,
    /// Number of subscribers the event was delivered to.
    pub delivered: usize,
    /// Number of subscribers that lost the event to queue overflow.
    pub dropped: usize,
}

struct SubscriberEntry {
    slot: Arc<QueueSlot>,
}

impl SubscriberEntry {
    /// Cheap clone of the shared queue slot, so events can be offered
    /// after the broker lock is released.
    fn queue_handle(&self) -> QueueHandle {
        QueueHandle {
            slot: Arc::clone(&self.slot),
        }
    }
}

/// The channel endpoints of one live subscriber.
struct QueueEndpoints {
    sender: Sender<Arc<PublishedEvent>>,
    /// Receiving side, held only under [`OverflowPolicy::DropOldest`] so
    /// the broker can evict the oldest queued event.
    evictor: Option<Receiver<Arc<PublishedEvent>>>,
}

/// One subscriber's queue slot, shared between the master state and
/// every published index snapshot. Deregistration *empties* the slot
/// instead of waiting for stale snapshots to forget it, so the sender is
/// dropped — and the subscriber's receiving handle observes
/// disconnection — immediately, however many index snapshots still point
/// at the slot.
struct QueueSlot {
    endpoints: RwLock<Option<QueueEndpoints>>,
}

/// A snapshot of one subscriber's queue slot, detached from the broker's
/// locked state.
#[derive(Clone)]
struct QueueHandle {
    slot: Arc<QueueSlot>,
}

/// How many delta ops a published [`IndexSnapshot`] may accumulate before
/// a writer materializes a fresh base instead of growing the delta.
///
/// The trade: every writer below the threshold only clones the (bounded)
/// delta vec, while every publish overlays at most this many ops on top
/// of the indexed base — so the publish-side overlay scan stays O(256)
/// however large the subscription set grows, and the O(n) matcher clone
/// is paid once per 256 writes instead of on every write.
const DELTA_MATERIALIZE: usize = 256;

/// The immutable, indexed foundation of a published snapshot: a deep
/// clone of the master matcher/owner/queue state as of the last
/// materialization.
struct IndexBase {
    matcher: Box<dyn MatchEngine>,
    owners: HashMap<SubscriptionId, SubscriberId>,
    queues: HashMap<SubscriberId, QueueHandle>,
}

/// One writer mutation layered on top of an [`IndexBase`].
///
/// Subscriber and subscription ids are minted from monotonic counters and
/// never reused, which keeps replay trivial: an id can be added at most
/// once and removed at most once across base + delta, so the overlay
/// needs no op ordering beyond "removed wins".
#[derive(Clone)]
enum IndexOp {
    Register {
        subscriber: SubscriberId,
        queue: QueueHandle,
    },
    Deregister {
        subscriber: SubscriberId,
    },
    Subscribe {
        sub: SubscriptionId,
        owner: SubscriberId,
        filter: Filter,
    },
    Unsubscribe {
        sub: SubscriptionId,
    },
}

/// The read-mostly subscription index: an immutable base plus a bounded
/// delta of writer ops, published as one `Arc` that the hot paths
/// (`publish`, `deliver`) clone out of a momentary read lock.
///
/// Writers (subscribe/unsubscribe/register/deregister) never mutate a
/// published snapshot: they build the next one — swap-on-write,
/// epoch-style — so matching proceeds against the old snapshot while the
/// swap happens and never contends on the master write lock.
struct IndexSnapshot {
    base: Arc<IndexBase>,
    delta: Vec<IndexOp>,
    /// Delivery observer, carried in the snapshot so the publish path
    /// reads exactly one lock for index *and* notifier.
    notifier: Option<Arc<dyn DeliveryNotifier>>,
}

/// The delta folded into lookup tables for one publish/deliver.
struct DeltaView<'a> {
    removed_subs: HashSet<SubscriptionId>,
    added_subs: Vec<(SubscriptionId, SubscriberId, &'a Filter)>,
    removed_subscribers: HashSet<SubscriberId>,
    added_queues: HashMap<SubscriberId, &'a QueueHandle>,
}

impl<'a> DeltaView<'a> {
    fn build(delta: &'a [IndexOp]) -> DeltaView<'a> {
        let mut view = DeltaView {
            removed_subs: HashSet::new(),
            added_subs: Vec::new(),
            removed_subscribers: HashSet::new(),
            added_queues: HashMap::new(),
        };
        for op in delta {
            match op {
                IndexOp::Register { subscriber, queue } => {
                    view.added_queues.insert(*subscriber, queue);
                }
                IndexOp::Deregister { subscriber } => {
                    view.removed_subscribers.insert(*subscriber);
                }
                IndexOp::Subscribe { sub, owner, filter } => {
                    view.added_subs.push((*sub, *owner, filter));
                }
                IndexOp::Unsubscribe { sub } => {
                    view.removed_subs.insert(*sub);
                }
            }
        }
        view
    }

    /// The live queue of `owner`, checking the delta before the base;
    /// `None` when the subscriber was deregistered in the delta.
    fn queue_for(&self, owner: SubscriberId, base: &'a IndexBase) -> Option<&'a QueueHandle> {
        if self.removed_subscribers.contains(&owner) {
            return None;
        }
        self.added_queues
            .get(&owner)
            .copied()
            .or_else(|| base.queues.get(&owner))
    }
}

impl IndexSnapshot {
    /// Every `(owner, queue)` the event must be offered to: the indexed
    /// base matches overlaid with the delta (delta subscriptions are
    /// filter-evaluated directly — the delta is bounded, so this is at
    /// most [`DELTA_MATERIALIZE`] evaluations).
    fn targets(&self, event: &Event) -> Vec<(SubscriberId, QueueHandle)> {
        let view = DeltaView::build(&self.delta);
        let mut out = Vec::new();
        for sub in self.base.matcher.matches(event) {
            if view.removed_subs.contains(&sub) {
                continue;
            }
            let Some(owner) = self.base.owners.get(&sub).copied() else {
                continue;
            };
            if let Some(queue) = view.queue_for(owner, &self.base) {
                out.push((owner, queue.clone()));
            }
        }
        for (sub, owner, filter) in &view.added_subs {
            if view.removed_subs.contains(sub) || !filter.matches(event) {
                continue;
            }
            if let Some(queue) = view.queue_for(*owner, &self.base) {
                out.push((*owner, queue.clone()));
            }
        }
        out
    }

    /// Resolve one subscription to its owner and queue (the `deliver`
    /// path, which bypasses matching).
    fn route(&self, sub: SubscriptionId) -> Result<(SubscriberId, QueueHandle), BrokerError> {
        let view = DeltaView::build(&self.delta);
        if view.removed_subs.contains(&sub) {
            return Err(BrokerError::UnknownSubscription(sub));
        }
        let owner = view
            .added_subs
            .iter()
            .find(|(s, _, _)| *s == sub)
            .map(|(_, owner, _)| *owner)
            .or_else(|| self.base.owners.get(&sub).copied())
            .ok_or(BrokerError::UnknownSubscription(sub))?;
        match view.queue_for(owner, &self.base) {
            Some(queue) => Ok((owner, queue.clone())),
            None => Err(BrokerError::UnknownSubscriber(owner)),
        }
    }
}

/// What happened when one event was offered to one subscriber queue.
enum Offer {
    /// Placed on the queue.
    Delivered,
    /// Placed on the queue after evicting the oldest queued event.
    DeliveredEvicting,
    /// Lost: the queue was full and stayed full.
    DroppedFull,
    /// Lost: the subscriber's receiving handle is gone.
    DroppedGone,
}

struct BrokerInner {
    matcher: Box<dyn MatchEngine>,
    subscribers: HashMap<SubscriberId, SubscriberEntry>,
    /// Owner of each subscription.
    owners: HashMap<SubscriptionId, SubscriberId>,
}

/// A local publish-subscribe broker.
///
/// # Examples
///
/// ```
/// use reef_pubsub::{Broker, Event, Filter};
///
/// let broker = Broker::new();
/// let (id, handle) = broker.register();
/// broker.subscribe(id, Filter::topic("news")).unwrap();
/// broker.publish(Event::topical("news", "hello")).unwrap();
/// assert_eq!(handle.drain().len(), 1);
/// ```
pub struct Broker {
    inner: RwLock<BrokerInner>,
    schema: Option<Schema>,
    queue_capacity: Option<usize>,
    overflow: OverflowPolicy,
    block_timeout: Duration,
    stats: BrokerStats,
    /// The published read-mostly index. Hot paths clone the `Arc` out of
    /// a momentary read lock; writers (already serialized by `inner`'s
    /// write lock) swap in a whole new snapshot.
    snapshot: RwLock<Arc<IndexSnapshot>>,
    /// How many snapshots have been published (delta extensions and
    /// materializations alike).
    snapshot_swaps: AtomicU64,
    next_subscriber: AtomicU64,
    next_subscription: AtomicU64,
    next_event: AtomicU64,
    clock: AtomicU64,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscribers", &self.inner.read().subscribers.len())
            .field("subscriptions", &self.inner.read().matcher.len())
            .field("schema", &self.schema.as_ref().map(Schema::name))
            .finish()
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl Broker {
    /// A broker with an [`IndexMatcher`], unbounded queues and no schema.
    pub fn new() -> Self {
        BrokerBuilder::default().build()
    }

    /// Start configuring a broker.
    pub fn builder() -> BrokerBuilder {
        BrokerBuilder::default()
    }

    /// The schema events and filters are validated against, if any.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Register a new subscriber; returns its id and the handle used to
    /// receive events.
    pub fn register(&self) -> (SubscriberId, SubscriberHandle) {
        let id = SubscriberId(self.next_subscriber.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = match self.queue_capacity {
            Some(cap) => channel::bounded(cap),
            None => channel::unbounded(),
        };
        let evictor = match self.overflow {
            OverflowPolicy::DropOldest => Some(rx.clone()),
            _ => None,
        };
        let entry = SubscriberEntry {
            slot: Arc::new(QueueSlot {
                endpoints: RwLock::new(Some(QueueEndpoints {
                    sender: tx,
                    evictor,
                })),
            }),
        };
        let queue = entry.queue_handle();
        let mut inner = self.inner.write();
        inner.subscribers.insert(id, entry);
        self.swap_snapshot(
            &inner,
            [IndexOp::Register {
                subscriber: id,
                queue,
            }],
        );
        drop(inner);
        (id, SubscriberHandle { id, receiver: rx })
    }

    /// Remove a subscriber and all of its subscriptions. Returns how many
    /// subscriptions were removed.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscriber`] if the id is not
    /// registered.
    pub fn deregister(&self, id: SubscriberId) -> Result<usize, BrokerError> {
        let mut inner = self.inner.write();
        let Some(entry) = inner.subscribers.remove(&id) else {
            return Err(BrokerError::UnknownSubscriber(id));
        };
        // Empty the shared slot now rather than waiting for published
        // snapshots to age out: dropping the sender disconnects the
        // channel, so a receiver parked on the queue wakes immediately.
        *entry.slot.endpoints.write() = None;
        let owned: Vec<SubscriptionId> = inner
            .owners
            .iter()
            .filter(|(_, o)| **o == id)
            .map(|(s, _)| *s)
            .collect();
        for sub in &owned {
            inner.matcher.remove(*sub);
            inner.owners.remove(sub);
            self.stats.record_unsubscribe();
        }
        let ops = owned
            .iter()
            .map(|sub| IndexOp::Unsubscribe { sub: *sub })
            .chain([IndexOp::Deregister { subscriber: id }]);
        self.swap_snapshot(&inner, ops);
        Ok(owned.len())
    }

    /// Place a subscription on behalf of `subscriber`.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownSubscriber`] if the subscriber is not
    ///   registered.
    /// * [`BrokerError::Schema`] if the broker has a schema and the filter
    ///   fails validation.
    pub fn subscribe(
        &self,
        subscriber: SubscriberId,
        filter: Filter,
    ) -> Result<SubscriptionId, BrokerError> {
        if let Some(schema) = &self.schema {
            schema.validate_filter(&filter)?;
        }
        let mut inner = self.inner.write();
        if !inner.subscribers.contains_key(&subscriber) {
            return Err(BrokerError::UnknownSubscriber(subscriber));
        }
        let sub = SubscriptionId(self.next_subscription.fetch_add(1, Ordering::Relaxed));
        inner.matcher.insert(sub, filter.clone());
        inner.owners.insert(sub, subscriber);
        self.stats.record_subscribe();
        self.swap_snapshot(
            &inner,
            [IndexOp::Subscribe {
                sub,
                owner: subscriber,
                filter,
            }],
        );
        Ok(sub)
    }

    /// Remove a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSubscription`] if the id does not
    /// exist.
    pub fn unsubscribe(&self, sub: SubscriptionId) -> Result<Filter, BrokerError> {
        let mut inner = self.inner.write();
        let filter = inner
            .matcher
            .remove(sub)
            .ok_or(BrokerError::UnknownSubscription(sub))?;
        inner.owners.remove(&sub);
        self.stats.record_unsubscribe();
        self.swap_snapshot(&inner, [IndexOp::Unsubscribe { sub }]);
        Ok(filter)
    }

    /// Publish the next index snapshot: the current one plus `ops`, or a
    /// freshly materialized base when the delta would cross
    /// [`DELTA_MATERIALIZE`]. Must be called with the master write lock
    /// held (`inner`), which serializes swaps.
    fn swap_snapshot(&self, inner: &BrokerInner, ops: impl IntoIterator<Item = IndexOp>) {
        let current = self.snapshot.read().clone();
        let mut delta = current.delta.clone();
        delta.extend(ops);
        let next = if delta.len() >= DELTA_MATERIALIZE {
            IndexSnapshot {
                base: Arc::new(IndexBase {
                    matcher: inner.matcher.clone_box(),
                    owners: inner.owners.clone(),
                    queues: inner
                        .subscribers
                        .iter()
                        .map(|(id, entry)| (*id, entry.queue_handle()))
                        .collect(),
                }),
                delta: Vec::new(),
                notifier: current.notifier.clone(),
            }
        } else {
            IndexSnapshot {
                base: Arc::clone(&current.base),
                delta,
                notifier: current.notifier.clone(),
            }
        };
        *self.snapshot.write() = Arc::new(next);
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Swap a snapshot that differs from the current one only in its
    /// notifier (index base and delta are shared).
    fn swap_notifier(&self, notifier: Option<Arc<dyn DeliveryNotifier>>) {
        // The master write lock serializes this against index writers.
        let inner = self.inner.write();
        let current = self.snapshot.read().clone();
        let next = IndexSnapshot {
            base: Arc::clone(&current.base),
            delta: current.delta.clone(),
            notifier,
        };
        *self.snapshot.write() = Arc::new(next);
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
        drop(inner);
    }

    /// Register an observer called (outside any broker lock) whenever a
    /// delivery lands on a subscriber queue. Replaces any previous
    /// notifier; pass this before wiring the broker into a
    /// readiness-driven transport.
    pub fn set_delivery_notifier(&self, notifier: Arc<dyn DeliveryNotifier>) {
        self.swap_notifier(Some(notifier));
    }

    /// Remove the delivery observer, if one was registered.
    pub fn clear_delivery_notifier(&self) {
        self.swap_notifier(None);
    }

    /// How many index snapshots have been published since the broker was
    /// built. Transports surface this as the matcher snapshot-swap gauge.
    pub fn snapshot_swaps(&self) -> u64 {
        self.snapshot_swaps.load(Ordering::Relaxed)
    }

    /// Publish an event: match it against all subscriptions and place a
    /// shared handle to it on each matching subscriber's queue (the event
    /// itself is stored once; see the module notes on zero-copy fan-out).
    ///
    /// # Errors
    ///
    /// * [`BrokerError::Schema`] if the broker has a schema and the event
    ///   fails validation.
    /// * [`BrokerError::QueueFull`] under [`OverflowPolicy::Error`] when a
    ///   bounded queue overflows.
    pub fn publish(&self, event: Event) -> Result<PublishOutcome, BrokerError> {
        if let Some(schema) = &self.schema {
            schema.validate_event(&event)?;
        }
        let id = EventId(self.next_event.fetch_add(1, Ordering::Relaxed));
        let published_at = self.clock.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(PublishedEvent {
            id,
            published_at,
            event,
        });
        // Matching runs against the published snapshot — an immutable
        // `Arc` cloned out of a momentary read lock — so a publish storm
        // never contends with subscribe/unsubscribe churn on the master
        // write lock, and an offer sleeping under OverflowPolicy::Block
        // stalls nobody but its own publisher.
        let snap = self.snapshot.read().clone();
        let targets = snap.targets(&published.event);
        let notifier = &snap.notifier;
        let mut delivered = 0usize;
        let mut dropped = 0usize;
        let mut touched: HashSet<SubscriberId> = HashSet::new();
        // One subscriber may hold several matching subscriptions; deliver
        // one copy per matching *subscription*, as real brokers do (the
        // frontend can dedup if it wants to).
        for (owner, queue) in &targets {
            match self.offer(queue, Arc::clone(&published)) {
                Offer::Delivered => delivered += 1,
                Offer::DeliveredEvicting => {
                    delivered += 1;
                    dropped += 1;
                }
                Offer::DroppedFull => {
                    dropped += 1;
                    if self.overflow == OverflowPolicy::Error {
                        self.stats.record_publish();
                        self.stats.record_delivery(delivered as u64);
                        self.stats.record_drop(dropped as u64);
                        Self::notify_all(notifier, &touched);
                        return Err(BrokerError::QueueFull {
                            subscriber: *owner,
                            capacity: self.queue_capacity.unwrap_or(0),
                        });
                    }
                    continue;
                }
                // Receiver handle dropped: treat like an implicit deregister.
                Offer::DroppedGone => {
                    dropped += 1;
                    continue;
                }
            }
            if notifier.is_some() {
                touched.insert(*owner);
            }
        }
        self.stats.record_publish();
        self.stats.record_delivery(delivered as u64);
        self.stats.record_drop(dropped as u64);
        Self::notify_all(notifier, &touched);
        Ok(PublishOutcome {
            id,
            published_at,
            delivered,
            dropped,
        })
    }

    /// Fire the delivery notifier once for the whole publish, listing
    /// each subscriber that received something at most once. Batched so a
    /// shard-aware notifier can coalesce the wakeups per event loop.
    fn notify_all(notifier: &Option<Arc<dyn DeliveryNotifier>>, touched: &HashSet<SubscriberId>) {
        if let Some(notifier) = notifier {
            if !touched.is_empty() {
                let subscribers: Vec<SubscriberId> = touched.iter().copied().collect();
                notifier.notify_batch(&subscribers);
            }
        }
    }

    /// Place an already-published event directly on the queue of the
    /// subscriber owning `sub`, bypassing matching.
    ///
    /// This is the delivery half used by federation drivers: a remote
    /// broker has already matched the event against the forwarded
    /// subscription, so the local broker only has to find the owner and
    /// enqueue, preserving the origin broker's event id and timestamp.
    /// Returns `true` if the event was queued, `false` if it was dropped
    /// (queue overflow or a vanished subscriber handle); drops are
    /// counted in the broker stats either way.
    ///
    /// # Errors
    ///
    /// * [`BrokerError::UnknownSubscription`] if `sub` does not exist.
    /// * [`BrokerError::QueueFull`] under [`OverflowPolicy::Error`] when
    ///   the owner's queue overflows.
    ///
    /// Accepts either an owned [`PublishedEvent`] or an
    /// `Arc<PublishedEvent>`; federation drivers fanning one remote event
    /// out to several member subscriptions pass clones of one `Arc` so
    /// the event is never deep-copied.
    pub fn deliver(
        &self,
        sub: SubscriptionId,
        event: impl Into<Arc<PublishedEvent>>,
    ) -> Result<bool, BrokerError> {
        // Resolve against the published snapshot, offer outside any lock
        // (see `publish` for why).
        let snap = self.snapshot.read().clone();
        let (owner, queue) = snap.route(sub)?;
        let notify = |_: &Broker| {
            if let Some(notifier) = &snap.notifier {
                notifier.notify(owner);
            }
        };
        match self.offer(&queue, event.into()) {
            Offer::Delivered => {
                self.stats.record_delivery(1);
                notify(self);
                Ok(true)
            }
            Offer::DeliveredEvicting => {
                self.stats.record_delivery(1);
                self.stats.record_drop(1);
                notify(self);
                Ok(true)
            }
            Offer::DroppedFull => {
                self.stats.record_drop(1);
                if self.overflow == OverflowPolicy::Error {
                    return Err(BrokerError::QueueFull {
                        subscriber: owner,
                        capacity: self.queue_capacity.unwrap_or(0),
                    });
                }
                Ok(false)
            }
            Offer::DroppedGone => {
                self.stats.record_drop(1);
                Ok(false)
            }
        }
    }

    /// Offer one event to one subscriber queue under the broker's
    /// overflow policy. Called without the broker lock held: under
    /// [`OverflowPolicy::Block`] this may sleep up to the block timeout.
    fn offer(&self, queue: &QueueHandle, event: Arc<PublishedEvent>) -> Offer {
        // Clone the endpoints out of a momentary read lock rather than
        // holding it across the send: a Block-policy offer may sleep,
        // and deregister (which empties the slot under its write lock)
        // must never wait on an offer in flight.
        let Some((sender, evictor)) = queue
            .slot
            .endpoints
            .read()
            .as_ref()
            .map(|e| (e.sender.clone(), e.evictor.clone()))
        else {
            return Offer::DroppedGone;
        };
        match sender.try_send(event) {
            Ok(()) => Offer::Delivered,
            Err(TrySendError::Full(event)) => match self.overflow {
                OverflowPolicy::DropAndCount | OverflowPolicy::Error => Offer::DroppedFull,
                OverflowPolicy::DropOldest => {
                    let evicted = evictor.as_ref().is_some_and(|rx| rx.try_recv().is_ok());
                    match sender.try_send(event) {
                        Ok(()) if evicted => Offer::DeliveredEvicting,
                        Ok(()) => Offer::Delivered,
                        Err(_) => Offer::DroppedFull,
                    }
                }
                OverflowPolicy::Block => match sender.send_timeout(event, self.block_timeout) {
                    Ok(()) => Offer::Delivered,
                    Err(channel::SendTimeoutError::Timeout(_)) => Offer::DroppedFull,
                    Err(channel::SendTimeoutError::Disconnected(_)) => Offer::DroppedGone,
                },
            },
            Err(TrySendError::Disconnected(_)) => Offer::DroppedGone,
        }
    }

    /// Start minting event ids from `base` instead of 0, provided no
    /// event has been published yet. Returns whether the rebase applied.
    ///
    /// Federation drivers use this to namespace event ids per broker
    /// (e.g. `broker_id << 32`), so events forwarded between daemons
    /// never collide on [`EventId`]. `published_at` timestamps remain
    /// each broker's private logical clock either way.
    pub fn namespace_event_ids(&self, base: u64) -> bool {
        self.next_event
            .compare_exchange(0, base, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.read().matcher.len()
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.read().subscribers.len()
    }

    /// The filter of a live subscription.
    pub fn subscription_filter(&self, sub: SubscriptionId) -> Option<Filter> {
        self.inner.read().matcher.filter(sub).cloned()
    }

    /// Operation counters.
    pub fn stats(&self) -> BrokerStatsSnapshot {
        self.stats.snapshot()
    }
}

/// Configures and builds a [`Broker`].
#[derive(Default)]
pub struct BrokerBuilder {
    schema: Option<Schema>,
    queue_capacity: Option<usize>,
    overflow: OverflowPolicy,
    block_timeout: Option<Duration>,
    matcher: Option<Box<dyn MatchEngine>>,
}

impl fmt::Debug for BrokerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerBuilder")
            .field("schema", &self.schema.as_ref().map(Schema::name))
            .field("queue_capacity", &self.queue_capacity)
            .field("overflow", &self.overflow)
            .finish()
    }
}

impl BrokerBuilder {
    /// Validate events and filters against `schema`.
    pub fn schema(mut self, schema: Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Bound each subscriber's delivery queue to `capacity` events.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Set the policy applied when a bounded queue overflows.
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Bound how long a publish may block on a full queue under
    /// [`OverflowPolicy::Block`] (default [`DEFAULT_BLOCK_TIMEOUT`]).
    pub fn block_timeout(mut self, timeout: Duration) -> Self {
        self.block_timeout = Some(timeout);
        self
    }

    /// Use a custom matching engine (defaults to [`IndexMatcher`]).
    pub fn matcher(mut self, matcher: Box<dyn MatchEngine>) -> Self {
        self.matcher = Some(matcher);
        self
    }

    /// Build the broker.
    pub fn build(self) -> Broker {
        let matcher = self
            .matcher
            .unwrap_or_else(|| Box::new(IndexMatcher::new()));
        // The first published snapshot is the empty master state.
        let snapshot = IndexSnapshot {
            base: Arc::new(IndexBase {
                matcher: matcher.clone_box(),
                owners: HashMap::new(),
                queues: HashMap::new(),
            }),
            delta: Vec::new(),
            notifier: None,
        };
        Broker {
            inner: RwLock::new(BrokerInner {
                matcher,
                subscribers: HashMap::new(),
                owners: HashMap::new(),
            }),
            schema: self.schema,
            queue_capacity: self.queue_capacity,
            overflow: self.overflow,
            block_timeout: self.block_timeout.unwrap_or(DEFAULT_BLOCK_TIMEOUT),
            stats: BrokerStats::default(),
            snapshot: RwLock::new(Arc::new(snapshot)),
            snapshot_swaps: AtomicU64::new(0),
            next_subscriber: AtomicU64::new(0),
            next_subscription: AtomicU64::new(0),
            next_event: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }
}

/// Receiving side of a subscriber's delivery queue.
///
/// Deliveries arrive as `Arc<PublishedEvent>` — shared handles onto the
/// single event stored at publish time. Consumers that need an owned
/// event can `Arc::try_unwrap` (free when this subscriber was the only
/// recipient) or deep-clone explicitly.
#[derive(Debug, Clone)]
pub struct SubscriberHandle {
    id: SubscriberId,
    receiver: Receiver<Arc<PublishedEvent>>,
}

impl SubscriberHandle {
    /// The subscriber this handle belongs to.
    pub fn id(&self) -> SubscriberId {
        self.id
    }

    /// Non-blocking receive of the next delivered event.
    pub fn try_recv(&self) -> Option<Arc<PublishedEvent>> {
        self.receiver.try_recv().ok()
    }

    /// Blocking receive with a deadline: waits up to `timeout` for the next
    /// delivered event.
    ///
    /// This is the drain hook used by networked delivery pumps (e.g.
    /// `reef-wire`'s per-connection writer threads), which need to park
    /// until traffic arrives instead of spinning on [`Self::try_recv`].
    /// Returns `None` on timeout or if the broker side of the queue is gone.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Arc<PublishedEvent>> {
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Arc<PublishedEvent>> {
        let mut out = Vec::new();
        while let Ok(ev) = self.receiver.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Number of events currently queued.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }
}

/// Convenience alias: a broker shared between threads.
pub type SharedBroker = Arc<Broker>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Op;
    use crate::schema::stock_quote_schema;

    #[test]
    fn publish_delivers_to_matching_subscriber_only() {
        let broker = Broker::new();
        let (a, ha) = broker.register();
        let (b, hb) = broker.register();
        broker.subscribe(a, Filter::topic("x")).unwrap();
        broker.subscribe(b, Filter::topic("y")).unwrap();
        let out = broker.publish(Event::topical("x", "m")).unwrap();
        assert_eq!(out.delivered, 1);
        assert_eq!(ha.drain().len(), 1);
        assert!(hb.drain().is_empty());
    }

    #[test]
    fn event_ids_are_monotonic() {
        let broker = Broker::new();
        let a = broker.publish(Event::new()).unwrap().id;
        let b = broker.publish(Event::new()).unwrap().id;
        assert!(b > a);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let (a, ha) = broker.register();
        let sub = broker.subscribe(a, Filter::topic("x")).unwrap();
        broker.publish(Event::topical("x", "1")).unwrap();
        broker.unsubscribe(sub).unwrap();
        broker.publish(Event::topical("x", "2")).unwrap();
        assert_eq!(ha.drain().len(), 1);
        assert!(matches!(
            broker.unsubscribe(sub),
            Err(BrokerError::UnknownSubscription(_))
        ));
    }

    #[test]
    fn deregister_removes_all_subscriptions() {
        let broker = Broker::new();
        let (a, _ha) = broker.register();
        broker.subscribe(a, Filter::topic("x")).unwrap();
        broker.subscribe(a, Filter::topic("y")).unwrap();
        assert_eq!(broker.deregister(a).unwrap(), 2);
        assert_eq!(broker.subscription_count(), 0);
        assert!(matches!(
            broker.subscribe(a, Filter::new()),
            Err(BrokerError::UnknownSubscriber(_))
        ));
    }

    #[test]
    fn one_copy_per_matching_subscription() {
        let broker = Broker::new();
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::topic("x")).unwrap();
        broker
            .subscribe(a, Filter::new().and("body", Op::Contains, "m"))
            .unwrap();
        let out = broker.publish(Event::topical("x", "m")).unwrap();
        assert_eq!(out.delivered, 2);
        assert_eq!(ha.drain().len(), 2);
    }

    #[test]
    fn schema_validation_on_publish_and_subscribe() {
        let broker = Broker::builder()
            .schema(stock_quote_schema(["ACME"]))
            .build();
        let (a, _h) = broker.register();
        assert!(broker
            .subscribe(a, Filter::new().and("symbol", Op::Eq, "ACME"))
            .is_ok());
        assert!(matches!(
            broker.subscribe(a, Filter::new().and("symbol", Op::Eq, "NOPE")),
            Err(BrokerError::Schema(_))
        ));
        let bad = Event::builder().attr("symbol", "ACME").build();
        assert!(matches!(broker.publish(bad), Err(BrokerError::Schema(_))));
    }

    #[test]
    fn bounded_queue_drops_and_counts() {
        let broker = Broker::builder().queue_capacity(2).build();
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        for _ in 0..5 {
            broker.publish(Event::new()).unwrap();
        }
        assert_eq!(ha.pending(), 2);
        let stats = broker.stats();
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.drops, 3);
    }

    #[test]
    fn bounded_queue_error_policy() {
        let broker = Broker::builder()
            .queue_capacity(1)
            .overflow(OverflowPolicy::Error)
            .build();
        let (a, _ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        broker.publish(Event::new()).unwrap();
        assert!(matches!(
            broker.publish(Event::new()),
            Err(BrokerError::QueueFull { .. })
        ));
    }

    #[test]
    fn drop_oldest_policy_keeps_newest_events() {
        let broker = Broker::builder()
            .queue_capacity(2)
            .overflow(OverflowPolicy::DropOldest)
            .build();
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        for i in 0..5i64 {
            broker
                .publish(Event::builder().attr("i", i).build())
                .unwrap();
        }
        let got: Vec<i64> = ha
            .drain()
            .iter()
            .map(|e| e.event.get("i").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 4], "oldest events were evicted");
        let stats = broker.stats();
        assert_eq!(stats.deliveries, 5, "every publish was enqueued");
        assert_eq!(stats.drops, 3, "three evictions counted as drops");
    }

    #[test]
    fn block_policy_waits_for_space_then_drops() {
        let broker = Broker::builder()
            .queue_capacity(1)
            .overflow(OverflowPolicy::Block)
            .block_timeout(Duration::from_millis(50))
            .build();
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        broker.publish(Event::new()).unwrap();
        // Queue full, nobody draining: the publish blocks for the timeout
        // and then counts a drop.
        let out = broker.publish(Event::new()).unwrap();
        assert_eq!(out.dropped, 1);
        // With a draining consumer the publish goes through.
        let drainer = {
            let rx = ha.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                rx.drain().len()
            })
        };
        let out = broker.publish(Event::new()).unwrap();
        assert_eq!(out.delivered, 1);
        drainer.join().unwrap();
    }

    #[test]
    fn deliver_bypasses_matching_and_keeps_event_identity() {
        let broker = Broker::new();
        let (a, ha) = broker.register();
        // The filter would never match this event; deliver ignores it.
        let sub = broker.subscribe(a, Filter::topic("nope")).unwrap();
        let remote = PublishedEvent {
            id: EventId(77),
            published_at: 123,
            event: Event::topical("t", "x"),
        };
        assert!(broker.deliver(sub, remote.clone()).unwrap());
        let got = ha.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, EventId(77));
        assert_eq!(got[0].published_at, 123);
        assert!(matches!(
            broker.deliver(SubscriptionId(99), remote),
            Err(BrokerError::UnknownSubscription(_))
        ));
    }

    #[test]
    fn publish_outcome_reports_timestamp() {
        let broker = Broker::new();
        let a = broker.publish(Event::new()).unwrap();
        let b = broker.publish(Event::new()).unwrap();
        assert!(b.published_at > a.published_at);
    }

    #[test]
    fn overflow_policy_parses_cli_spellings() {
        assert_eq!(
            OverflowPolicy::parse("drop-new"),
            Some(OverflowPolicy::DropAndCount)
        );
        assert_eq!(
            OverflowPolicy::parse("drop-old"),
            Some(OverflowPolicy::DropOldest)
        );
        assert_eq!(OverflowPolicy::parse("block"), Some(OverflowPolicy::Block));
        assert_eq!(OverflowPolicy::parse("error"), Some(OverflowPolicy::Error));
        assert_eq!(OverflowPolicy::parse("yolo"), None);
    }

    #[test]
    fn dropped_handle_counts_as_drop() {
        let broker = Broker::new();
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        drop(ha);
        let out = broker.publish(Event::new()).unwrap();
        assert_eq!(out.delivered, 0);
        assert_eq!(out.dropped, 1);
    }

    #[test]
    fn concurrent_publishers() {
        let broker: SharedBroker = Arc::new(Broker::new());
        let (a, ha) = broker.register();
        broker.subscribe(a, Filter::new()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let b = Arc::clone(&broker);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        b.publish(Event::builder().attr("t", t).attr("i", i).build())
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ha.drain().len(), 400);
        assert_eq!(broker.stats().events_published, 400);
    }

    #[test]
    fn delta_materializes_into_a_fresh_base() {
        // Cross the DELTA_MATERIALIZE threshold several times over and
        // verify matching stays exact on both sides of each swap.
        let broker = Broker::new();
        let (a, ha) = broker.register();
        let mut subs = Vec::new();
        for i in 0..(3 * DELTA_MATERIALIZE as i64) {
            subs.push(
                broker
                    .subscribe(a, Filter::new().and("i", Op::Eq, i))
                    .unwrap(),
            );
        }
        let out = broker
            .publish(Event::builder().attr("i", 5i64).build())
            .unwrap();
        assert_eq!(out.delivered, 1);
        assert_eq!(ha.drain().len(), 1);
        assert!(broker.snapshot_swaps() >= 3 * DELTA_MATERIALIZE as u64);
        // Unsubscribe half and re-check: removals must be visible too.
        for sub in subs.iter().step_by(2) {
            broker.unsubscribe(*sub).unwrap();
        }
        let even = broker
            .publish(Event::builder().attr("i", 4i64).build())
            .unwrap();
        assert_eq!(even.delivered, 0, "even-indexed filters were removed");
        let odd = broker
            .publish(Event::builder().attr("i", 5i64).build())
            .unwrap();
        assert_eq!(odd.delivered, 1);
    }

    #[test]
    fn publish_storm_survives_subscription_churn() {
        // The acceptance property of the read-mostly index: a publish
        // storm concurrent with subscribe/unsubscribe churn never stalls
        // on the writers (matching takes no write lock) and every publish
        // still reaches the stable subscriber.
        let broker: SharedBroker = Arc::new(Broker::new());
        let (stable, handle) = broker.register();
        broker.subscribe(stable, Filter::topic("storm")).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churners: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&broker);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let (churn, _h) = b.register();
                    while !stop.load(Ordering::Relaxed) {
                        let sub = b.subscribe(churn, Filter::topic("churn")).unwrap();
                        b.unsubscribe(sub).unwrap();
                    }
                })
            })
            .collect();
        const STORM: usize = 2000;
        for i in 0..STORM {
            let out = broker
                .publish(Event::topical("storm", &i.to_string()))
                .unwrap();
            assert_eq!(out.delivered, 1, "publish {i} missed the stable subscriber");
        }
        stop.store(true, Ordering::Relaxed);
        for t in churners {
            t.join().unwrap();
        }
        assert_eq!(handle.drain().len(), STORM);
        assert!(broker.snapshot_swaps() > 0, "churn published snapshots");
    }

    #[test]
    fn debug_impl_is_informative() {
        let broker = Broker::new();
        let s = format!("{broker:?}");
        assert!(s.contains("Broker"));
        assert!(s.contains("subscribers"));
    }
}
