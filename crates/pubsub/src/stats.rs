//! Lightweight operation counters for brokers and overlays.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters maintained by a [`crate::Broker`].
#[derive(Debug, Default)]
pub struct BrokerStats {
    events_published: AtomicU64,
    deliveries: AtomicU64,
    drops: AtomicU64,
    subscribes: AtomicU64,
    unsubscribes: AtomicU64,
}

impl BrokerStats {
    pub(crate) fn record_publish(&self) {
        self.events_published.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delivery(&self, n: u64) {
        self.deliveries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_drop(&self, n: u64) {
        self.drops.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_subscribe(&self) {
        self.subscribes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_unsubscribe(&self) {
        self.unsubscribes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> BrokerStatsSnapshot {
        BrokerStatsSnapshot {
            events_published: self.events_published.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            subscribes: self.subscribes.load(Ordering::Relaxed),
            unsubscribes: self.unsubscribes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`BrokerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BrokerStatsSnapshot {
    /// Events accepted by `publish`.
    pub events_published: u64,
    /// Event copies placed on subscriber queues.
    pub deliveries: u64,
    /// Event copies dropped because a bounded queue was full.
    pub drops: u64,
    /// Successful subscribe operations.
    pub subscribes: u64,
    /// Successful unsubscribe operations.
    pub unsubscribes: u64,
}

impl fmt::Display for BrokerStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "published={} delivered={} dropped={} subs={} unsubs={}",
            self.events_published, self.deliveries, self.drops, self.subscribes, self.unsubscribes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = BrokerStats::default();
        s.record_publish();
        s.record_delivery(3);
        s.record_drop(1);
        s.record_subscribe();
        s.record_unsubscribe();
        let snap = s.snapshot();
        assert_eq!(snap.events_published, 1);
        assert_eq!(snap.deliveries, 3);
        assert_eq!(snap.drops, 1);
        assert_eq!(snap.subscribes, 1);
        assert_eq!(snap.unsubscribes, 1);
    }

    #[test]
    fn snapshot_display_is_nonempty() {
        let snap = BrokerStats::default().snapshot();
        assert!(!snap.to_string().is_empty());
    }
}
