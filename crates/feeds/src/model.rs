//! Format-independent feed model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The syndication dialect a feed document was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeedFormat {
    /// RSS 2.0 (`<rss version="2.0">`).
    Rss2,
    /// Atom 1.0 (`<feed xmlns="http://www.w3.org/2005/Atom">`).
    Atom,
    /// RSS 1.0 / RDF (`<rdf:RDF>`).
    Rdf,
}

impl fmt::Display for FeedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeedFormat::Rss2 => "rss2",
            FeedFormat::Atom => "atom",
            FeedFormat::Rdf => "rdf",
        };
        f.write_str(s)
    }
}

/// One entry/item of a feed.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FeedItem {
    /// Stable unique id (guid / atom:id / rdf:about). Falls back to the
    /// link when the document carries no explicit id.
    pub guid: String,
    /// Headline.
    pub title: String,
    /// Link to the full story.
    pub link: String,
    /// Description / summary / content.
    pub description: String,
    /// Publication day, when the document carries one (simulated-web feeds
    /// stamp an integer day).
    pub published_day: Option<u32>,
}

/// A parsed feed: channel metadata plus items, newest first (document
/// order).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Feed {
    /// Channel title.
    pub title: String,
    /// Channel homepage link.
    pub link: String,
    /// Channel description.
    pub description: String,
    /// Items in document order.
    pub items: Vec<FeedItem>,
}

impl Feed {
    /// Item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the feed has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_display_names() {
        assert_eq!(FeedFormat::Rss2.to_string(), "rss2");
        assert_eq!(FeedFormat::Atom.to_string(), "atom");
        assert_eq!(FeedFormat::Rdf.to_string(), "rdf");
    }

    #[test]
    fn feed_len_reflects_items() {
        let mut f = Feed::default();
        assert!(f.is_empty());
        f.items.push(FeedItem::default());
        assert_eq!(f.len(), 1);
    }
}
