//! # reef-feeds — Web-feed substrate (WAIF FeedEvents)
//!
//! The topic-based case study of the Reef paper (§3.2) subscribes users to
//! RSS feeds through the *WAIF FeedEvents* service \[2\]: a push-based proxy
//! that "can poll any RSS, Atom, or RDF feed, and check for updated
//! content on behalf of many users". This crate implements that substrate
//! from scratch:
//!
//! * a minimal **XML parser** ([`xml`]): pull events plus a small DOM;
//! * **parsers and writers** for the three feed dialects
//!   ([`parse_feed`], [`write_feed`]) with a format-independent model
//!   ([`Feed`], [`FeedItem`]);
//! * the **FeedEvents proxy** ([`FeedEventsProxy`]): GUID-deduplicated,
//!   backoff-scheduled polling that publishes fresh items into a
//!   `reef-pubsub` [`reef_pubsub::Broker`] as topical events.
//!
//! ```
//! use reef_feeds::{parse_feed, FeedFormat};
//!
//! let xml = r#"<rss version="2.0"><channel><title>T</title></channel></rss>"#;
//! let (format, feed) = parse_feed(xml)?;
//! assert_eq!(format, FeedFormat::Rss2);
//! assert_eq!(feed.title, "T");
//! # Ok::<(), reef_feeds::FeedError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod parse;
pub mod proxy;
pub mod write;
pub mod xml;

pub use model::{Feed, FeedFormat, FeedItem};
pub use parse::{parse_feed, sniff_format, FeedError};
pub use proxy::{FeedEventsProxy, FeedFetcher, PollReport, ProxyConfig};
pub use write::write_feed;
pub use xml::{parse_document, XmlError, XmlEvent, XmlNode, XmlPullParser};
