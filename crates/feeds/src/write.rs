//! Serializing [`Feed`]s back to XML.
//!
//! The simulated Web serves feed documents generated from
//! `reef-simweb` item lists; these writers produce the three dialects so
//! the parser is exercised end-to-end against realistic documents
//! (including entity escaping).

use crate::model::{Feed, FeedFormat, FeedItem};
use crate::xml::encode_entities;
use std::fmt::Write as _;

/// Serialize a feed in the given dialect.
///
/// # Examples
///
/// ```
/// use reef_feeds::{parse_feed, write_feed, Feed, FeedItem, FeedFormat};
///
/// let mut feed = Feed { title: "T".into(), ..Feed::default() };
/// feed.items.push(FeedItem { guid: "g".into(), title: "A & B".into(), ..FeedItem::default() });
/// let xml = write_feed(&feed, FeedFormat::Atom);
/// let (format, parsed) = parse_feed(&xml)?;
/// assert_eq!(format, FeedFormat::Atom);
/// assert_eq!(parsed.items[0].title, "A & B");
/// # Ok::<(), reef_feeds::FeedError>(())
/// ```
pub fn write_feed(feed: &Feed, format: FeedFormat) -> String {
    match format {
        FeedFormat::Rss2 => write_rss2(feed),
        FeedFormat::Atom => write_atom(feed),
        FeedFormat::Rdf => write_rdf(feed),
    }
}

fn push_tag(out: &mut String, indent: &str, tag: &str, text: &str) {
    let _ = writeln!(out, "{indent}<{tag}>{}</{tag}>", encode_entities(text));
}

fn push_day(out: &mut String, indent: &str, item: &FeedItem) {
    if let Some(day) = item.published_day {
        let _ = writeln!(out, "{indent}<publishedDay>{day}</publishedDay>");
    }
}

fn write_rss2(feed: &Feed) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<rss version=\"2.0\">\n<channel>\n");
    push_tag(&mut out, "  ", "title", &feed.title);
    push_tag(&mut out, "  ", "link", &feed.link);
    push_tag(&mut out, "  ", "description", &feed.description);
    for item in &feed.items {
        out.push_str("  <item>\n");
        push_tag(&mut out, "    ", "title", &item.title);
        push_tag(&mut out, "    ", "link", &item.link);
        push_tag(&mut out, "    ", "guid", &item.guid);
        push_tag(&mut out, "    ", "description", &item.description);
        push_day(&mut out, "    ", item);
        out.push_str("  </item>\n");
    }
    out.push_str("</channel>\n</rss>\n");
    out
}

fn write_atom(feed: &Feed) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<feed xmlns=\"http://www.w3.org/2005/Atom\">\n");
    push_tag(&mut out, "  ", "title", &feed.title);
    push_tag(&mut out, "  ", "subtitle", &feed.description);
    let _ = writeln!(
        out,
        "  <link href=\"{}\" rel=\"alternate\"/>",
        encode_entities(&feed.link)
    );
    for item in &feed.items {
        out.push_str("  <entry>\n");
        push_tag(&mut out, "    ", "title", &item.title);
        push_tag(&mut out, "    ", "id", &item.guid);
        let _ = writeln!(out, "    <link href=\"{}\"/>", encode_entities(&item.link));
        push_tag(&mut out, "    ", "summary", &item.description);
        push_day(&mut out, "    ", item);
        out.push_str("  </entry>\n");
    }
    out.push_str("</feed>\n");
    out
}

fn write_rdf(feed: &Feed) -> String {
    let mut out = String::new();
    out.push_str(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" xmlns=\"http://purl.org/rss/1.0/\">\n",
    );
    let _ = writeln!(
        out,
        "<channel rdf:about=\"{}\">",
        encode_entities(&feed.link)
    );
    push_tag(&mut out, "  ", "title", &feed.title);
    push_tag(&mut out, "  ", "link", &feed.link);
    push_tag(&mut out, "  ", "description", &feed.description);
    out.push_str("</channel>\n");
    for item in &feed.items {
        let _ = writeln!(out, "<item rdf:about=\"{}\">", encode_entities(&item.guid));
        push_tag(&mut out, "  ", "title", &item.title);
        push_tag(&mut out, "  ", "link", &item.link);
        push_tag(&mut out, "  ", "description", &item.description);
        push_day(&mut out, "  ", item);
        out.push_str("</item>\n");
    }
    out.push_str("</rdf:RDF>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_feed;

    fn sample() -> Feed {
        Feed {
            title: "Sample <Feed> & Co".to_owned(),
            link: "http://s.example/".to_owned(),
            description: "about \"things\"".to_owned(),
            items: vec![
                FeedItem {
                    guid: "g1".to_owned(),
                    title: "Story & more".to_owned(),
                    link: "http://s.example/1".to_owned(),
                    description: "body <one>".to_owned(),
                    published_day: Some(4),
                },
                FeedItem {
                    guid: "g2".to_owned(),
                    title: "Second".to_owned(),
                    link: "http://s.example/2".to_owned(),
                    description: String::new(),
                    published_day: None,
                },
            ],
        }
    }

    #[test]
    fn round_trip_all_formats() {
        for format in [FeedFormat::Rss2, FeedFormat::Atom, FeedFormat::Rdf] {
            let feed = sample();
            let xml = write_feed(&feed, format);
            let (sniffed, parsed) = parse_feed(&xml).unwrap_or_else(|e| panic!("{format}: {e}"));
            assert_eq!(sniffed, format);
            assert_eq!(parsed.title, feed.title, "{format}");
            assert_eq!(parsed.items.len(), feed.items.len(), "{format}");
            for (a, b) in parsed.items.iter().zip(&feed.items) {
                assert_eq!(a.guid, b.guid, "{format}");
                assert_eq!(a.title, b.title, "{format}");
                assert_eq!(a.link, b.link, "{format}");
                assert_eq!(a.published_day, b.published_day, "{format}");
            }
        }
    }

    #[test]
    fn escaping_survives_hostile_text() {
        let mut feed = sample();
        feed.items[0].title = "</item><script>alert('&')</script>".to_owned();
        let xml = write_feed(&feed, FeedFormat::Rss2);
        let (_, parsed) = parse_feed(&xml).unwrap();
        assert_eq!(parsed.items[0].title, feed.items[0].title);
    }
}
