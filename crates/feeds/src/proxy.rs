//! The WAIF FeedEvents proxy: wrapping pull-based feeds with a push
//! interface.
//!
//! The paper deploys subscriptions at "WAIF Proxies" \[2\]: a service that
//! "can poll any RSS, Atom, or RDF feed, and check for updated content on
//! behalf of many users" (§3.2), publishing new items as events. This
//! module is that service. It
//!
//! * polls registered feed URLs through a [`FeedFetcher`] (the simulated
//!   Web, in the reproduction),
//! * parses whatever dialect comes back,
//! * deduplicates items by GUID so each item is published exactly once,
//! * publishes new items into a [`Broker`] as topical events
//!   (`topic = feed URL`), so a user's browser extension receives them
//!   through an ordinary topic subscription, and
//! * backs off polling of feeds that rarely update (most feeds, per the
//!   paper's citation of Liu et al. \[13\]).

use crate::model::FeedFormat;
use crate::parse::parse_feed;
use parking_lot::Mutex;
use reef_pubsub::{Broker, Event, TOPIC_ATTR};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Source of feed documents: given a URL and the current day, return the
/// feed document currently served there (or `None` when unreachable).
pub trait FeedFetcher {
    /// Fetch the current document of the feed at `url` on `day`.
    fn fetch_feed(&self, url: &str, day: u32) -> Option<String>;
}

impl<F> FeedFetcher for F
where
    F: Fn(&str, u32) -> Option<String>,
{
    fn fetch_feed(&self, url: &str, day: u32) -> Option<String> {
        self(url, day)
    }
}

/// Per-feed polling state.
#[derive(Debug)]
struct FeedState {
    watchers: usize,
    seen: HashSet<String>,
    next_poll_day: u32,
    interval: u32,
    format: Option<FeedFormat>,
    new_items_total: u64,
}

impl FeedState {
    fn new() -> Self {
        FeedState {
            watchers: 1,
            seen: HashSet::new(),
            next_poll_day: 0,
            interval: 1,
            format: None,
            new_items_total: 0,
        }
    }
}

/// Outcome of one polling cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PollReport {
    /// Feeds actually polled this cycle.
    pub polled: usize,
    /// Feeds skipped because their backoff interval had not elapsed.
    pub skipped: usize,
    /// New items published into the broker.
    pub new_items: usize,
    /// Documents that failed to parse.
    pub parse_errors: usize,
    /// URLs the fetcher could not serve.
    pub unreachable: usize,
}

impl fmt::Display for PollReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polled {} (skipped {}), {} new items, {} parse errors, {} unreachable",
            self.polled, self.skipped, self.new_items, self.parse_errors, self.unreachable
        )
    }
}

/// Configuration of the proxy's adaptive poll scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// Maximum days between polls of a quiet feed.
    pub max_interval: u32,
    /// How many days of items a first poll ingests (history window).
    pub first_poll_window: u32,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            max_interval: 8,
            first_poll_window: 0,
        }
    }
}

/// The push-based feed proxy.
///
/// Thread-safe: registration and polling lock internal state; publishing
/// goes through the (thread-safe) broker.
///
/// # Examples
///
/// ```
/// use reef_feeds::{FeedEventsProxy, write_feed, Feed, FeedItem, FeedFormat};
/// use reef_pubsub::{Broker, Filter};
///
/// let broker = Broker::new();
/// let (me, inbox) = broker.register();
/// let url = "http://site.example/feed.rss";
/// broker.subscribe(me, Filter::topic(url)).unwrap();
///
/// let mut proxy = FeedEventsProxy::new();
/// proxy.register(url);
/// let fetcher = |_: &str, _: u32| {
///     let mut feed = Feed::default();
///     feed.items.push(FeedItem { guid: "g1".into(), title: "hi".into(), ..FeedItem::default() });
///     Some(write_feed(&feed, FeedFormat::Rss2))
/// };
/// let report = proxy.poll_due(&fetcher, &broker, 0);
/// assert_eq!(report.new_items, 1);
/// assert_eq!(inbox.drain().len(), 1);
/// ```
#[derive(Debug)]
pub struct FeedEventsProxy {
    feeds: Mutex<HashMap<String, FeedState>>,
    config: ProxyConfig,
}

impl Default for FeedEventsProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl FeedEventsProxy {
    /// A proxy with default scheduling.
    pub fn new() -> Self {
        Self::with_config(ProxyConfig::default())
    }

    /// A proxy with explicit scheduling parameters.
    pub fn with_config(config: ProxyConfig) -> Self {
        FeedEventsProxy {
            feeds: Mutex::new(HashMap::new()),
            config,
        }
    }

    /// Start watching a feed on behalf of one more user. Returns `true`
    /// when the feed was not previously watched.
    pub fn register(&mut self, url: &str) -> bool {
        let mut feeds = self.feeds.lock();
        match feeds.get_mut(url) {
            Some(state) => {
                state.watchers += 1;
                false
            }
            None => {
                feeds.insert(url.to_owned(), FeedState::new());
                true
            }
        }
    }

    /// Stop watching on behalf of one user. Returns `true` when the last
    /// watcher left and the feed was dropped.
    pub fn deregister(&mut self, url: &str) -> bool {
        let mut feeds = self.feeds.lock();
        if let Some(state) = feeds.get_mut(url) {
            state.watchers -= 1;
            if state.watchers == 0 {
                feeds.remove(url);
                return true;
            }
        }
        false
    }

    /// Number of distinct feeds being watched.
    pub fn watched_count(&self) -> usize {
        self.feeds.lock().len()
    }

    /// `true` when the URL is currently watched.
    pub fn is_watched(&self, url: &str) -> bool {
        self.feeds.lock().contains_key(url)
    }

    /// Watcher count of a feed.
    pub fn watchers(&self, url: &str) -> usize {
        self.feeds.lock().get(url).map_or(0, |s| s.watchers)
    }

    /// Poll every feed whose backoff interval has elapsed, publishing new
    /// items into `broker`.
    pub fn poll_due<F: FeedFetcher + ?Sized>(
        &self,
        fetcher: &F,
        broker: &Broker,
        day: u32,
    ) -> PollReport {
        self.poll_inner(fetcher, broker, day, false)
    }

    /// Poll every feed regardless of backoff.
    pub fn poll_all<F: FeedFetcher + ?Sized>(
        &self,
        fetcher: &F,
        broker: &Broker,
        day: u32,
    ) -> PollReport {
        self.poll_inner(fetcher, broker, day, true)
    }

    fn poll_inner<F: FeedFetcher + ?Sized>(
        &self,
        fetcher: &F,
        broker: &Broker,
        day: u32,
        force: bool,
    ) -> PollReport {
        let mut report = PollReport::default();
        let mut feeds = self.feeds.lock();
        // Deterministic order regardless of hash-map iteration.
        let mut urls: Vec<String> = feeds.keys().cloned().collect();
        urls.sort_unstable();
        for url in urls {
            let state = feeds.get_mut(&url).expect("url came from the map");
            if !force && state.next_poll_day > day {
                report.skipped += 1;
                continue;
            }
            report.polled += 1;
            let Some(document) = fetcher.fetch_feed(&url, day) else {
                report.unreachable += 1;
                state.next_poll_day = day + state.interval;
                continue;
            };
            let parsed = match parse_feed(&document) {
                Ok((format, feed)) => {
                    state.format = Some(format);
                    feed
                }
                Err(_) => {
                    report.parse_errors += 1;
                    state.next_poll_day = day + state.interval;
                    continue;
                }
            };
            let mut fresh = 0usize;
            for item in &parsed.items {
                if state.seen.contains(&item.guid) {
                    continue;
                }
                state.seen.insert(item.guid.clone());
                fresh += 1;
                let event = Event::builder()
                    .attr(TOPIC_ATTR, url.as_str())
                    .attr("title", item.title.as_str())
                    .attr("link", item.link.as_str())
                    .attr("body", item.description.as_str())
                    .attr("guid", item.guid.as_str())
                    .attr_opt("published_day", item.published_day.map(i64::from))
                    .build();
                // A publish can only fail on schema violation; the feed
                // event shape is fixed, so treat failure as a bug.
                broker
                    .publish(event)
                    .expect("feed events conform to the feed schema");
            }
            report.new_items += fresh;
            state.new_items_total += fresh as u64;
            // Adaptive backoff: active feeds poll daily, quiet feeds decay.
            if fresh > 0 {
                state.interval = 1;
            } else {
                state.interval = (state.interval * 2).min(self.config.max_interval);
            }
            state.next_poll_day = day + state.interval;
        }
        report
    }

    /// Total items ever published for a feed.
    pub fn items_published(&self, url: &str) -> u64 {
        self.feeds.lock().get(url).map_or(0, |s| s.new_items_total)
    }

    /// The dialect last seen at a feed URL.
    pub fn format_of(&self, url: &str) -> Option<FeedFormat> {
        self.feeds.lock().get(url).and_then(|s| s.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Feed, FeedItem};
    use crate::write::write_feed;
    use reef_pubsub::Filter;
    use std::collections::HashMap as Map;

    /// A scripted fetcher: url -> day -> document.
    struct Script(Map<String, Map<u32, String>>);

    impl FeedFetcher for Script {
        fn fetch_feed(&self, url: &str, day: u32) -> Option<String> {
            self.0.get(url).and_then(|days| {
                // Serve the most recent document at or before `day`.
                days.iter()
                    .filter(|(d, _)| **d <= day)
                    .max_by_key(|(d, _)| **d)
                    .map(|(_, doc)| doc.clone())
            })
        }
    }

    fn doc(items: &[(&str, Option<u32>)]) -> String {
        let feed = Feed {
            title: "t".into(),
            link: "http://l/".into(),
            description: "d".into(),
            items: items
                .iter()
                .map(|(guid, day)| FeedItem {
                    guid: (*guid).to_owned(),
                    title: format!("title {guid}"),
                    link: format!("http://l/{guid}"),
                    description: "body".into(),
                    published_day: *day,
                })
                .collect(),
        };
        write_feed(&feed, FeedFormat::Rss2)
    }

    #[test]
    fn new_items_publish_once() {
        let broker = Broker::new();
        let (me, inbox) = broker.register();
        broker.subscribe(me, Filter::topic("u1")).unwrap();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("u1");
        let mut days = Map::new();
        days.insert(0u32, doc(&[("a", Some(0))]));
        days.insert(1u32, doc(&[("a", Some(0)), ("b", Some(1))]));
        let script = Script(Map::from([("u1".to_owned(), days)]));

        let r0 = proxy.poll_all(&script, &broker, 0);
        assert_eq!(r0.new_items, 1);
        let r1 = proxy.poll_all(&script, &broker, 1);
        assert_eq!(r1.new_items, 1, "item `a` must not re-publish");
        let delivered = inbox.drain();
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].event.topic(), Some("u1"));
    }

    #[test]
    fn backoff_doubles_on_quiet_feeds_and_resets_on_activity() {
        let broker = Broker::new();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("u1");
        let mut days = Map::new();
        days.insert(0u32, doc(&[("a", None)]));
        days.insert(9u32, doc(&[("a", None), ("z", None)]));
        let script = Script(Map::from([("u1".to_owned(), days)]));

        assert_eq!(proxy.poll_due(&script, &broker, 0).polled, 1); // new item -> interval 1
        assert_eq!(proxy.poll_due(&script, &broker, 1).polled, 1); // quiet -> interval 2
        assert_eq!(proxy.poll_due(&script, &broker, 2).skipped, 1); // not due
        assert_eq!(proxy.poll_due(&script, &broker, 3).polled, 1); // quiet -> interval 4
        assert_eq!(proxy.poll_due(&script, &broker, 5).skipped, 1);
        let r = proxy.poll_due(&script, &broker, 9);
        assert_eq!(r.new_items, 1); // resets interval to 1
        assert_eq!(proxy.poll_due(&script, &broker, 10).polled, 1);
    }

    #[test]
    fn watcher_refcounting() {
        let mut proxy = FeedEventsProxy::new();
        assert!(proxy.register("u"));
        assert!(!proxy.register("u"));
        assert_eq!(proxy.watchers("u"), 2);
        assert!(!proxy.deregister("u"));
        assert!(proxy.deregister("u"));
        assert!(!proxy.is_watched("u"));
    }

    #[test]
    fn parse_errors_and_unreachable_are_counted() {
        let broker = Broker::new();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("bad");
        proxy.register("gone");
        let mut days = Map::new();
        days.insert(0u32, "<not-a-feed/>".to_owned());
        let script = Script(Map::from([("bad".to_owned(), days)]));
        let r = proxy.poll_all(&script, &broker, 0);
        assert_eq!(r.parse_errors, 1);
        assert_eq!(r.unreachable, 1);
        assert_eq!(r.new_items, 0);
    }

    #[test]
    fn format_is_recorded() {
        let broker = Broker::new();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("u");
        let mut days = Map::new();
        days.insert(0u32, doc(&[("a", None)]));
        let script = Script(Map::from([("u".to_owned(), days)]));
        proxy.poll_all(&script, &broker, 0);
        assert_eq!(proxy.format_of("u"), Some(FeedFormat::Rss2));
    }

    #[test]
    fn published_events_validate_against_feed_schema() {
        let broker = Broker::builder()
            .schema(reef_pubsub::feed_events_schema())
            .build();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("u");
        let mut days = Map::new();
        days.insert(0u32, doc(&[("a", Some(3))]));
        let script = Script(Map::from([("u".to_owned(), days)]));
        let r = proxy.poll_all(&script, &broker, 0);
        assert_eq!(r.new_items, 1);
    }

    #[test]
    fn closure_fetchers_work() {
        let broker = Broker::new();
        let mut proxy = FeedEventsProxy::new();
        proxy.register("u");
        let fetcher = |_: &str, _: u32| Some(doc(&[("x", None)]));
        let r = proxy.poll_all(&fetcher, &broker, 0);
        assert_eq!(r.new_items, 1);
    }
}
