//! A minimal XML parser, written from scratch.
//!
//! Web feeds come in three XML dialects (RSS 2.0, Atom 1.0, RSS 1.0/RDF),
//! so the feed substrate needs an XML parser; pulling in a full external
//! one is outside the approved dependency set, and feeds only need a
//! well-formed subset: elements, attributes, text, CDATA, comments,
//! processing instructions and the five predefined entities. No DTDs, no
//! namespace resolution (prefixes are kept verbatim in names).
//!
//! Two layers:
//! * [`XmlPullParser`] — streaming event reader;
//! * [`parse_document`] — a small DOM ([`XmlNode`]) built on top, which is
//!   what the feed parsers consume.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A close tag did not match the open tag.
    MismatchedTag {
        /// Tag that was open.
        expected: String,
        /// Close tag encountered.
        found: String,
    },
    /// Malformed syntax at a byte offset.
    Malformed {
        /// Byte offset of the error.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
    /// The document had no root element.
    NoRoot,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of xml input"),
            XmlError::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::Malformed { at, what } => write!(f, "malformed xml at byte {at}: {what}"),
            XmlError::NoRoot => write!(f, "document has no root element"),
        }
    }
}

impl Error for XmlError {}

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v">` or `<name/>`.
    StartElement {
        /// Element name, prefix included (`rdf:RDF`).
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// `true` for `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entity-decoded, CDATA included verbatim).
    Text(String),
}

/// Streaming XML reader.
#[derive(Debug)]
pub struct XmlPullParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XmlPullParser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlPullParser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, delim: &str) -> Result<(), XmlError> {
        let bytes = delim.as_bytes();
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with(bytes) {
                self.pos += bytes.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof)
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Malformed {
                at: start,
                what: "expected a name",
            });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Produce the next event, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns an [`XmlError`] on malformed markup or premature end of
    /// input.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.peek() != Some(b'<') {
                // Text run until next '<'.
                let start = self.pos;
                while self.pos < self.input.len() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let decoded = decode_entities(&raw);
                if decoded.trim().is_empty() {
                    continue;
                }
                return Ok(Some(XmlEvent::Text(decoded)));
            }
            // '<' — decide what construct this is.
            if self.starts_with("<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                self.skip_until("]]>")?;
                let text = String::from_utf8_lossy(&self.input[start..self.pos - 3]).into_owned();
                if text.is_empty() {
                    continue;
                }
                return Ok(Some(XmlEvent::Text(text)));
            }
            if self.starts_with("<!") {
                // DOCTYPE or other declaration — skip to '>'.
                self.skip_until(">")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::Malformed {
                        at: self.pos,
                        what: "expected '>' after close-tag name",
                    });
                }
                self.pos += 1;
                return Ok(Some(XmlEvent::EndElement { name }));
            }
            // Start tag.
            self.pos += 1;
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_whitespace();
                match self.peek() {
                    Some(b'>') => {
                        self.pos += 1;
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: false,
                        }));
                    }
                    Some(b'/') => {
                        self.pos += 1;
                        if self.peek() != Some(b'>') {
                            return Err(XmlError::Malformed {
                                at: self.pos,
                                what: "expected '>' after '/'",
                            });
                        }
                        self.pos += 1;
                        return Ok(Some(XmlEvent::StartElement {
                            name,
                            attributes,
                            self_closing: true,
                        }));
                    }
                    Some(_) => {
                        let attr_name = self.read_name()?;
                        self.skip_whitespace();
                        if self.peek() != Some(b'=') {
                            return Err(XmlError::Malformed {
                                at: self.pos,
                                what: "expected '=' in attribute",
                            });
                        }
                        self.pos += 1;
                        self.skip_whitespace();
                        let quote = self.peek().ok_or(XmlError::UnexpectedEof)?;
                        if quote != b'"' && quote != b'\'' {
                            return Err(XmlError::Malformed {
                                at: self.pos,
                                what: "attribute value must be quoted",
                            });
                        }
                        self.pos += 1;
                        let start = self.pos;
                        while self.pos < self.input.len() && self.input[self.pos] != quote {
                            self.pos += 1;
                        }
                        if self.pos >= self.input.len() {
                            return Err(XmlError::UnexpectedEof);
                        }
                        let raw =
                            String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                        self.pos += 1;
                        attributes.push((attr_name, decode_entities(&raw)));
                    }
                    None => return Err(XmlError::UnexpectedEof),
                }
            }
        }
    }
}

/// Decode the five predefined entities plus decimal/hex character
/// references. Unknown entities pass through verbatim.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = match rest.find(';') {
            Some(i) if i <= 10 => i,
            _ => {
                out.push('&');
                rest = &rest[1..];
                continue;
            }
        };
        let entity = &rest[1..semi];
        let decoded = match entity {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if entity.starts_with('#') => {
                entity[1..].parse::<u32>().ok().and_then(char::from_u32)
            }
            _ => None,
        };
        match decoded {
            Some(c) => {
                out.push(c);
                rest = &rest[semi + 1..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Encode text for inclusion in XML content or attribute values.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Element name (prefix included).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Concatenated direct text content.
    pub text: String,
}

impl XmlNode {
    /// First child with the given name (prefix-insensitive: `link` matches
    /// `atom:link`).
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| local_name(&c.name) == name)
    }

    /// All children with the given local name.
    pub fn children_named<'n>(&'n self, name: &'n str) -> impl Iterator<Item = &'n XmlNode> {
        self.children
            .iter()
            .filter(move |c| local_name(&c.name) == name)
    }

    /// Text of the first child with the given local name, trimmed.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(|c| c.text.trim().to_owned())
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name || local_name(k) == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The part of a name after the namespace prefix.
pub fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Parse a whole document into its root element.
///
/// # Errors
///
/// Returns an [`XmlError`] on malformed markup, tag mismatches, or a
/// missing root element.
pub fn parse_document(input: &str) -> Result<XmlNode, XmlError> {
    let mut parser = XmlPullParser::new(input);
    let mut stack: Vec<XmlNode> = Vec::new();
    let mut root: Option<XmlNode> = None;
    while let Some(event) = parser.next_event()? {
        match event {
            XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
            } => {
                let node = XmlNode {
                    name,
                    attributes,
                    children: Vec::new(),
                    text: String::new(),
                };
                if self_closing {
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None if root.is_none() => root = Some(node),
                        None => {
                            return Err(XmlError::Malformed {
                                at: parser.position(),
                                what: "content after the root element",
                            })
                        }
                    }
                } else {
                    stack.push(node);
                }
            }
            XmlEvent::EndElement { name } => {
                let node = stack.pop().ok_or(XmlError::Malformed {
                    at: parser.position(),
                    what: "close tag without open tag",
                })?;
                if node.name != name {
                    return Err(XmlError::MismatchedTag {
                        expected: node.name,
                        found: name,
                    });
                }
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None if root.is_none() => root = Some(node),
                    None => {
                        return Err(XmlError::Malformed {
                            at: parser.position(),
                            what: "multiple root elements",
                        })
                    }
                }
            }
            XmlEvent::Text(text) => {
                if let Some(top) = stack.last_mut() {
                    if !top.text.is_empty() {
                        top.text.push(' ');
                    }
                    top.text.push_str(text.trim());
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(XmlError::UnexpectedEof);
    }
    root.ok_or(XmlError::NoRoot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse_document(r#"<a x="1"><b>hi</b><b>yo</b><c/></a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attr("x"), Some("1"));
        assert_eq!(doc.children.len(), 3);
        assert_eq!(doc.child_text("b"), Some("hi".to_owned()));
        assert_eq!(doc.children_named("b").count(), 2);
    }

    #[test]
    fn skips_prolog_comments_and_doctype() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?><!DOCTYPE rss><!-- hello --><rss><x>1</x></rss>",
        )
        .unwrap();
        assert_eq!(doc.name, "rss");
        assert_eq!(doc.child_text("x"), Some("1".to_owned()));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let doc = parse_document("<d><![CDATA[a <b> & c]]></d>").unwrap();
        assert_eq!(doc.text, "a <b> & c");
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let doc = parse_document(r#"<d t="a&amp;b">x &lt; y &#65; &#x42;</d>"#).unwrap();
        assert_eq!(doc.attr("t"), Some("a&b"));
        assert_eq!(doc.text, "x < y A B");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(decode_entities("a &nbsp; b"), "a &nbsp; b");
        assert_eq!(decode_entities("50% & more"), "50% & more");
    }

    #[test]
    fn encode_round_trips_through_decode() {
        let original = r#"<tag> & "quotes" 'apos'"#;
        assert_eq!(decode_entities(&encode_entities(original)), original);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(matches!(
            parse_document("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn truncated_input_errors() {
        assert!(matches!(
            parse_document("<a><b>"),
            Err(XmlError::UnexpectedEof)
        ));
        assert!(matches!(
            parse_document("<a x="),
            Err(XmlError::UnexpectedEof)
        ));
    }

    #[test]
    fn empty_document_has_no_root() {
        assert!(matches!(parse_document("   "), Err(XmlError::NoRoot)));
        assert!(matches!(
            parse_document("<!-- only comment -->"),
            Err(XmlError::NoRoot)
        ));
    }

    #[test]
    fn namespace_prefixes_are_kept_and_matched_locally() {
        let doc = parse_document(r#"<rdf:RDF><rss:item>x</rss:item></rdf:RDF>"#).unwrap();
        assert_eq!(doc.name, "rdf:RDF");
        assert!(doc.child("item").is_some());
        assert_eq!(local_name("rdf:RDF"), "RDF");
    }

    #[test]
    fn self_closing_root() {
        let doc = parse_document("<alone/>").unwrap();
        assert_eq!(doc.name, "alone");
        assert!(doc.children.is_empty());
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(parse_document("<a></a><b></b>").is_err());
    }

    #[test]
    fn text_accumulates_across_children() {
        let doc = parse_document("<p>one<b>bold</b>two</p>").unwrap();
        assert_eq!(doc.text, "one two");
        assert_eq!(doc.child_text("b"), Some("bold".to_owned()));
    }

    #[test]
    fn attribute_with_single_quotes() {
        let doc = parse_document("<a href='http://x/'>t</a>").unwrap();
        assert_eq!(doc.attr("href"), Some("http://x/"));
    }
}
