//! Parsing RSS 2.0, Atom 1.0 and RSS 1.0 (RDF) documents into [`Feed`].

use crate::model::{Feed, FeedFormat, FeedItem};
use crate::xml::{local_name, parse_document, XmlError, XmlNode};
use std::error::Error;
use std::fmt;

/// Errors produced while parsing a feed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The root element is not a known feed dialect.
    UnknownFormat {
        /// The root element name encountered.
        root: String,
    },
    /// An RSS document is missing its `<channel>`.
    MissingChannel,
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Xml(e) => write!(f, "feed is not well-formed xml: {e}"),
            FeedError::UnknownFormat { root } => {
                write!(f, "root element `{root}` is not a known feed format")
            }
            FeedError::MissingChannel => write!(f, "rss document has no channel element"),
        }
    }
}

impl Error for FeedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FeedError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for FeedError {
    fn from(e: XmlError) -> Self {
        FeedError::Xml(e)
    }
}

/// Sniff the dialect of a feed document without fully parsing it.
///
/// # Errors
///
/// Returns [`FeedError::Xml`] on malformed XML and
/// [`FeedError::UnknownFormat`] for non-feed documents.
pub fn sniff_format(input: &str) -> Result<FeedFormat, FeedError> {
    let root = parse_document(input)?;
    format_of_root(&root)
}

fn format_of_root(root: &XmlNode) -> Result<FeedFormat, FeedError> {
    match local_name(&root.name) {
        "rss" => Ok(FeedFormat::Rss2),
        "feed" => Ok(FeedFormat::Atom),
        "RDF" => Ok(FeedFormat::Rdf),
        other => Err(FeedError::UnknownFormat {
            root: other.to_owned(),
        }),
    }
}

/// Parse a feed document of any supported dialect.
///
/// # Errors
///
/// Returns [`FeedError::Xml`] on malformed XML,
/// [`FeedError::UnknownFormat`] for unrecognized roots, and
/// [`FeedError::MissingChannel`] for RSS documents without a channel.
///
/// # Examples
///
/// ```
/// use reef_feeds::{parse_feed, FeedFormat};
///
/// let xml = r#"<rss version="2.0"><channel><title>T</title>
///   <item><title>hi</title><link>http://x/1</link><guid>g1</guid></item>
/// </channel></rss>"#;
/// let (format, feed) = parse_feed(xml)?;
/// assert_eq!(format, FeedFormat::Rss2);
/// assert_eq!(feed.items.len(), 1);
/// # Ok::<(), reef_feeds::FeedError>(())
/// ```
pub fn parse_feed(input: &str) -> Result<(FeedFormat, Feed), FeedError> {
    let root = parse_document(input)?;
    let format = format_of_root(&root)?;
    let feed = match format {
        FeedFormat::Rss2 => parse_rss2(&root)?,
        FeedFormat::Atom => parse_atom(&root),
        FeedFormat::Rdf => parse_rdf(&root),
    };
    Ok((format, feed))
}

fn parse_item_common(node: &XmlNode) -> FeedItem {
    let title = node.child_text("title").unwrap_or_default();
    let link = node.child_text("link").unwrap_or_default();
    let description = node
        .child_text("description")
        .or_else(|| node.child_text("summary"))
        .or_else(|| node.child_text("content"))
        .unwrap_or_default();
    let guid = node
        .child_text("guid")
        .or_else(|| node.child_text("id"))
        .filter(|g| !g.is_empty())
        .unwrap_or_else(|| link.clone());
    let published_day = node
        .child_text("publishedDay")
        .or_else(|| node.child_text("pubDate"))
        .or_else(|| node.child_text("published"))
        .or_else(|| node.child_text("date"))
        .and_then(|d| parse_day(&d));
    FeedItem {
        guid,
        title,
        link,
        description,
        published_day,
    }
}

/// Extract a day number from a date string. The simulated Web stamps
/// integer days (`day 17`); anything unparseable yields `None`.
fn parse_day(s: &str) -> Option<u32> {
    let digits: String = s.chars().filter(char::is_ascii_digit).collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

fn parse_rss2(root: &XmlNode) -> Result<Feed, FeedError> {
    let channel = root.child("channel").ok_or(FeedError::MissingChannel)?;
    Ok(Feed {
        title: channel.child_text("title").unwrap_or_default(),
        link: channel.child_text("link").unwrap_or_default(),
        description: channel.child_text("description").unwrap_or_default(),
        items: channel
            .children_named("item")
            .map(parse_item_common)
            .collect(),
    })
}

fn parse_atom(root: &XmlNode) -> Feed {
    // Atom links live in href attributes.
    let link = root
        .children_named("link")
        .find_map(|l| l.attr("href"))
        .unwrap_or_default()
        .to_owned();
    let items = root
        .children_named("entry")
        .map(|entry| {
            let mut item = parse_item_common(entry);
            if item.link.is_empty() {
                if let Some(href) = entry.children_named("link").find_map(|l| l.attr("href")) {
                    item.link = href.to_owned();
                    if item.guid.is_empty() {
                        item.guid = item.link.clone();
                    }
                }
            }
            item
        })
        .collect();
    Feed {
        title: root.child_text("title").unwrap_or_default(),
        link,
        description: root.child_text("subtitle").unwrap_or_default(),
        items,
    }
}

fn parse_rdf(root: &XmlNode) -> Feed {
    let channel = root.child("channel");
    let items = root
        .children_named("item")
        .map(|node| {
            let mut item = parse_item_common(node);
            // RDF identifies items by rdf:about, which outranks the
            // link-based fallback of the common parser.
            if let Some(about) = node.attr("about") {
                if node.child_text("guid").is_none_or(|g| g.is_empty()) {
                    item.guid = about.to_owned();
                }
            }
            item
        })
        .collect();
    Feed {
        title: channel
            .and_then(|c| c.child_text("title"))
            .unwrap_or_default(),
        link: channel
            .and_then(|c| c.child_text("link"))
            .unwrap_or_default(),
        description: channel
            .and_then(|c| c.child_text("description"))
            .unwrap_or_default(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RSS: &str = r#"<?xml version="1.0"?>
<rss version="2.0"><channel>
  <title>News</title><link>http://n.example/</link><description>D</description>
  <item><title>One</title><link>http://n.example/1</link><guid>g1</guid>
        <description>first</description><publishedDay>3</publishedDay></item>
  <item><title>Two</title><link>http://n.example/2</link></item>
</channel></rss>"#;

    const ATOM: &str = r#"<feed xmlns="http://www.w3.org/2005/Atom">
  <title>Blog</title><subtitle>S</subtitle>
  <link href="http://b.example/" rel="alternate"/>
  <entry><title>E1</title><id>a1</id><link href="http://b.example/e1"/>
         <summary>sum</summary><published>day 9</published></entry>
</feed>"#;

    const RDF: &str = r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <channel rdf:about="http://r.example/"><title>RDF Feed</title>
    <link>http://r.example/</link><description>rd</description></channel>
  <item rdf:about="http://r.example/i1"><title>I1</title>
    <link>http://r.example/i1</link><description>d1</description></item>
</rdf:RDF>"#;

    #[test]
    fn sniffs_all_three_formats() {
        assert_eq!(sniff_format(RSS).unwrap(), FeedFormat::Rss2);
        assert_eq!(sniff_format(ATOM).unwrap(), FeedFormat::Atom);
        assert_eq!(sniff_format(RDF).unwrap(), FeedFormat::Rdf);
    }

    #[test]
    fn parses_rss2_channel_and_items() {
        let (f, feed) = parse_feed(RSS).unwrap();
        assert_eq!(f, FeedFormat::Rss2);
        assert_eq!(feed.title, "News");
        assert_eq!(feed.items.len(), 2);
        assert_eq!(feed.items[0].guid, "g1");
        assert_eq!(feed.items[0].published_day, Some(3));
        // Missing guid falls back to link.
        assert_eq!(feed.items[1].guid, "http://n.example/2");
        assert_eq!(feed.items[1].published_day, None);
    }

    #[test]
    fn parses_atom_entries_with_href_links() {
        let (f, feed) = parse_feed(ATOM).unwrap();
        assert_eq!(f, FeedFormat::Atom);
        assert_eq!(feed.title, "Blog");
        assert_eq!(feed.link, "http://b.example/");
        assert_eq!(feed.items.len(), 1);
        assert_eq!(feed.items[0].link, "http://b.example/e1");
        assert_eq!(feed.items[0].guid, "a1");
        assert_eq!(feed.items[0].description, "sum");
        assert_eq!(feed.items[0].published_day, Some(9));
    }

    #[test]
    fn parses_rdf_items_outside_channel() {
        let (f, feed) = parse_feed(RDF).unwrap();
        assert_eq!(f, FeedFormat::Rdf);
        assert_eq!(feed.title, "RDF Feed");
        assert_eq!(feed.items.len(), 1);
        assert_eq!(feed.items[0].guid, "http://r.example/i1");
    }

    #[test]
    fn non_feed_document_is_unknown_format() {
        assert!(matches!(
            parse_feed("<html><body/></html>"),
            Err(FeedError::UnknownFormat { .. })
        ));
    }

    #[test]
    fn rss_without_channel_errors() {
        assert!(matches!(
            parse_feed(r#"<rss version="2.0"></rss>"#),
            Err(FeedError::MissingChannel)
        ));
    }

    #[test]
    fn malformed_xml_is_reported() {
        assert!(matches!(
            parse_feed("<rss><channel>"),
            Err(FeedError::Xml(_))
        ));
    }

    #[test]
    fn day_parser_handles_plain_and_decorated() {
        assert_eq!(parse_day("17"), Some(17));
        assert_eq!(parse_day("day 17"), Some(17));
        assert_eq!(parse_day("none"), None);
    }
}
