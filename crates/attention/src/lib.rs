//! # reef-attention — attention capture, storage and parsing
//!
//! "In the extreme case, the only input to this system can be user
//! attention, which is an encoding of some of the actions that the user
//! performs." (§2.1) This crate is the attention half of the Reef
//! architecture:
//!
//! * [`Click`] / [`ClickBatch`] — the unit of attention data and its
//!   upload format (§3.1);
//! * [`BrowserRecorder`] — the browser-extension recorder: buffering,
//!   batching, upload accounting;
//! * [`ClickStore`] — the server-side click database with per-user and
//!   per-host indexes;
//! * [`DurableClickStore`] — the same store behind a segmented,
//!   checksummed write-ahead log with snapshot compaction, so attention
//!   data survives daemon restarts and crashes;
//! * [`AttentionParser`] — the schema-driven token scanner turning
//!   attention into *valid name-value pairs* for any well-defined
//!   publish-subscribe interface (stock symbols, feed URLs, keywords);
//! * [`ReactionModel`] — the simulated user's response to delivered
//!   notifications, closing the feedback loop.
//!
//! ```
//! use reef_attention::AttentionParser;
//! use reef_pubsub::stock_quote_schema;
//!
//! let parser = AttentionParser::new(stock_quote_schema(["ACME"]));
//! let pairs = parser.parse_text("acme shares rallied today");
//! assert_eq!(pairs.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod click;
pub mod parser;
pub mod persist;
pub mod reaction;
pub mod recorder;
pub mod store;

pub use click::{host_of, Click, ClickBatch};
pub use parser::{looks_like_feed_url, AttentionParser, CandidatePair, TokenSource};
pub use persist::{
    DurableClickStore, PersistConfig, PersistStats, DEFAULT_SEGMENT_BYTES, DEFAULT_SNAPSHOT_EVERY,
};
pub use reaction::{Reaction, ReactionModel};
pub use recorder::{AttentionRecorder, BrowserRecorder, NullRecorder, RecorderStats};
pub use store::{ClickStore, HostStats, UploadReceipt};
