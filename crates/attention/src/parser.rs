//! The attention parser: from raw attention to valid name-value pairs.
//!
//! "This raw data is processed by an attention parser, which looks for
//! tokens that match the specification of name-value pairs of the
//! publish-subscribe system we are given. For example, in a
//! publish-subscribe system that delivers stock quotes, the attention
//! parser would be looking for known stock symbols in the attention data.
//! Other examples of tokens are: feed URLs … or any commonly occurring
//! keywords" (§2.2).
//!
//! [`AttentionParser`] is schema-driven: given a [`Schema`], it scans text
//! and URLs for tokens that form *valid* pairs under that schema —
//! enumerated-domain members (stock symbols), feed URLs for topic
//! attributes, and free keywords for open content attributes. This is the
//! paper's §2.1 generality claim made concrete: one parser, any
//! well-defined pub/sub interface.

use reef_pubsub::{Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Where a candidate token was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenSource {
    /// Found in page/document text.
    Text,
    /// Found in a clicked or embedded URL.
    Url,
}

/// A name-value pair extracted from attention data, already validated
/// against the parser's schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidatePair {
    /// Attribute name of the target schema.
    pub attr: String,
    /// Extracted value.
    pub value: Value,
    /// Provenance of the token.
    pub source: TokenSource,
}

impl fmt::Display for CandidatePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={} ({:?})", self.attr, self.value, self.source)
    }
}

/// File extensions and path markers that identify feed URLs.
const FEED_MARKERS: [&str; 6] = [".rss", ".atom", ".rdf", "/feed", "feed.xml", "/rss"];

/// `true` when a URL looks like a Web feed (autodiscovery by URL shape;
/// page-level `<link>` autodiscovery is the crawler's job).
pub fn looks_like_feed_url(url: &str) -> bool {
    let lower = url.to_lowercase();
    FEED_MARKERS.iter().any(|m| lower.contains(m))
}

/// Schema-driven token scanner.
#[derive(Debug, Clone)]
pub struct AttentionParser {
    schema: Schema,
    /// Uppercased domain tokens per attribute, for case-insensitive scans.
    domain_attrs: Vec<(String, BTreeSet<String>)>,
    /// String attributes named like topics/URLs that accept feed URLs.
    topic_attrs: Vec<String>,
}

impl AttentionParser {
    /// Build a parser for one publish-subscribe interface.
    pub fn new(schema: Schema) -> Self {
        let mut domain_attrs = Vec::new();
        let mut topic_attrs = Vec::new();
        for (name, spec) in schema.attrs() {
            if let Some(domain) = &spec.domain {
                domain_attrs.push((
                    name.to_owned(),
                    domain.iter().map(|s| s.to_uppercase()).collect(),
                ));
            }
            if name == "topic" || name.ends_with("url") || name.ends_with("uri") {
                topic_attrs.push(name.to_owned());
            }
        }
        AttentionParser {
            schema,
            domain_attrs,
            topic_attrs,
        }
    }

    /// The schema this parser targets.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Scan free text for tokens that form valid pairs: enumerated-domain
    /// members, matched case-insensitively.
    pub fn parse_text(&self, text: &str) -> Vec<CandidatePair> {
        let mut out = Vec::new();
        for raw in text.split(|c: char| !c.is_alphanumeric() && c != '.') {
            if raw.is_empty() {
                continue;
            }
            let upper = raw.to_uppercase();
            for (attr, domain) in &self.domain_attrs {
                if domain.contains(&upper) {
                    // Emit the canonical (domain) casing.
                    let value = Value::from(upper.as_str());
                    if self.schema.validate_pair(attr, &value).is_ok() {
                        out.push(CandidatePair {
                            attr: attr.clone(),
                            value,
                            source: TokenSource::Text,
                        });
                    }
                }
            }
        }
        out
    }

    /// Scan a URL: feed-shaped URLs become candidates for topic/url
    /// attributes.
    pub fn parse_url(&self, url: &str) -> Vec<CandidatePair> {
        let mut out = Vec::new();
        if looks_like_feed_url(url) {
            for attr in &self.topic_attrs {
                let value = Value::from(url);
                if self.schema.validate_pair(attr, &value).is_ok() {
                    out.push(CandidatePair {
                        attr: attr.clone(),
                        value,
                        source: TokenSource::Url,
                    });
                }
            }
        }
        out
    }

    /// Scan both a URL and associated text, deduplicating identical pairs.
    pub fn parse_click(&self, url: &str, text: &str) -> Vec<CandidatePair> {
        let mut out = self.parse_url(url);
        out.extend(self.parse_text(text));
        out.dedup_by(|a, b| a.attr == b.attr && a.value == b.value);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_pubsub::{feed_events_schema, stock_quote_schema};

    #[test]
    fn finds_known_stock_symbols_case_insensitively() {
        let parser = AttentionParser::new(stock_quote_schema(["ACME", "GLOBEX"]));
        let pairs = parser.parse_text("I read about acme and Globex today, not initech.");
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.attr == "symbol"));
        assert!(pairs.iter().any(|p| p.value == Value::from("ACME")));
        assert!(pairs.iter().any(|p| p.value == Value::from("GLOBEX")));
    }

    #[test]
    fn unknown_symbols_are_rejected() {
        let parser = AttentionParser::new(stock_quote_schema(["ACME"]));
        assert!(parser.parse_text("ENRON WORLDCOM").is_empty());
    }

    #[test]
    fn feed_urls_become_topic_candidates() {
        let parser = AttentionParser::new(feed_events_schema());
        let pairs = parser.parse_url("http://news.example/feed0.rss");
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].attr, "topic");
        assert_eq!(pairs[0].source, TokenSource::Url);
    }

    #[test]
    fn ordinary_urls_are_not_feeds() {
        let parser = AttentionParser::new(feed_events_schema());
        assert!(parser
            .parse_url("http://news.example/story.html")
            .is_empty());
    }

    #[test]
    fn feed_url_heuristics() {
        for url in [
            "http://x/f.rss",
            "http://x/a.atom",
            "http://x/b.rdf",
            "http://x/feed/",
            "http://x/feed.xml",
            "http://x/RSS",
        ] {
            assert!(looks_like_feed_url(url), "{url}");
        }
        assert!(!looks_like_feed_url("http://x/page.html"));
    }

    #[test]
    fn parse_click_merges_and_dedups() {
        let parser = AttentionParser::new(stock_quote_schema(["ACME"]));
        let pairs = parser.parse_click("http://q.example/acme", "ACME ACME rally");
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn parser_is_schema_generic() {
        // The same parser code serves a completely different interface.
        let weather = reef_pubsub::Schema::builder("weather")
            .attr(
                "city",
                reef_pubsub::AttrSpec::of(reef_pubsub::ValueType::Str)
                    .with_domain(["TROMSO", "OSLO"]),
            )
            .build();
        let parser = AttentionParser::new(weather);
        let pairs = parser.parse_text("flights to tromso are delayed");
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].attr, "city");
    }
}
