//! User reactions to delivered notifications — the feedback half of the
//! closed loop.
//!
//! "Whether the user appreciates the recommendations or not is determined
//! by his attention to the delivered events. For instance, clicking of a
//! link contained in an event will be captured by the attention recorder
//! and can be viewed by the recommendation service as positive feedback."
//! (§2.2) The sidebar lets users click an event, delete it, or ignore it
//! until it expires (§3.1).
//!
//! [`ReactionModel`] is the simulated user's policy: how likely each
//! reaction is given whether the event actually matches the user's
//! interests. The frontend (in `reef-core`) samples it per displayed
//! event.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a user did with a sidebar event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reaction {
    /// Clicked through — positive implicit feedback.
    Click,
    /// Deleted — explicit negative feedback.
    Delete,
    /// Ignored; the event will expire.
    Ignore,
}

/// Probabilistic reaction policy conditioned on event relevance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactionModel {
    /// P(click | event is relevant to the user).
    pub click_when_relevant: f64,
    /// P(delete | relevant).
    pub delete_when_relevant: f64,
    /// P(click | irrelevant).
    pub click_when_irrelevant: f64,
    /// P(delete | irrelevant).
    pub delete_when_irrelevant: f64,
}

impl Default for ReactionModel {
    fn default() -> Self {
        ReactionModel {
            click_when_relevant: 0.55,
            delete_when_relevant: 0.05,
            click_when_irrelevant: 0.04,
            delete_when_irrelevant: 0.35,
        }
    }
}

impl ReactionModel {
    /// Sample a reaction given whether the event is relevant.
    pub fn decide<R: Rng + ?Sized>(&self, rng: &mut R, relevant: bool) -> Reaction {
        let (p_click, p_delete) = if relevant {
            (self.click_when_relevant, self.delete_when_relevant)
        } else {
            (self.click_when_irrelevant, self.delete_when_irrelevant)
        };
        let x: f64 = rng.gen();
        if x < p_click {
            Reaction::Click
        } else if x < p_click + p_delete {
            Reaction::Delete
        } else {
            Reaction::Ignore
        }
    }

    /// A model that clicks relevant events always and deletes irrelevant
    /// ones always — useful for deterministic tests.
    pub fn oracle() -> Self {
        ReactionModel {
            click_when_relevant: 1.0,
            delete_when_relevant: 0.0,
            click_when_irrelevant: 0.0,
            delete_when_irrelevant: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_is_deterministic() {
        let m = ReactionModel::oracle();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.decide(&mut rng, true), Reaction::Click);
            assert_eq!(m.decide(&mut rng, false), Reaction::Delete);
        }
    }

    #[test]
    fn relevant_events_attract_more_clicks() {
        let m = ReactionModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let clicks = |relevant: bool, rng: &mut StdRng| {
            (0..5000)
                .filter(|_| m.decide(rng, relevant) == Reaction::Click)
                .count()
        };
        let relevant_clicks = clicks(true, &mut rng);
        let irrelevant_clicks = clicks(false, &mut rng);
        assert!(relevant_clicks > irrelevant_clicks * 3);
    }

    #[test]
    fn irrelevant_events_attract_more_deletes() {
        let m = ReactionModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let deletes = |relevant: bool, rng: &mut StdRng| {
            (0..5000)
                .filter(|_| m.decide(rng, relevant) == Reaction::Delete)
                .count()
        };
        assert!(deletes(false, &mut rng) > deletes(true, &mut rng) * 2);
    }
}
