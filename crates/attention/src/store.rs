//! The click database.
//!
//! "When clicks arrive, they are stored in a database and the URIs in them
//! are batched for periodic crawling." (§3.1) The centralized Reef server
//! keeps one of these for all users; a distributed Reef peer keeps one for
//! its own user only.

use crate::click::{host_of, Click, ClickBatch};
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Receipt returned by [`ClickStore::ingest_upload`]: what the server
/// accepted from one wire upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadReceipt {
    /// The uploading user cookie.
    pub user: UserId,
    /// Clicks stored from this batch.
    pub accepted: u64,
    /// Clicks rejected (user cookie mismatch within the batch).
    pub rejected: u64,
    /// Size of the upload as it actually crossed the wire: the frame
    /// byte count when the transport threads it through
    /// ([`ClickStore::ingest_upload_sized`]), the batch's JSON size as a
    /// fallback ([`ClickStore::ingest_upload`]).
    pub wire_bytes: u64,
    /// Total clicks in the store after ingestion.
    pub total_stored: u64,
}

/// Per-host visit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HostStats {
    /// Requests to the host.
    pub visits: u64,
    /// Distinct users who visited.
    pub users: u32,
    /// First day the host was seen.
    pub first_day: u32,
    /// Last day the host was seen.
    pub last_day: u32,
}

/// In-memory click store with the per-user and per-host indexes the
/// analysis pipeline queries.
///
/// Equality compares full contents (per-user click logs and every
/// derived index) — the oracle comparison the persistence tests build on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClickStore {
    by_user: HashMap<UserId, Vec<Click>>,
    host_stats: BTreeMap<String, HostStats>,
    host_users: HashMap<String, BTreeSet<UserId>>,
    total: u64,
}

impl ClickStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one click.
    pub fn insert(&mut self, click: Click) {
        let host = click.host().to_owned();
        let users = self.host_users.entry(host.clone()).or_default();
        users.insert(click.user);
        let n_users = users.len() as u32;
        let entry = self.host_stats.entry(host).or_insert(HostStats {
            visits: 0,
            users: 0,
            first_day: click.day,
            last_day: click.day,
        });
        entry.visits += 1;
        entry.users = n_users;
        entry.first_day = entry.first_day.min(click.day);
        entry.last_day = entry.last_day.max(click.day);
        self.total += 1;
        self.by_user.entry(click.user).or_default().push(click);
    }

    /// Ingest an uploaded batch.
    pub fn insert_batch(&mut self, batch: ClickBatch) {
        for click in batch.clicks {
            self.insert(click);
        }
    }

    /// Server-side ingestion of an upload arriving over the wire (the
    /// extension → server path of §3.1): validates that every click in the
    /// batch belongs to the uploading user cookie, stores the valid ones,
    /// and returns an accounting receipt for the transport layer.
    pub fn ingest_upload(&mut self, batch: ClickBatch) -> UploadReceipt {
        let wire_bytes = batch.wire_size() as u64;
        self.ingest_upload_sized(batch, wire_bytes)
    }

    /// Like [`ClickStore::ingest_upload`], but reports `wire_bytes` in
    /// the receipt as the actual frame size the transport measured —
    /// binary and compressed codecs ship far fewer bytes than the batch's
    /// JSON rendering, and the receipt must account for what really
    /// crossed the wire.
    pub fn ingest_upload_sized(&mut self, batch: ClickBatch, wire_bytes: u64) -> UploadReceipt {
        let user = batch.user;
        let (accepted, rejected) = batch.partition_valid();
        let n_accepted = accepted.len() as u64;
        self.extend(accepted);
        UploadReceipt {
            user,
            accepted: n_accepted,
            rejected,
            wire_bytes,
            total_stored: self.total,
        }
    }

    /// Total clicks stored.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when no clicks are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Users with at least one click.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        let mut ids: Vec<UserId> = self.by_user.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// All clicks of one user, in insertion order.
    pub fn clicks_of(&self, user: UserId) -> &[Click] {
        self.by_user.get(&user).map_or(&[], Vec::as_slice)
    }

    /// Clicks of a user within a day window (inclusive).
    pub fn clicks_of_in(
        &self,
        user: UserId,
        from_day: u32,
        to_day: u32,
    ) -> impl Iterator<Item = &Click> {
        self.clicks_of(user)
            .iter()
            .filter(move |c| c.day >= from_day && c.day <= to_day)
    }

    /// Number of distinct hosts seen.
    pub fn distinct_hosts(&self) -> usize {
        self.host_stats.len()
    }

    /// Visit statistics of one host.
    pub fn host(&self, host: &str) -> Option<&HostStats> {
        self.host_stats.get(host)
    }

    /// Iterate over `(host, stats)` in sorted host order.
    pub fn hosts(&self) -> impl Iterator<Item = (&str, &HostStats)> {
        self.host_stats.iter().map(|(h, s)| (h.as_str(), s))
    }

    /// Hosts visited exactly once across all users.
    pub fn single_visit_hosts(&self) -> impl Iterator<Item = &str> {
        self.host_stats
            .iter()
            .filter(|(_, s)| s.visits == 1)
            .map(|(h, _)| h.as_str())
    }

    /// Distinct hosts one user has visited.
    pub fn hosts_of(&self, user: UserId) -> BTreeSet<&str> {
        self.clicks_of(user)
            .iter()
            .map(|c| host_of(&c.url))
            .collect()
    }

    /// Visits by one user to one host.
    pub fn visits_by(&self, user: UserId, host: &str) -> u64 {
        self.clicks_of(user)
            .iter()
            .filter(|c| c.host() == host)
            .count() as u64
    }
}

impl fmt::Display for ClickStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} clicks, {} users, {} hosts",
            self.total,
            self.by_user.len(),
            self.host_stats.len()
        )
    }
}

impl Extend<Click> for ClickStore {
    fn extend<I: IntoIterator<Item = Click>>(&mut self, iter: I) {
        for click in iter {
            self.insert(click);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click(user: u32, day: u32, tick: u64, url: &str) -> Click {
        Click {
            user: UserId(user),
            day,
            tick,
            url: url.to_owned(),
            referrer: None,
        }
    }

    fn store() -> ClickStore {
        let mut s = ClickStore::new();
        s.insert(click(0, 0, 0, "http://a.example/1"));
        s.insert(click(0, 1, 1, "http://a.example/2"));
        s.insert(click(1, 1, 2, "http://a.example/1"));
        s.insert(click(1, 2, 3, "http://b.example/1"));
        s
    }

    #[test]
    fn counts_and_indexes() {
        let s = store();
        assert_eq!(s.len(), 4);
        assert_eq!(s.distinct_hosts(), 2);
        assert_eq!(s.clicks_of(UserId(0)).len(), 2);
        assert_eq!(s.visits_by(UserId(1), "a.example"), 1);
    }

    #[test]
    fn host_stats_track_days_and_users() {
        let s = store();
        let a = s.host("a.example").unwrap();
        assert_eq!(a.visits, 3);
        assert_eq!(a.users, 2);
        assert_eq!(a.first_day, 0);
        assert_eq!(a.last_day, 1);
    }

    #[test]
    fn single_visit_hosts_listed() {
        let s = store();
        let singles: Vec<&str> = s.single_visit_hosts().collect();
        assert_eq!(singles, vec!["b.example"]);
    }

    #[test]
    fn day_window_query() {
        let s = store();
        let in_window: Vec<u64> = s.clicks_of_in(UserId(0), 1, 5).map(|c| c.tick).collect();
        assert_eq!(in_window, vec![1]);
    }

    #[test]
    fn batch_ingest_and_extend() {
        let mut s = ClickStore::new();
        s.insert_batch(ClickBatch {
            user: UserId(0),
            clicks: vec![click(0, 0, 0, "http://x.example/")],
        });
        s.extend(vec![click(0, 0, 1, "http://y.example/")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.distinct_hosts(), 2);
    }

    #[test]
    fn users_are_sorted() {
        let s = store();
        let users: Vec<UserId> = s.users().collect();
        assert_eq!(users, vec![UserId(0), UserId(1)]);
    }

    #[test]
    fn hosts_of_user() {
        let s = store();
        let hosts = s.hosts_of(UserId(1));
        assert!(hosts.contains("a.example"));
        assert!(hosts.contains("b.example"));
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn empty_store_display() {
        let s = ClickStore::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "0 clicks, 0 users, 0 hosts");
    }
}
