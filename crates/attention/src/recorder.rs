//! Attention recorders.
//!
//! "The attention of a user is captured by an attention recorder. In our
//! prototype, the recorder runs in the Web browser and captures the URIs
//! viewed by the user." (§2.2) The recorder here is the browser-extension
//! equivalent: it buffers clicks and periodically flushes batches toward a
//! Reef server (centralized) or the local pipeline (distributed).

use crate::click::{Click, ClickBatch};
use reef_simweb::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Anything that consumes a stream of clicks.
pub trait AttentionRecorder: fmt::Debug {
    /// Record one click.
    fn record(&mut self, click: Click);

    /// Flush buffered clicks, if the recorder buffers.
    fn flush(&mut self) -> Option<ClickBatch> {
        None
    }
}

/// Counters for a [`BrowserRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Clicks recorded.
    pub recorded: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Total bytes of flushed batches (JSON wire size).
    pub bytes_uploaded: u64,
}

/// The browser-extension recorder: buffers clicks per user and emits a
/// batch every `batch_size` clicks.
///
/// # Examples
///
/// ```
/// use reef_attention::{BrowserRecorder, AttentionRecorder, Click};
/// use reef_simweb::UserId;
///
/// let mut recorder = BrowserRecorder::new(UserId(0), 2);
/// let click = Click { user: UserId(0), day: 0, tick: 0,
///                     url: "http://a.example/".into(), referrer: None };
/// assert!(recorder.record_and_maybe_flush(click.clone()).is_none());
/// assert!(recorder.record_and_maybe_flush(click).is_some());
/// ```
#[derive(Debug)]
pub struct BrowserRecorder {
    user: UserId,
    batch_size: usize,
    buffer: Vec<Click>,
    stats: RecorderStats,
}

impl BrowserRecorder {
    /// A recorder for `user` that flushes every `batch_size` clicks.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    pub fn new(user: UserId, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BrowserRecorder {
            user,
            batch_size,
            // Cap the pre-allocation; huge batch sizes (used to mean
            // "manual flush only") must not reserve memory up front.
            buffer: Vec::with_capacity(batch_size.min(1024)),
            stats: RecorderStats::default(),
        }
    }

    /// The user this recorder belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Record a click; returns a batch when the buffer filled up.
    pub fn record_and_maybe_flush(&mut self, click: Click) -> Option<ClickBatch> {
        self.record(click);
        if self.buffer.len() >= self.batch_size {
            self.flush()
        } else {
            None
        }
    }

    /// Clicks currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Upload counters.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }
}

impl AttentionRecorder for BrowserRecorder {
    fn record(&mut self, click: Click) {
        debug_assert_eq!(click.user, self.user, "recorder received foreign click");
        self.stats.recorded += 1;
        self.buffer.push(click);
    }

    fn flush(&mut self) -> Option<ClickBatch> {
        if self.buffer.is_empty() {
            return None;
        }
        let batch = ClickBatch {
            user: self.user,
            clicks: std::mem::take(&mut self.buffer),
        };
        self.stats.batches += 1;
        self.stats.bytes_uploaded += batch.wire_size() as u64;
        Some(batch)
    }
}

/// A recorder that drops everything (privacy-maximal baseline; also useful
/// in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl AttentionRecorder for NullRecorder {
    fn record(&mut self, _click: Click) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click(tick: u64) -> Click {
        Click {
            user: UserId(1),
            day: 0,
            tick,
            url: format!("http://s.example/p{tick}.html"),
            referrer: None,
        }
    }

    #[test]
    fn flushes_at_batch_size() {
        let mut r = BrowserRecorder::new(UserId(1), 3);
        assert!(r.record_and_maybe_flush(click(0)).is_none());
        assert!(r.record_and_maybe_flush(click(1)).is_none());
        let batch = r.record_and_maybe_flush(click(2)).expect("batch at size 3");
        assert_eq!(batch.clicks.len(), 3);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn manual_flush_drains_partial_buffer() {
        let mut r = BrowserRecorder::new(UserId(1), 10);
        r.record(click(0));
        let batch = r.flush().unwrap();
        assert_eq!(batch.clicks.len(), 1);
        assert!(r.flush().is_none());
    }

    #[test]
    fn stats_account_uploads() {
        let mut r = BrowserRecorder::new(UserId(1), 2);
        r.record_and_maybe_flush(click(0));
        r.record_and_maybe_flush(click(1));
        let stats = r.stats();
        assert_eq!(stats.recorded, 2);
        assert_eq!(stats.batches, 1);
        assert!(stats.bytes_uploaded > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = BrowserRecorder::new(UserId(0), 0);
    }

    #[test]
    fn null_recorder_ignores_everything() {
        let mut r = NullRecorder;
        r.record(click(0));
        assert!(r.flush().is_none());
    }
}
