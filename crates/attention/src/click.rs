//! Clicks: the unit of attention data.
//!
//! "Several attributes, such as a timestamp and a user cookie, are logged
//! along with the URI of the request. This unit of attention data is
//! called a click." (§3.1)

use reef_simweb::{Request, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One recorded outgoing HTTP request.
///
/// Deliberately carries *no* ground-truth fields (server kind, request
/// kind): the recorder sees only what a browser extension would see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Click {
    /// The user cookie (stable pseudonymous id).
    pub user: UserId,
    /// Day of the request.
    pub day: u32,
    /// Total-order timestamp within the history.
    pub tick: u64,
    /// Requested URI.
    pub url: String,
    /// Referrer URI, when the browser knew one.
    pub referrer: Option<String>,
}

impl Click {
    /// Strip a simulated request down to what the browser extension logs.
    pub fn from_request(request: &Request) -> Self {
        Click {
            user: request.user,
            day: request.day,
            tick: request.tick,
            url: request.url.clone(),
            referrer: request.referrer.clone(),
        }
    }

    /// The host part of the clicked URL.
    pub fn host(&self) -> &str {
        host_of(&self.url)
    }
}

impl fmt::Display for Click {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} d{} t{}] {}",
            self.user, self.day, self.tick, self.url
        )
    }
}

/// A batch of clicks uploaded to a Reef server ("periodically forwards
/// batches of requests", §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickBatch {
    /// The uploading user.
    pub user: UserId,
    /// Clicks in tick order.
    pub clicks: Vec<Click>,
}

impl ClickBatch {
    /// Approximate upload size in bytes (JSON wire format, as the real
    /// extension-to-LAMP-server path used).
    pub fn wire_size(&self) -> usize {
        serde_json::to_vec(self).map_or(0, |v| v.len())
    }

    /// Server-side upload validation (§3.1): split the batch into the
    /// clicks that genuinely carry the uploading user's cookie and the
    /// count of forged-cookie rejects. The single source of truth for
    /// the rule — both the in-memory and the durable ingestion paths go
    /// through here.
    pub fn partition_valid(self) -> (Vec<Click>, u64) {
        let user = self.user;
        let mut accepted = Vec::with_capacity(self.clicks.len());
        let mut rejected = 0u64;
        for click in self.clicks {
            if click.user == user {
                accepted.push(click);
            } else {
                rejected += 1;
            }
        }
        (accepted, rejected)
    }
}

/// Extract the host of an URL (`http://host/path` → `host`). Unparseable
/// URLs return the whole string, which keeps per-host statistics total.
pub fn host_of(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .unwrap_or(url);
    rest.split(['/', '?', '#']).next().unwrap_or(rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_simweb::{RequestKind, ServerId};

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("http://a.example/p.html"), "a.example");
        assert_eq!(host_of("https://b.example?x=1"), "b.example");
        assert_eq!(host_of("c.example/path"), "c.example");
        assert_eq!(host_of("weird"), "weird");
    }

    #[test]
    fn from_request_strips_ground_truth() {
        let req = Request {
            user: UserId(3),
            day: 2,
            tick: 17,
            url: "http://x.example/p0.html".to_owned(),
            server: ServerId(9),
            kind: RequestKind::Page,
            referrer: None,
        };
        let click = Click::from_request(&req);
        assert_eq!(click.user, UserId(3));
        assert_eq!(click.host(), "x.example");
        // Click is serializable without any server/kind fields.
        let json = serde_json::to_string(&click).unwrap();
        assert!(!json.contains("server"));
        assert!(!json.contains("kind"));
    }

    #[test]
    fn batch_wire_size_grows_with_clicks() {
        let click = Click {
            user: UserId(0),
            day: 0,
            tick: 0,
            url: "http://a.example/".to_owned(),
            referrer: None,
        };
        let small = ClickBatch {
            user: UserId(0),
            clicks: vec![click.clone()],
        };
        let big = ClickBatch {
            user: UserId(0),
            clicks: vec![click.clone(), click],
        };
        assert!(big.wire_size() > small.wire_size());
        assert!(small.wire_size() > 0);
    }
}
