//! Durable click storage: a segmented write-ahead log plus snapshot
//! compaction for the server-side [`ClickStore`].
//!
//! The paper's clicks "are stored in a database" (§3.1); this module is
//! that database's persistence layer. Every acknowledged upload is first
//! appended to an on-disk log and only then applied to the in-memory
//! indexes, so a daemon restart (or crash) recovers exactly the
//! acknowledged prefix of the upload stream.
//!
//! # On-disk layout
//!
//! A data directory holds two kinds of files, both named by a
//! monotonically increasing hex sequence number:
//!
//! * `wal-<seq>.log` — **segments** of the append-only log. Each starts
//!   with an 8-byte magic and then carries records framed as
//!   `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`. One record
//!   is one validated upload batch (the accepted clicks only), encoded
//!   with the same LEB128-varint/length-delimited-string idiom as the
//!   wire's v2 binary codec.
//! * `snapshot-<seq>.snap` — a full-store **snapshot**, one checksummed
//!   blob framed the same way. Snapshot `S` contains every record of every
//!   segment with sequence number `< S`, so recovery is "load snapshot
//!   `S`, replay segments `>= S`".
//!
//! # Compaction
//!
//! Every [`PersistConfig::snapshot_every`] ingested batches the store
//! seals the active segment, writes a snapshot at the next sequence
//! number (via a temp file + rename), and deletes segments and snapshots
//! older than the *previous* snapshot. Keeping one snapshot generation of
//! history means a snapshot whose checksum fails at recovery can fall
//! back to its predecessor without losing data.
//!
//! # Recovery rules
//!
//! 1. The newest snapshot whose checksum verifies is loaded; corrupt
//!    snapshots are deleted and the next older one is tried.
//! 2. Segments at or after the snapshot's sequence number are replayed in
//!    order. A record that is incomplete (torn mid-write) or fails its
//!    checksum ends the replay: the segment is truncated to the last
//!    valid record and any later segments are discarded. Recovery never
//!    fails on torn or flipped bytes — it keeps exactly the checksummed
//!    prefix.
//! 3. Appends resume on the highest surviving segment.
//!
//! Appends are flushed to the OS before the upload is acknowledged, so
//! acknowledged data survives a process crash (`kill -9`). Surviving an
//! OS crash or power loss would additionally need an `fsync` per append
//! (or group commit), which is deliberately not paid yet.

use crate::click::{Click, ClickBatch};
use crate::store::{ClickStore, UploadReceipt};
use reef_simweb::UserId;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Default segment rotation threshold (8 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Default snapshot cadence, in ingested batches.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// First bytes of every WAL segment.
const SEGMENT_MAGIC: &[u8; 8] = b"REEFWAL\x01";

/// First bytes of every snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"REEFSNP\x01";

/// Bytes of `[payload_len][crc]` framing in front of every record.
const RECORD_HEADER: u64 = 8;

/// Upper bound on one record's payload; a corrupt length prefix must not
/// allocate gigabytes.
const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// Record tag: one validated upload batch.
const RECORD_BATCH: u8 = 1;

/// Where and how the click store persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Data directory (created if missing). One store per directory.
    pub dir: PathBuf,
    /// Rotate the active WAL segment once it grows past this many bytes.
    pub segment_bytes: u64,
    /// Write a snapshot (and compact older files) every this many
    /// ingested batches; `0` disables snapshots.
    pub snapshot_every: u64,
}

impl PersistConfig {
    /// Config for `dir` with the default segment size and snapshot
    /// cadence.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

/// Point-in-time persistence counters of a [`DurableClickStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Bytes currently held across live WAL segments.
    pub wal_bytes: u64,
    /// Live WAL segment files.
    pub segments: u64,
    /// Snapshots written since this store was opened.
    pub snapshots: u64,
    /// Clicks restored at open (snapshot plus replayed segments).
    pub recovered_clicks: u64,
    /// Bytes discarded at open as a torn or corrupt log tail.
    pub truncated_bytes: u64,
}

// ---------------------------------------------------------------------------
// Binary primitives: the same LEB128/length-delimited idiom as the wire's
// v2 codec, mirrored here because `reef-wire` depends on this crate (the
// dependency cannot point the other way).

/// Byte-buffer writer for WAL records and snapshots.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn tag(&mut self, tag: u8) {
        self.buf.push(tag);
    }

    /// LEB128 unsigned varint.
    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length-delimited UTF-8.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over a record payload. Any malformed read means
/// the record is corrupt; the caller treats that as the end of the valid
/// log prefix.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// "This payload is corrupt" — carries no detail because the only
/// response is truncation.
struct Corrupt;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, Corrupt> {
        let b = *self.buf.get(self.pos).ok_or(Corrupt)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, Corrupt> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(Corrupt);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(Corrupt);
            }
        }
    }

    fn u32(&mut self) -> Result<u32, Corrupt> {
        u32::try_from(self.u64()?).map_err(|_| Corrupt)
    }

    fn str(&mut self) -> Result<String, Corrupt> {
        let len = self.u64()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or(Corrupt)?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| Corrupt)?
            .to_owned();
        self.pos = end;
        Ok(s)
    }

    fn finish(&self) -> Result<(), Corrupt> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Corrupt)
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table built at compile time — no external crates in the
// offline build.

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record and snapshot encoding

fn put_click(w: &mut Writer, click: &Click) {
    w.u64(u64::from(click.user.0));
    w.u64(u64::from(click.day));
    w.u64(click.tick);
    w.str(&click.url);
    match &click.referrer {
        Some(referrer) => {
            w.tag(1);
            w.str(referrer);
        }
        None => w.tag(0),
    }
}

fn get_click(r: &mut Reader<'_>) -> Result<Click, Corrupt> {
    Ok(Click {
        user: UserId(r.u32()?),
        day: r.u32()?,
        tick: r.u64()?,
        url: r.str()?,
        referrer: match r.byte()? {
            0 => None,
            1 => Some(r.str()?),
            _ => return Err(Corrupt),
        },
    })
}

/// Encode one validated batch (accepted clicks only) as a record payload.
fn encode_batch_record(user: UserId, clicks: &[Click]) -> Vec<u8> {
    let mut w = Writer::new();
    w.tag(RECORD_BATCH);
    w.u64(u64::from(user.0));
    w.u64(clicks.len() as u64);
    for click in clicks {
        put_click(&mut w, click);
    }
    w.into_bytes()
}

fn decode_batch_record(payload: &[u8]) -> Result<Vec<Click>, Corrupt> {
    let mut r = Reader::new(payload);
    if r.byte()? != RECORD_BATCH {
        return Err(Corrupt);
    }
    let _user = r.u64()?;
    let n = r.u64()?;
    let mut clicks = Vec::new();
    for _ in 0..n {
        clicks.push(get_click(&mut r)?);
    }
    r.finish()?;
    Ok(clicks)
}

/// Encode the full store as a snapshot payload: per-user click vectors in
/// insertion order (every derived index is rebuilt by re-inserting).
fn encode_snapshot(store: &ClickStore) -> Vec<u8> {
    let users: Vec<UserId> = store.users().collect();
    let mut w = Writer::new();
    w.u64(users.len() as u64);
    for user in users {
        let clicks = store.clicks_of(user);
        w.u64(u64::from(user.0));
        w.u64(clicks.len() as u64);
        for click in clicks {
            put_click(&mut w, click);
        }
    }
    w.into_bytes()
}

fn decode_snapshot(payload: &[u8]) -> Result<Vec<Click>, Corrupt> {
    let mut r = Reader::new(payload);
    let users = r.u64()?;
    let mut clicks = Vec::new();
    for _ in 0..users {
        let _user = r.u64()?;
        let n = r.u64()?;
        for _ in 0..n {
            clicks.push(get_click(&mut r)?);
        }
    }
    r.finish()?;
    Ok(clicks)
}

// ---------------------------------------------------------------------------
// The WAL proper

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}.log"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:016x}.snap"))
}

/// Parse a `wal-…` / `snapshot-…` sequence number out of a file name.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    u64::from_str_radix(hex, 16).ok()
}

/// The segmented write-ahead log behind a [`DurableClickStore`].
#[derive(Debug)]
struct Wal {
    cfg: PersistConfig,
    active: File,
    active_seq: u64,
    active_len: u64,
    /// Sequence numbers of live segments, ascending (last == active).
    segment_seqs: Vec<u64>,
    /// Sequence numbers of live snapshots, ascending.
    snapshot_seqs: Vec<u64>,
    batches_since_snapshot: u64,
    /// Set when a failed append could not be rolled back to a record
    /// boundary; every further append is refused (acknowledging writes
    /// after torn bytes would violate the acknowledged-prefix
    /// guarantee).
    poisoned: bool,
    wal_bytes: u64,
    snapshots_written: u64,
    recovered_clicks: u64,
    truncated_bytes: u64,
}

impl Wal {
    /// Open `cfg.dir`, recover the store state into `store`, and leave the
    /// log ready to append.
    fn open(cfg: PersistConfig, store: &mut ClickStore) -> io::Result<Wal> {
        fs::create_dir_all(&cfg.dir)?;
        let mut segment_seqs: Vec<u64> = Vec::new();
        let mut snapshot_seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_seq(name, "wal-", ".log") {
                segment_seqs.push(seq);
            } else if let Some(seq) = parse_seq(name, "snapshot-", ".snap") {
                snapshot_seqs.push(seq);
            } else if name.ends_with(".tmp") {
                // A snapshot that died before its rename; never valid.
                let _ = fs::remove_file(entry.path());
            }
        }
        segment_seqs.sort_unstable();
        snapshot_seqs.sort_unstable();
        let mut recovered_clicks = 0u64;
        let mut truncated_bytes = 0u64;

        // 1. Newest snapshot whose checksum verifies wins; corrupt ones
        //    are deleted so a later compaction never trusts them.
        let mut base_seq = 0u64;
        while let Some(&seq) = snapshot_seqs.last() {
            let path = snapshot_path(&cfg.dir, seq);
            let loaded = read_checked_blob(&path, SNAPSHOT_MAGIC)
                .and_then(|p| decode_snapshot(&p).map_err(|Corrupt| ()));
            match loaded {
                Ok(clicks) => {
                    recovered_clicks += clicks.len() as u64;
                    store.extend(clicks);
                    base_seq = seq;
                    break;
                }
                Err(()) => {
                    let _ = fs::remove_file(&path);
                    snapshot_seqs.pop();
                }
            }
        }
        // 2. Segments before the snapshot are fully contained in it.
        while segment_seqs.first().is_some_and(|&s| s < base_seq) {
            let seq = segment_seqs.remove(0);
            let _ = fs::remove_file(segment_path(&cfg.dir, seq));
        }
        // 3. Replay everything after the snapshot, stopping (and
        //    truncating) at the first torn or corrupt record.
        let mut stop_at: Option<usize> = None;
        for (i, &seq) in segment_seqs.iter().enumerate() {
            let path = segment_path(&cfg.dir, seq);
            let bytes = fs::read(&path)?;
            let (valid, clicks) = replay_segment(&bytes, store);
            recovered_clicks += clicks;
            if valid < bytes.len() as u64 {
                // Torn/corrupt tail: keep the checksummed prefix.
                truncated_bytes += bytes.len() as u64 - valid;
                truncate_segment(&path, valid)?;
                stop_at = Some(i);
                break;
            }
        }
        if let Some(i) = stop_at {
            // Anything after a corrupt segment is past the valid prefix.
            for &seq in &segment_seqs[i + 1..] {
                let path = segment_path(&cfg.dir, seq);
                truncated_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let _ = fs::remove_file(path);
            }
            segment_seqs.truncate(i + 1);
        }
        // 4. Re-open (or create) the active segment.
        let (active, active_seq, active_len) = match segment_seqs.last().copied() {
            Some(seq) => {
                let path = segment_path(&cfg.dir, seq);
                let mut len = fs::metadata(&path)?.len();
                if len < SEGMENT_MAGIC.len() as u64 {
                    // A crash during segment creation can leave the file
                    // shorter than its magic (even zero bytes, which the
                    // replay loop above cannot flag — nothing to
                    // truncate). Appending there would put acknowledged
                    // records in a file replay refuses to read. Rebuild
                    // the empty segment first.
                    truncate_segment(&path, 0)?;
                    len = SEGMENT_MAGIC.len() as u64;
                }
                (OpenOptions::new().append(true).open(path)?, seq, len)
            }
            None => {
                let seq = base_seq.max(1);
                let (file, len) = new_segment_file(&cfg.dir, seq)?;
                segment_seqs.push(seq);
                (file, seq, len)
            }
        };
        let wal_bytes = segment_seqs
            .iter()
            .map(|&seq| {
                fs::metadata(segment_path(&cfg.dir, seq))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();
        Ok(Wal {
            cfg,
            active,
            active_seq,
            active_len,
            segment_seqs,
            snapshot_seqs,
            batches_since_snapshot: 0,
            poisoned: false,
            wal_bytes,
            snapshots_written: 0,
            recovered_clicks,
            truncated_bytes,
        })
    }

    fn rotate(&mut self) -> io::Result<()> {
        let seq = self.active_seq + 1;
        let (file, len) = new_segment_file(&self.cfg.dir, seq)?;
        self.active = file;
        self.active_seq = seq;
        self.active_len = len;
        self.wal_bytes += len;
        self.segment_seqs.push(seq);
        Ok(())
    }

    /// Append one validated batch record and flush it to the OS. The
    /// caller only applies the batch to the in-memory store (and only
    /// acknowledges the upload) after this returns `Ok`.
    fn append_batch(&mut self, user: UserId, clicks: &[Click]) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL poisoned by an earlier partial write that could not be rolled back",
            ));
        }
        let payload = encode_batch_record(user, clicks);
        if payload.len() > MAX_RECORD_LEN {
            // Refuse rather than acknowledge: a record past the replay
            // limit would be written fine but rejected at recovery —
            // acknowledged-then-lost, the exact failure the WAL exists
            // to rule out. (The wire codec caps batches well below
            // this, so the path is unreachable through `reefd`.)
            return Err(io::Error::other(format!(
                "click batch encodes to {} bytes, past the {MAX_RECORD_LEN}-byte record limit",
                payload.len()
            )));
        }
        let record_len = RECORD_HEADER + payload.len() as u64;
        if self.active_len > SEGMENT_MAGIC.len() as u64
            && self.active_len + record_len > self.cfg.segment_bytes
        {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(record_len as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self
            .active
            .write_all(&frame)
            .and_then(|()| self.active.flush())
        {
            // A failed write_all may have left a torn partial record on
            // disk. Roll the segment back to the last record boundary:
            // otherwise the next successful (and acknowledged) append
            // would land *after* the garbage, and recovery — which stops
            // at the first corrupt record — would silently discard it,
            // breaking the acknowledged-prefix guarantee.
            if self.active.set_len(self.active_len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.active_len += record_len;
        self.wal_bytes += record_len;
        Ok(())
    }

    /// Snapshot-cadence bookkeeping, run after every applied batch.
    /// Snapshot failures are deliberately swallowed: the data is already
    /// safe in the WAL, and the next cadence tick retries.
    fn note_batch(&mut self, store: &ClickStore) {
        self.batches_since_snapshot += 1;
        if self.cfg.snapshot_every > 0 && self.batches_since_snapshot >= self.cfg.snapshot_every {
            self.batches_since_snapshot = 0;
            let _ = self.write_snapshot(store);
        }
    }

    /// Seal the active segment, write a full-store snapshot at the new
    /// sequence number, and compact files older than the previous
    /// snapshot.
    fn write_snapshot(&mut self, store: &ClickStore) -> io::Result<()> {
        let payload = encode_snapshot(store);
        if payload.len() > MAX_RECORD_LEN {
            // A snapshot past the recovery read limit would "succeed"
            // here, be unreadable at restart, and — worse — authorize
            // compaction of the segments it supposedly covers. Refuse
            // instead: the WAL keeps growing but stays authoritative.
            return Err(io::Error::other(format!(
                "store snapshot encodes to {} bytes, past the {MAX_RECORD_LEN}-byte limit; \
                 keeping the WAL uncompacted",
                payload.len()
            )));
        }
        if self.active_len > SEGMENT_MAGIC.len() as u64 {
            self.rotate()?;
        }
        let seq = self.active_seq;
        let tmp = self.cfg.dir.join(format!("snapshot-{seq:016x}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(SNAPSHOT_MAGIC)?;
            file.write_all(&(payload.len() as u32).to_le_bytes())?;
            file.write_all(&crc32(&payload).to_le_bytes())?;
            file.write_all(&payload)?;
            file.flush()?;
        }
        let path = snapshot_path(&self.cfg.dir, seq);
        fs::rename(&tmp, &path)?;
        // Compaction below deletes the segments this snapshot covers, so
        // never run it on a snapshot that has not been proven readable.
        if read_checked_blob(&path, SNAPSHOT_MAGIC).is_err() {
            let _ = fs::remove_file(&path);
            return Err(io::Error::other(
                "snapshot failed read-back verification; keeping the WAL uncompacted",
            ));
        }
        self.snapshot_seqs.push(seq);
        self.snapshots_written += 1;
        // Compaction: keep this snapshot and its predecessor (the
        // checksum-fallback generation); everything older goes.
        if self.snapshot_seqs.len() >= 2 {
            let prev = self.snapshot_seqs[self.snapshot_seqs.len() - 2];
            while self.snapshot_seqs.first().is_some_and(|&s| s < prev) {
                let old = self.snapshot_seqs.remove(0);
                let _ = fs::remove_file(snapshot_path(&self.cfg.dir, old));
            }
            while self.segment_seqs.first().is_some_and(|&s| s < prev) {
                let old = self.segment_seqs.remove(0);
                let path = segment_path(&self.cfg.dir, old);
                self.wal_bytes = self
                    .wal_bytes
                    .saturating_sub(fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    fn stats(&self) -> PersistStats {
        PersistStats {
            wal_bytes: self.wal_bytes,
            segments: self.segment_seqs.len() as u64,
            snapshots: self.snapshots_written,
            recovered_clicks: self.recovered_clicks,
            truncated_bytes: self.truncated_bytes,
        }
    }
}

/// Replay one segment's records into `store`. Returns the byte length of
/// the valid prefix and the number of clicks applied.
fn replay_segment(bytes: &[u8], store: &mut ClickStore) -> (u64, u64) {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return (0, 0);
    }
    let mut pos = SEGMENT_MAGIC.len() as u64;
    let mut applied = 0u64;
    loop {
        let rest = &bytes[pos as usize..];
        if (rest.len() as u64) < RECORD_HEADER {
            return (pos, applied);
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let want_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len == 0 || len > MAX_RECORD_LEN || rest.len() < RECORD_HEADER as usize + len {
            return (pos, applied);
        }
        let payload = &rest[RECORD_HEADER as usize..RECORD_HEADER as usize + len];
        if crc32(payload) != want_crc {
            return (pos, applied);
        }
        let Ok(clicks) = decode_batch_record(payload) else {
            return (pos, applied);
        };
        applied += clicks.len() as u64;
        store.extend(clicks);
        pos += RECORD_HEADER + len as u64;
    }
}

/// Create a fresh segment file with its magic written; returns the open
/// append handle and the current length.
fn new_segment_file(dir: &Path, seq: u64) -> io::Result<(File, u64)> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new().append(true).create(true).open(path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.flush()?;
    Ok((file, SEGMENT_MAGIC.len() as u64))
}

/// Read a `[magic][len][crc][payload]` file and return the payload iff
/// every check passes.
fn read_checked_blob(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, ()> {
    let bytes = fs::read(path).map_err(|_| ())?;
    if bytes.len() < magic.len() + RECORD_HEADER as usize || &bytes[..magic.len()] != magic {
        return Err(());
    }
    let header = &bytes[magic.len()..];
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let want_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let payload = &header[RECORD_HEADER as usize..];
    if len != payload.len() || len > MAX_RECORD_LEN || crc32(payload) != want_crc {
        return Err(());
    }
    Ok(payload.to_vec())
}

/// Cut a segment file back to its valid prefix. A prefix shorter than the
/// magic means the whole file is garbage: reset it to an empty segment.
fn truncate_segment(path: &Path, valid: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    if valid < SEGMENT_MAGIC.len() as u64 {
        file.set_len(0)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.flush()?;
    } else {
        file.set_len(valid)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// DurableClickStore

/// A [`ClickStore`] whose ingested uploads survive process restarts.
///
/// Wraps the in-memory store behind the same `ingest_upload` surface:
/// every validated batch is appended to the WAL (and flushed) *before* it
/// is applied and acknowledged, so the store recovered from disk is
/// always exactly the acknowledged prefix of the upload stream. Opened
/// without a data directory ([`DurableClickStore::in_memory`]) it
/// degrades to the plain in-memory store.
///
/// Read queries go through `Deref<Target = ClickStore>`; mutation must go
/// through the ingest methods so the log stays authoritative.
#[derive(Debug)]
pub struct DurableClickStore {
    store: ClickStore,
    wal: Option<Wal>,
}

impl DurableClickStore {
    /// A purely in-memory store: same surface, no disk.
    pub fn in_memory() -> DurableClickStore {
        DurableClickStore {
            store: ClickStore::new(),
            wal: None,
        }
    }

    /// Open (or create) the store persisted under `cfg.dir`, recovering
    /// snapshot + log into memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating or reading the data directory.
    /// Torn or corrupt log tails are *not* errors: they are truncated and
    /// counted in [`PersistStats::truncated_bytes`].
    pub fn open(cfg: PersistConfig) -> io::Result<DurableClickStore> {
        let mut store = ClickStore::new();
        let wal = Wal::open(cfg, &mut store)?;
        Ok(DurableClickStore {
            store,
            wal: Some(wal),
        })
    }

    /// Ingest one upload, reporting `wire_bytes` in the receipt as the
    /// actual frame size the transport measured.
    ///
    /// # Errors
    ///
    /// An I/O failure appending to the WAL; the batch is then **not**
    /// applied and must not be acknowledged.
    pub fn ingest_upload_sized(
        &mut self,
        batch: ClickBatch,
        wire_bytes: u64,
    ) -> io::Result<UploadReceipt> {
        let user = batch.user;
        let (accepted, rejected) = batch.partition_valid();
        if let Some(wal) = &mut self.wal {
            if !accepted.is_empty() {
                wal.append_batch(user, &accepted)?;
            }
        }
        let n_accepted = accepted.len() as u64;
        self.store.extend(accepted);
        if let Some(wal) = &mut self.wal {
            wal.note_batch(&self.store);
        }
        Ok(UploadReceipt {
            user,
            accepted: n_accepted,
            rejected,
            wire_bytes,
            total_stored: self.store.len(),
        })
    }

    /// Ingest one upload, reporting the batch's JSON size as
    /// `wire_bytes` (callers with no transport framing in hand).
    ///
    /// # Errors
    ///
    /// See [`DurableClickStore::ingest_upload_sized`].
    pub fn ingest_upload(&mut self, batch: ClickBatch) -> io::Result<UploadReceipt> {
        let wire_bytes = batch.wire_size() as u64;
        self.ingest_upload_sized(batch, wire_bytes)
    }

    /// The wrapped in-memory store.
    pub fn store(&self) -> &ClickStore {
        &self.store
    }

    /// Persistence counters; all-zero for an in-memory store.
    pub fn persist_stats(&self) -> PersistStats {
        self.wal.as_ref().map(Wal::stats).unwrap_or_default()
    }

    /// Force a snapshot + compaction now, regardless of cadence. No-op
    /// in memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the snapshot.
    pub fn snapshot_now(&mut self) -> io::Result<()> {
        match &mut self.wal {
            Some(wal) => wal.write_snapshot(&self.store),
            None => Ok(()),
        }
    }
}

impl std::ops::Deref for DurableClickStore {
    type Target = ClickStore;

    fn deref(&self) -> &ClickStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(label: &str) -> TempDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("reef-persist-{label}-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn click(user: u32, tick: u64, url: &str) -> Click {
        Click {
            user: UserId(user),
            day: (tick / 10) as u32,
            tick,
            url: url.to_owned(),
            referrer: (tick.is_multiple_of(2)).then(|| format!("http://ref.example/{tick}")),
        }
    }

    fn batch(user: u32, ticks: std::ops::Range<u64>) -> ClickBatch {
        ClickBatch {
            user: UserId(user),
            clicks: ticks
                .map(|t| click(user, t, &format!("http://host{}.example/p{t}", user % 3)))
                .collect(),
        }
    }

    fn cfg(dir: &Path, segment_bytes: u64, snapshot_every: u64) -> PersistConfig {
        PersistConfig {
            dir: dir.to_path_buf(),
            segment_bytes,
            snapshot_every,
        }
    }

    fn wal_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .expect("read dir")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        files.sort();
        files
    }

    fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .expect("read dir")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        files.sort();
        files
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reopen_recovers_every_acknowledged_batch() {
        let dir = TempDir::new("reopen");
        let mut oracle = ClickStore::new();
        {
            let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open");
            for i in 0..10u64 {
                let b = batch((i % 3) as u32, i * 10..i * 10 + 4);
                oracle.ingest_upload(b.clone());
                store.ingest_upload(b).expect("ingest");
            }
            assert_eq!(store.len(), oracle.len());
        }
        let store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("reopen");
        assert_eq!(*store.store(), oracle);
        assert_eq!(store.persist_stats().recovered_clicks, oracle.len());
        assert_eq!(store.persist_stats().truncated_bytes, 0);
    }

    #[test]
    fn forged_cookie_clicks_are_rejected_not_persisted() {
        let dir = TempDir::new("forged");
        {
            let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open");
            let mut b = batch(1, 0..2);
            b.clicks.push(click(9, 99, "http://evil.example/"));
            let receipt = store.ingest_upload(b).expect("ingest");
            assert_eq!(receipt.accepted, 2);
            assert_eq!(receipt.rejected, 1);
        }
        let store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("reopen");
        assert_eq!(store.len(), 2);
        assert!(store.clicks_of(UserId(9)).is_empty());
    }

    #[test]
    fn segments_rotate_and_snapshots_compact() {
        let dir = TempDir::new("compact");
        let mut store = DurableClickStore::open(cfg(dir.path(), 256, 4)).expect("open");
        for i in 0..20u64 {
            store
                .ingest_upload(batch(0, i * 10..i * 10 + 3))
                .expect("ingest");
        }
        let stats = store.persist_stats();
        assert!(stats.snapshots >= 2, "snapshots written: {stats:?}");
        // Compaction keeps at most the fallback generation of snapshots.
        assert!(snapshot_files(dir.path()).len() <= 2);
        // Segments before the previous snapshot are gone.
        assert!(
            wal_files(dir.path()).len() as u64 <= stats.segments + 1,
            "stale segments compacted"
        );
        drop(store);
        let reopened = DurableClickStore::open(cfg(dir.path(), 256, 4)).expect("reopen");
        assert_eq!(reopened.len(), 60);
    }

    #[test]
    fn torn_tail_truncation_keeps_exact_checksummed_prefix_at_every_offset() {
        let dir = TempDir::new("torn");
        // Build a small single-segment log, remembering the store state
        // after each batch (the prefix oracle) and each record boundary.
        let mut boundaries = vec![SEGMENT_MAGIC.len() as u64];
        let mut oracles = vec![ClickStore::new()];
        {
            let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open");
            for i in 0..4u64 {
                store
                    .ingest_upload(batch(0, i * 10..i * 10 + 2))
                    .expect("ingest");
                boundaries.push(store.persist_stats().wal_bytes);
                oracles.push(store.store().clone());
            }
        }
        let path = wal_files(dir.path()).pop().expect("one segment");
        let full = fs::read(&path).expect("read wal");
        assert_eq!(*boundaries.last().unwrap(), full.len() as u64);

        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).expect("truncate");
            let store =
                DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("recover never fails");
            // Expected: the batches whose records end at or before `cut`;
            // a cut inside the magic voids the whole file.
            let (keep, valid_prefix) = if (cut as u64) < SEGMENT_MAGIC.len() as u64 {
                (0usize, 0u64)
            } else {
                let keep = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
                (keep, boundaries[keep])
            };
            assert_eq!(
                *store.store(),
                oracles[keep],
                "cut at {cut} must keep exactly {keep} batches"
            );
            assert_eq!(
                store.persist_stats().truncated_bytes,
                cut as u64 - valid_prefix,
                "cut at {cut}"
            );
            drop(store);
            // Recovery truncated the file in place; restore for the next
            // iteration.
            fs::write(&path, &full).expect("restore");
        }
    }

    #[test]
    fn flipped_bytes_never_panic_and_never_fabricate_clicks() {
        let dir = TempDir::new("flip");
        let mut oracles = vec![ClickStore::new()];
        let mut boundaries = vec![SEGMENT_MAGIC.len() as u64];
        {
            let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open");
            for i in 0..3u64 {
                store
                    .ingest_upload(batch(1, i * 10..i * 10 + 2))
                    .expect("ingest");
                boundaries.push(store.persist_stats().wal_bytes);
                oracles.push(store.store().clone());
            }
        }
        let path = wal_files(dir.path()).pop().expect("one segment");
        let full = fs::read(&path).expect("read wal");

        for flip in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[flip] ^= 0x5a;
            fs::write(&path, &corrupt).expect("write corrupt");
            let store =
                DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("recover never fails");
            // The record containing the flipped byte (and everything
            // after it) must be dropped; everything before must survive.
            let keep = boundaries
                .iter()
                .filter(|&&b| b <= flip as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(
                *store.store(),
                oracles[keep],
                "flip at {flip} must keep exactly {keep} batches"
            );
            drop(store);
            fs::write(&path, &full).expect("restore");
        }
    }

    #[test]
    fn appends_into_a_zero_length_segment_survive_reopen() {
        // Found by the deterministic-simulation harness (seed 15): a
        // crash that tore a segment down to zero bytes left the reopened
        // WAL appending into a file with no magic, so the *next*
        // recovery discarded acknowledged records.
        let dir = TempDir::new("emptyseg");
        drop(DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open"));
        let path = wal_files(dir.path()).pop().expect("segment exists");
        fs::write(&path, b"").expect("tear the segment to zero bytes");
        let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("reopen");
        store.ingest_upload(batch(0, 0..3)).expect("ingest");
        drop(store);
        let recovered = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("recover");
        assert_eq!(recovered.len(), 3, "acknowledged batch must survive");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let dir = TempDir::new("snapfall");
        let mut oracle = ClickStore::new();
        {
            let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 3)).expect("open");
            for i in 0..9u64 {
                let b = batch(2, i * 10..i * 10 + 2);
                oracle.ingest_upload(b.clone());
                store.ingest_upload(b).expect("ingest");
            }
            assert!(store.persist_stats().snapshots >= 2);
        }
        // Corrupt the newest snapshot's payload.
        let newest = snapshot_files(dir.path()).pop().expect("snapshot present");
        let mut bytes = fs::read(&newest).expect("read snapshot");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).expect("write corrupt snapshot");

        let store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 3)).expect("reopen");
        // Fallback: previous snapshot + the segments kept since it replay
        // to the identical full state.
        assert_eq!(*store.store(), oracle);
        // The corrupt snapshot was deleted so compaction never trusts it.
        assert!(!newest.exists());
    }

    #[test]
    fn in_memory_store_matches_plain_ingestion() {
        let mut durable = DurableClickStore::in_memory();
        let mut plain = ClickStore::new();
        for i in 0..5u64 {
            let b = batch((i % 2) as u32, i * 10..i * 10 + 3);
            let r1 = durable.ingest_upload(b.clone()).expect("ingest");
            let r2 = plain.ingest_upload(b);
            assert_eq!(r1, r2);
        }
        assert_eq!(*durable.store(), plain);
        assert_eq!(durable.persist_stats(), PersistStats::default());
    }

    #[test]
    fn snapshot_now_compacts_on_demand() {
        let dir = TempDir::new("snapnow");
        let mut store = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("open");
        for i in 0..6u64 {
            store
                .ingest_upload(batch(0, i * 10..i * 10 + 2))
                .expect("ingest");
        }
        store.snapshot_now().expect("snapshot");
        store.snapshot_now().expect("snapshot again");
        assert_eq!(store.persist_stats().snapshots, 2);
        drop(store);
        let reopened = DurableClickStore::open(cfg(dir.path(), 1 << 20, 0)).expect("reopen");
        assert_eq!(reopened.len(), 12);
    }
}
