//! The synthetic video-news archive.
//!
//! The paper's §3.3 experiment ranks "an archive of 500 video stories that
//! aired on ABC and CNN in 2004" (the TRECVid 2004 dataset). That corpus
//! is not redistributable, so this module generates a statistically
//! comparable substitute: stories with topic-conditioned transcripts drawn
//! from the same topic model as the simulated Web, in a fixed airing
//! order. What the experiment measures — how much a history-derived query
//! improves the ranking over airing order — depends only on this topical
//! structure, not on the actual 2004 footage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reef_simweb::{TopicId, TopicModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a story; also its airing rank (stories air in id order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct StoryId(pub u32);

impl fmt::Display for StoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "story#{}", self.0)
    }
}

/// Broadcaster of a story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// ABC World News Tonight.
    Abc,
    /// CNN Headline News.
    Cnn,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Abc => f.write_str("ABC"),
            Channel::Cnn => f.write_str("CNN"),
        }
    }
}

/// One video news story.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoStory {
    /// Identifier / airing rank.
    pub id: StoryId,
    /// Headline.
    pub title: String,
    /// ASR-style transcript text.
    pub transcript: String,
    /// Topic mixture the transcript was generated from (ground truth for
    /// relevance judgments).
    pub topics: Vec<(TopicId, f64)>,
    /// Broadcaster.
    pub channel: Channel,
}

impl VideoStory {
    /// The dominant topic of the story.
    pub fn primary_topic(&self) -> Option<TopicId> {
        self.topics
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(t, _)| *t)
    }
}

/// Archive generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchiveConfig {
    /// Number of stories (the paper used 500).
    pub stories: usize,
    /// Minimum transcript length in tokens (brief headline reads).
    pub min_transcript_tokens: usize,
    /// Maximum transcript length in tokens (long field reports). Real
    /// broadcast stories vary widely; the variance matters because long
    /// queries accumulate length-correlated ranking noise, which is what
    /// caps the useful query size in the paper's experiment.
    pub max_transcript_tokens: usize,
    /// Probability that a story carries a secondary topic.
    pub secondary_topic_rate: f64,
    /// Stopword rate of transcripts (speech is function-word heavy).
    pub stopword_rate: f64,
    /// Background rate of transcripts. Higher than Web pages: ASR errors
    /// and studio chatter dilute the topical signal, which is what kept
    /// the paper's peak improvement at a third rather than a multiple.
    pub background_rate: f64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            stories: 500,
            min_transcript_tokens: 30,
            max_transcript_tokens: 240,
            secondary_topic_rate: 0.3,
            stopword_rate: 0.4,
            background_rate: 0.6,
        }
    }
}

/// The story archive, in airing order.
#[derive(Debug, Clone)]
pub struct VideoArchive {
    stories: Vec<VideoStory>,
}

impl VideoArchive {
    /// Generate an archive whose transcripts come from `model`.
    pub fn generate(model: &TopicModel, config: ArchiveConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x71de_0123);
        let topic_count = model.topic_count() as u32;
        let stories = (0..config.stories)
            .map(|i| {
                let primary = TopicId(rng.gen_range(0..topic_count));
                let mut topics = vec![(primary, 1.0)];
                if rng.gen::<f64>() < config.secondary_topic_rate {
                    topics.push((TopicId(rng.gen_range(0..topic_count)), 0.35));
                }
                let tokens =
                    rng.gen_range(config.min_transcript_tokens..=config.max_transcript_tokens);
                let transcript = model.sample_text_with(
                    &mut rng,
                    &topics,
                    tokens,
                    config.stopword_rate,
                    config.background_rate,
                );
                let title = model.sample_text(&mut rng, &topics, 6);
                VideoStory {
                    id: StoryId(i as u32),
                    title,
                    transcript,
                    topics,
                    channel: if rng.gen::<bool>() {
                        Channel::Abc
                    } else {
                        Channel::Cnn
                    },
                }
            })
            .collect();
        VideoArchive { stories }
    }

    /// Stories in airing order.
    pub fn stories(&self) -> &[VideoStory] {
        &self.stories
    }

    /// Number of stories.
    pub fn len(&self) -> usize {
        self.stories.len()
    }

    /// `true` when the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.stories.is_empty()
    }

    /// Look up a story.
    pub fn story(&self, id: StoryId) -> Option<&VideoStory> {
        self.stories.get(id.0 as usize)
    }

    /// Binary relevance judgments for a user with the given interest
    /// topics: a story is relevant when its primary topic is one of the
    /// user's interests. (The paper had the test user rank all 500 stories
    /// by interest; our ground truth comes from the same interest profile
    /// that drove the user's browsing.)
    pub fn judgments(&self, interests: &[TopicId]) -> Vec<bool> {
        self.stories
            .iter()
            .map(|s| s.primary_topic().is_some_and(|t| interests.contains(&t)))
            .collect()
    }

    /// Judgments with human noise: an on-interest story is judged
    /// interesting with probability `p_on`, and any other story with
    /// probability `p_off` (serendipity). The paper's test user ranked all
    /// 500 stories by hand; real judgments correlate imperfectly with
    /// browsing-derived interests, which bounds the achievable precision.
    pub fn noisy_judgments(
        &self,
        interests: &[TopicId],
        p_on: f64,
        p_off: f64,
        seed: u64,
    ) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1d9e);
        self.stories
            .iter()
            .map(|s| {
                let on = s.primary_topic().is_some_and(|t| interests.contains(&t));
                let p = if on { p_on } else { p_off };
                rng.gen::<f64>() < p
            })
            .collect()
    }

    /// Graded judgments: interest weights become gains (0 for
    /// non-relevant).
    pub fn graded_judgments(&self, interests: &[(TopicId, f64)]) -> Vec<f64> {
        self.stories
            .iter()
            .map(|s| {
                s.primary_topic()
                    .and_then(|t| interests.iter().find(|(i, _)| *i == t))
                    .map_or(0.0, |(_, w)| *w)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_simweb::TopicModelConfig;

    fn archive() -> (TopicModel, VideoArchive) {
        let model = TopicModel::generate(TopicModelConfig::default(), 5);
        let archive = VideoArchive::generate(&model, ArchiveConfig::default(), 5);
        (model, archive)
    }

    #[test]
    fn archive_has_500_stories_in_airing_order() {
        let (_, a) = archive();
        assert_eq!(a.len(), 500);
        for (i, s) in a.stories().iter().enumerate() {
            assert_eq!(s.id, StoryId(i as u32));
            assert!(!s.transcript.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = archive();
        let (_, b) = archive();
        assert_eq!(a.stories()[42], b.stories()[42]);
    }

    #[test]
    fn judgments_follow_interests() {
        let (_, a) = archive();
        let interests = [TopicId(0), TopicId(1)];
        let judgments = a.judgments(&interests);
        assert_eq!(judgments.len(), 500);
        for (s, rel) in a.stories().iter().zip(&judgments) {
            assert_eq!(*rel, interests.contains(&s.primary_topic().unwrap()));
        }
        // With 2 of 20 topics, roughly 10% relevant.
        let count = judgments.iter().filter(|r| **r).count();
        assert!((20..90).contains(&count), "relevant count {count}");
    }

    #[test]
    fn graded_judgments_use_weights() {
        let (_, a) = archive();
        let graded = a.graded_judgments(&[(TopicId(0), 1.0), (TopicId(1), 0.5)]);
        assert!(graded.contains(&1.0));
        assert!(graded.contains(&0.5));
        assert!(graded.contains(&0.0));
    }

    #[test]
    fn both_channels_appear() {
        let (_, a) = archive();
        assert!(a.stories().iter().any(|s| s.channel == Channel::Abc));
        assert!(a.stories().iter().any(|s| s.channel == Channel::Cnn));
    }
}
