//! # reef-videonews — the video-news ranking study (paper §3.3)
//!
//! A synthetic stand-in for the TRECVid-2004 archive the paper used
//! ([`VideoArchive`]: 500 stories, topic-conditioned transcripts, fixed
//! airing order) plus the full experiment harness
//! ([`VideoExperiment`]): Offer-Weight term selection from browsing
//! history, BM25 ranking of the archive, and the precision-improvement
//! measure over airing order whose curve the paper reports (+34% at
//! N=30, +12% at N=5).
//!
//! ```
//! use reef_simweb::{TopicModel, TopicModelConfig};
//! use reef_videonews::{ArchiveConfig, VideoArchive};
//!
//! let model = TopicModel::generate(TopicModelConfig::default(), 1);
//! let archive = VideoArchive::generate(&model, ArchiveConfig::default(), 1);
//! assert_eq!(archive.len(), 500);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod archive;
pub mod experiment;

pub use archive::{ArchiveConfig, Channel, StoryId, VideoArchive, VideoStory};
pub use experiment::{CurvePoint, ExperimentConfig, VideoExperiment, PAPER_N_SWEEP};
