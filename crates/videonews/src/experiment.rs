//! The §3.3 experiment: content-based queries from browsing history rank
//! the video archive.
//!
//! Procedure, exactly as the paper describes it:
//!
//! 1. "we extracted the most important terms from over 10,000 pages
//!    visited by the user" — the history corpus, weighted with the
//!    TF-integrated Offer Weight (footnote 1);
//! 2. "used the top N of them to form content-based queries (we varied N
//!    between 5 and 500)";
//! 3. "The queries determined the order in which news stories were
//!    returned from an archive of 500 video stories" — BM25 (footnote 2);
//! 4. measure "how effective the query was at placing the most
//!    interesting stories first as compared to the order in which the
//!    stories originally aired".

use crate::archive::VideoArchive;
use reef_textindex::{
    compare_at_k, rank_all, select_terms, Bm25Params, Corpus, OfferWeightMode, Query,
    RankingComparison, SelectedTerm, Tokenizer,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Precision cutoff ("the front" of the returned list).
    pub front_k: usize,
    /// BM25 parameters.
    pub bm25: Bm25Params,
    /// Whether query terms carry their Offer Weights into BM25.
    pub weighted_query: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            front_k: 100,
            // k1 is standard; b is below the Web default — the paper
            // trained its BM25 parameters on a prior video-search
            // relevance-feedback study [9], and ASR transcript length
            // correlates with airtime, not verbosity, so length
            // normalization is deliberately weak. The residual length
            // bias is one of the effects that caps the useful query size.
            bm25: Bm25Params { k1: 1.2, b: 0.3 },
            // The paper "build[s] simple queries" from the top-N terms:
            // plain bags of words. Unweighted queries also reproduce the
            // dilution that makes N=30 optimal — with Offer-Weight-scaled
            // terms, extra noise terms are damped and the curve would
            // keep climbing instead of peaking.
            weighted_query: false,
        }
    }
}

/// One point of the precision-vs-N curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Number of query terms.
    pub n_terms: usize,
    /// Precision of the query ranking and the airing-order baseline.
    pub comparison: RankingComparison,
}

impl fmt::Display for CurvePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={:<4} precision={:.3} baseline={:.3} improvement={:+.1}%",
            self.n_terms,
            self.comparison.precision,
            self.comparison.baseline_precision,
            self.comparison.improvement_pct
        )
    }
}

/// The prepared experiment: indexed archive, history and background
/// corpora, ground-truth judgments.
pub struct VideoExperiment {
    story_corpus: Corpus,
    history: Corpus,
    background: Corpus,
    judgments: Vec<bool>,
    config: ExperimentConfig,
}

impl fmt::Debug for VideoExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VideoExperiment")
            .field("stories", &self.story_corpus.doc_count())
            .field("history_docs", &self.history.doc_count())
            .field("background_docs", &self.background.doc_count())
            .finish()
    }
}

impl VideoExperiment {
    /// Prepare the experiment.
    ///
    /// * `archive` — the 500-story archive, already generated;
    /// * `history_texts` — the pages the user visited (>10k in the paper);
    /// * `background_texts` — a reference corpus the user did *not* visit;
    /// * `judgments` — per-story binary relevance, airing order.
    ///
    /// # Panics
    ///
    /// Panics if `judgments.len()` differs from the archive size.
    pub fn prepare<'a>(
        archive: &VideoArchive,
        history_texts: impl IntoIterator<Item = &'a str>,
        background_texts: impl IntoIterator<Item = &'a str>,
        judgments: Vec<bool>,
        config: ExperimentConfig,
    ) -> Self {
        assert_eq!(
            judgments.len(),
            archive.len(),
            "one judgment per story required"
        );
        let tokenizer = Tokenizer::new();
        let mut story_corpus = Corpus::new();
        for story in archive.stories() {
            let combined = format!("{} {}", story.title, story.transcript);
            story_corpus.add_text(&tokenizer, &combined);
        }
        let mut history = Corpus::new();
        for text in history_texts {
            history.add_text(&tokenizer, text);
        }
        let mut background = Corpus::new();
        for text in background_texts {
            background.add_text(&tokenizer, text);
        }
        VideoExperiment {
            story_corpus,
            history,
            background,
            judgments,
            config,
        }
    }

    /// Number of history documents.
    pub fn history_len(&self) -> usize {
        self.history.doc_count()
    }

    /// Select the top `n` query terms from the history.
    pub fn query_terms(&self, n: usize, mode: OfferWeightMode) -> Vec<SelectedTerm> {
        select_terms(&self.history, &self.background, n, mode)
    }

    /// Precision of the airing order at the front cutoff.
    pub fn baseline_precision(&self) -> f64 {
        reef_textindex::precision_at_k(&self.judgments, self.config.front_k)
    }

    /// Rank the archive with the N-term query; returns story indices in
    /// rank order (judgment-independent, so one ranking can be evaluated
    /// against many judgment sets).
    pub fn ranked_ids(&self, n_terms: usize, mode: OfferWeightMode) -> Vec<u32> {
        let selected = self.query_terms(n_terms, mode);
        let query = if self.config.weighted_query {
            Query::weighted(
                selected
                    .iter()
                    .filter_map(|t| self.story_corpus.term_id(&t.term).map(|id| (id, t.weight))),
            )
        } else {
            Query::from_terms(
                selected
                    .iter()
                    .filter_map(|t| self.story_corpus.term_id(&t.term)),
            )
        };
        rank_all(&self.story_corpus, self.config.bm25, &query)
            .into_iter()
            .map(|(doc, _)| doc.0)
            .collect()
    }

    /// Evaluate a ranking against an explicit judgment vector (airing
    /// order is the baseline).
    ///
    /// # Panics
    ///
    /// Panics if `judgments.len()` differs from the archive size.
    pub fn evaluate_ranking(&self, ranked: &[u32], judgments: &[bool]) -> RankingComparison {
        assert_eq!(judgments.len(), self.story_corpus.doc_count());
        let ranked_judgments: Vec<bool> = ranked.iter().map(|id| judgments[*id as usize]).collect();
        compare_at_k(&ranked_judgments, judgments, self.config.front_k)
    }

    /// Run one experiment point against the prepared judgments: build the
    /// N-term query, rank the archive, compare against airing order.
    pub fn run(&self, n_terms: usize, mode: OfferWeightMode) -> CurvePoint {
        let ranked = self.ranked_ids(n_terms, mode);
        CurvePoint {
            n_terms,
            comparison: self.evaluate_ranking(&ranked, &self.judgments),
        }
    }

    /// Sweep the paper's N range, returning one curve point per N.
    pub fn sweep(&self, ns: &[usize], mode: OfferWeightMode) -> Vec<CurvePoint> {
        ns.iter().map(|n| self.run(*n, mode)).collect()
    }
}

/// The N values the paper sweeps ("We varied N between 5 and 500").
pub const PAPER_N_SWEEP: [usize; 10] = [5, 10, 20, 30, 50, 75, 100, 200, 300, 500];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{ArchiveConfig, VideoArchive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reef_simweb::{TopicId, TopicModel, TopicModelConfig};

    /// Build a small end-to-end experiment: a user interested in topics
    /// 0-2 browses topical pages; the archive mixes all topics.
    fn experiment() -> VideoExperiment {
        let model = TopicModel::generate(TopicModelConfig::default(), 9);
        let archive = VideoArchive::generate(&model, ArchiveConfig::default(), 9);
        let interests = [TopicId(0), TopicId(1), TopicId(2)];
        let mut rng = StdRng::seed_from_u64(9);
        let history: Vec<String> = (0..300)
            .map(|i| {
                let t = interests[i % interests.len()];
                model.sample_text(&mut rng, &[(t, 1.0)], 100)
            })
            .collect();
        let background: Vec<String> = (0..300)
            .map(|i| {
                let t = TopicId((i % model.topic_count()) as u32);
                model.sample_text(&mut rng, &[(t, 0.5)], 100)
            })
            .collect();
        let judgments = archive.judgments(&interests);
        VideoExperiment::prepare(
            &archive,
            history.iter().map(String::as_str),
            background.iter().map(String::as_str),
            judgments,
            ExperimentConfig::default(),
        )
    }

    #[test]
    fn query_improves_over_airing_order() {
        let exp = experiment();
        let point = exp.run(30, OfferWeightMode::TfIntegrated);
        assert!(
            point.comparison.improvement_pct > 10.0,
            "expected a clear improvement at N=30, got {}",
            point.comparison.improvement_pct
        );
    }

    #[test]
    fn selected_terms_are_topical() {
        let exp = experiment();
        let terms = exp.query_terms(10, OfferWeightMode::TfIntegrated);
        assert_eq!(terms.len(), 10);
        // The top terms must be much more frequent in history than
        // background.
        for t in &terms[..3] {
            assert!(t.history_df > t.background_df, "{t:?}");
        }
    }

    #[test]
    fn improvement_positive_across_paper_sweep() {
        let exp = experiment();
        let curve = exp.sweep(&[5, 30, 500], OfferWeightMode::TfIntegrated);
        for point in &curve {
            assert!(
                point.comparison.improvement_pct > 0.0,
                "N={} regressed: {}",
                point.n_terms,
                point.comparison.improvement_pct
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let exp = experiment();
        let a = exp.run(30, OfferWeightMode::TfIntegrated);
        let b = exp.run(30, OfferWeightMode::TfIntegrated);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one judgment per story")]
    fn judgment_length_is_validated() {
        let model = TopicModel::generate(TopicModelConfig::default(), 9);
        let archive = VideoArchive::generate(&model, ArchiveConfig::default(), 9);
        let _ = VideoExperiment::prepare(
            &archive,
            std::iter::empty(),
            std::iter::empty(),
            vec![true],
            ExperimentConfig::default(),
        );
    }
}
