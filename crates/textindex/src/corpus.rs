//! Document corpus: term dictionary, frequencies and postings.

use crate::tokenize::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a document within a [`Corpus`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// Identifier of a term in a corpus dictionary.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TermId(pub u32);

/// Per-document data.
#[derive(Debug, Clone)]
struct DocEntry {
    len: u32,
    tf: HashMap<TermId, u32>,
}

/// An in-memory document corpus with the statistics BM25 and Robertson
/// term selection need: term frequencies, document frequencies, document
/// lengths and postings lists.
///
/// # Examples
///
/// ```
/// use reef_textindex::{Corpus, Tokenizer};
///
/// let mut corpus = Corpus::new();
/// let tok = Tokenizer::new();
/// let d = corpus.add_text(&tok, "brokers route subscriptions to brokers");
/// assert_eq!(corpus.doc_count(), 1);
/// let broker = corpus.term_id("broker").unwrap();
/// assert_eq!(corpus.term_frequency(d, broker), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    terms: Vec<String>,
    dict: HashMap<String, TermId>,
    docs: Vec<DocEntry>,
    /// Document frequency per term.
    df: Vec<u32>,
    /// Postings: for each term, (doc, tf) pairs in insertion order.
    postings: Vec<Vec<(DocId, u32)>>,
    total_len: u64,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(id) = self.dict.get(term) {
            return *id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.dict.insert(term.to_owned(), id);
        self.df.push(0);
        self.postings.push(Vec::new());
        id
    }

    /// Look up a term id without interning.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dict.get(term).copied()
    }

    /// The string of a term id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.0 as usize).map(String::as_str)
    }

    /// Add a document given pre-tokenized terms.
    pub fn add_tokens<I, S>(&mut self, tokens: I) -> DocId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let doc = DocId(self.docs.len() as u32);
        let mut tf: HashMap<TermId, u32> = HashMap::new();
        let mut len = 0u32;
        for t in tokens {
            let id = self.intern(t.as_ref());
            *tf.entry(id).or_insert(0) += 1;
            len += 1;
        }
        for (term, count) in &tf {
            self.df[term.0 as usize] += 1;
            self.postings[term.0 as usize].push((doc, *count));
        }
        self.total_len += u64::from(len);
        self.docs.push(DocEntry { len, tf });
        doc
    }

    /// Tokenize `text` with `tokenizer` and add it as a document.
    pub fn add_text(&mut self, tokenizer: &Tokenizer, text: &str) -> DocId {
        self.add_tokens(tokenizer.tokenize(text))
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Length (token count) of a document.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.docs.get(doc.0 as usize).map_or(0, |d| d.len)
    }

    /// Mean document length.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.docs.len() as f64
        }
    }

    /// Document frequency of a term.
    pub fn doc_frequency(&self, term: TermId) -> u32 {
        self.df.get(term.0 as usize).copied().unwrap_or(0)
    }

    /// Term frequency of `term` in `doc`.
    pub fn term_frequency(&self, doc: DocId, term: TermId) -> u32 {
        self.docs
            .get(doc.0 as usize)
            .and_then(|d| d.tf.get(&term))
            .copied()
            .unwrap_or(0)
    }

    /// Total occurrences of a term across the corpus.
    pub fn collection_frequency(&self, term: TermId) -> u64 {
        self.postings
            .get(term.0 as usize)
            .map_or(0, |p| p.iter().map(|(_, tf)| u64::from(*tf)).sum())
    }

    /// Postings list of a term: `(doc, tf)` pairs.
    pub fn postings(&self, term: TermId) -> &[(DocId, u32)] {
        self.postings
            .get(term.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Iterate over all `(TermId, term)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }

    /// Iterate over `(term, tf)` pairs of one document.
    pub fn doc_terms(&self, doc: DocId) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.docs
            .get(doc.0 as usize)
            .into_iter()
            .flat_map(|d| d.tf.iter().map(|(t, c)| (*t, *c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let tok = Tokenizer::plain();
        c.add_text(&tok, "alpha beta alpha");
        c.add_text(&tok, "beta gamma");
        c.add_text(&tok, "delta");
        c
    }

    #[test]
    fn frequencies_and_lengths() {
        let c = corpus();
        assert_eq!(c.doc_count(), 3);
        assert_eq!(c.term_count(), 4);
        let alpha = c.term_id("alpha").unwrap();
        let beta = c.term_id("beta").unwrap();
        assert_eq!(c.term_frequency(DocId(0), alpha), 2);
        assert_eq!(c.doc_frequency(alpha), 1);
        assert_eq!(c.doc_frequency(beta), 2);
        assert_eq!(c.doc_len(DocId(0)), 3);
        assert!((c.avg_doc_len() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn postings_track_docs() {
        let c = corpus();
        let beta = c.term_id("beta").unwrap();
        assert_eq!(c.postings(beta), &[(DocId(0), 1), (DocId(1), 1)]);
        assert_eq!(c.collection_frequency(beta), 2);
    }

    #[test]
    fn unknown_terms_have_zero_stats() {
        let c = corpus();
        assert!(c.term_id("nope").is_none());
        assert_eq!(c.doc_frequency(TermId(99)), 0);
        assert_eq!(c.term_frequency(DocId(0), TermId(99)), 0);
        assert!(c.postings(TermId(99)).is_empty());
    }

    #[test]
    fn intern_is_stable() {
        let mut c = Corpus::new();
        let a = c.intern("x");
        let b = c.intern("x");
        assert_eq!(a, b);
        assert_eq!(c.term(a), Some("x"));
    }

    #[test]
    fn empty_corpus_avgdl_is_zero() {
        assert_eq!(Corpus::new().avg_doc_len(), 0.0);
    }

    #[test]
    fn doc_terms_iterates_document_vocabulary() {
        let c = corpus();
        let terms: Vec<(TermId, u32)> = c.doc_terms(DocId(0)).collect();
        assert_eq!(terms.len(), 2);
        assert_eq!(terms.iter().map(|(_, tf)| tf).sum::<u32>(), 3);
    }
}
