//! The Porter stemming algorithm (Porter, 1980), implemented from scratch.
//!
//! Stemming conflates morphological variants ("subscriptions" →
//! "subscript") before indexing and term selection, as any BM25-era IR
//! pipeline — including the one behind the paper's §3.3 experiment — would.
//!
//! The implementation follows the original five-step definition, operating
//! on ASCII lowercase words; non-ASCII or very short words pass through
//! unchanged.

/// Stem one word with the Porter algorithm.
///
/// The input should be lowercase; uppercase ASCII is lowered internally.
/// Words shorter than 3 characters are returned unchanged, as in the
/// original definition.
///
/// # Examples
///
/// ```
/// use reef_textindex::stem::porter_stem;
///
/// assert_eq!(porter_stem("subscriptions"), "subscript");
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("relational"), "relat");
/// ```
pub fn porter_stem(word: &str) -> String {
    let mut w: Vec<u8> = word
        .chars()
        .filter(char::is_ascii)
        .map(|c| c.to_ascii_lowercase() as u8)
        .collect();
    if w.len() < 3 || !w.iter().all(|b| b.is_ascii_lowercase()) {
        return String::from_utf8(w).expect("ascii");
    }
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii")
}

/// `true` when `w[i]` acts as a consonant.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// The measure m of `w[..len]`: the number of VC sequences in the
/// [C](VC)^m[V] decomposition.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // A consonant after vowels closes a VC pair.
        m += 1;
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

/// `true` when `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `true` when `w[..len]` ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// `*o`: stem ends consonant-vowel-consonant where the final consonant is
/// not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let last = w[len - 1];
    is_consonant(w, len - 1)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 3)
        && last != b'w'
        && last != b'x'
        && last != b'y'
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// Replace `suffix` with `replacement` if the stem before the suffix has
/// measure > `min_measure`. Returns whether the suffix was present (whether
/// or not the replacement fired).
fn replace_if_measure(
    w: &mut Vec<u8>,
    suffix: &str,
    replacement: &str,
    min_measure: usize,
) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_measure {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
    }
    true
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // keep
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let fired = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if fired {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) {
            let last = w[w.len() - 1];
            if last != b'l' && last != b's' && last != b'z' {
                w.truncate(w.len() - 1);
            }
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: [(&str, &str); 20] = [
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: [(&str, &str); 7] = [
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: [&str; 18] = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" has an extra condition, handled separately in order: it sits
    // between "ent" and "ou" in the original definition, but since at most
    // one suffix can match the longest-match-first scan below is
    // equivalent, with one exception pair (ement/ment/ent) handled by
    // ordering.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && (w[stem_len - 1] == b's' || w[stem_len - 1] == b't') {
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if ends_with(w, "ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical vectors from Porter's paper and the reference
    /// implementation's vocabulary.
    #[test]
    fn canonical_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controlling", "control"),
            ("rolling", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(porter_stem("as"), "as");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("a"), "a");
    }

    #[test]
    fn uppercase_is_lowered() {
        assert_eq!(porter_stem("Caresses"), "caress");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "subscription",
            "recommendation",
            "attention",
            "publisher",
            "browsing",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but should be stable on
            // these already-stemmed outputs.
            assert_eq!(porter_stem(&twice), twice, "{w}");
        }
    }

    #[test]
    fn synthetic_simweb_words_survive() {
        // Words from the simulated vocabulary should not be destroyed.
        for w in ["rukan", "stelom", "bailom", "chaivo"] {
            let s = porter_stem(w);
            assert!(s.len() >= 3, "{w} -> {s}");
        }
    }

    #[test]
    fn paper_terms() {
        assert_eq!(porter_stem("subscriptions"), "subscript");
        assert_eq!(porter_stem("publishing"), "publish");
        assert_eq!(porter_stem("notifications"), "notif");
        assert_eq!(porter_stem("recommended"), "recommend");
    }
}
