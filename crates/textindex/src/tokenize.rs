//! Tokenization: text → normalized term stream.

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;

/// Tokenizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tokenizer {
    /// Drop stopwords.
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer.
    pub stem: bool,
    /// Minimum token length (before stemming); shorter tokens are dropped.
    pub min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            remove_stopwords: true,
            stem: true,
            min_len: 2,
        }
    }
}

impl Tokenizer {
    /// A tokenizer with stopword removal and stemming enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tokenizer that only lowercases and splits (no stopwords, no
    /// stemming) — useful in tests and ablations.
    pub fn plain() -> Self {
        Tokenizer {
            remove_stopwords: false,
            stem: false,
            min_len: 1,
        }
    }

    /// Tokenize `text`: split on non-alphanumeric characters, lowercase,
    /// drop short tokens and pure numbers, then (optionally) remove
    /// stopwords and stem.
    ///
    /// # Examples
    ///
    /// ```
    /// use reef_textindex::Tokenizer;
    ///
    /// let toks = Tokenizer::new().tokenize("The subscriptions were placed!");
    /// assert_eq!(toks, vec!["subscript", "place"]);
    /// ```
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for raw in text.split(|c: char| !c.is_alphanumeric()) {
            if raw.len() < self.min_len {
                continue;
            }
            let lower = raw.to_lowercase();
            if lower.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if self.remove_stopwords && is_stopword(&lower) {
                continue;
            }
            let term = if self.stem {
                porter_stem(&lower)
            } else {
                lower
            };
            if term.is_empty() {
                continue;
            }
            // Stemming can recreate a stopword ("hes" → "he"); filter again.
            if self.remove_stopwords && is_stopword(&term) {
                continue;
            }
            out.push(term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let toks = Tokenizer::plain().tokenize("Hello, World! Foo-bar");
        assert_eq!(toks, vec!["hello", "world", "foo", "bar"]);
    }

    #[test]
    fn removes_stopwords() {
        let toks = Tokenizer::new().tokenize("the cat and the hat");
        assert_eq!(toks, vec!["cat", "hat"]);
    }

    #[test]
    fn stems_variants_together() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("subscribing")[0], t.tokenize("subscribe")[0]);
    }

    #[test]
    fn drops_numbers_and_short_tokens() {
        let toks = Tokenizer::new().tokenize("x 42 2024 ok subscription");
        assert!(!toks.contains(&"42".to_owned()));
        assert!(!toks.contains(&"x".to_owned()));
        assert!(toks.iter().any(|t| t.starts_with("subscript")));
    }

    #[test]
    fn alphanumeric_tokens_survive() {
        let toks = Tokenizer::new().tokenize("srv42 p3");
        assert!(toks.contains(&"srv42".to_owned()));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(Tokenizer::new().tokenize("").is_empty());
        assert!(Tokenizer::new().tokenize("  ,.;:!").is_empty());
    }

    #[test]
    fn unicode_is_handled_without_panic() {
        let toks = Tokenizer::new().tokenize("tromsø université 北京 data");
        assert!(toks.contains(&"data".to_owned()));
    }
}
