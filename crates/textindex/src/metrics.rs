//! Ranking-quality metrics.
//!
//! The §3.3 experiment measures "how effective the query was at placing
//! the most interesting stories first as compared to the order in which
//! the stories originally aired", reporting *precision improvement* — at
//! the peak, "a third more interesting stories appeared in the front".
//! These are the metrics behind that sentence.

use serde::{Deserialize, Serialize};

/// Precision at cutoff `k`: fraction of the first `k` items that are
/// relevant. `relevant` is the ranked relevance vector (best-ranked
/// first).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn precision_at_k(relevant: &[bool], k: usize) -> f64 {
    assert!(k > 0, "precision@k needs k > 0");
    let k = k.min(relevant.len());
    if k == 0 {
        return 0.0;
    }
    relevant[..k].iter().filter(|r| **r).count() as f64 / k as f64
}

/// R-precision: precision at the number of relevant documents.
pub fn r_precision(relevant: &[bool]) -> f64 {
    let r = relevant.iter().filter(|x| **x).count();
    if r == 0 {
        return 0.0;
    }
    precision_at_k(relevant, r)
}

/// Non-interpolated average precision.
pub fn average_precision(relevant: &[bool]) -> f64 {
    let total = relevant.iter().filter(|x| **x).count();
    if total == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, rel) in relevant.iter().enumerate() {
        if *rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total as f64
}

/// Normalized discounted cumulative gain at `k`, for graded relevance.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn ndcg_at_k(gains: &[f64], k: usize) -> f64 {
    assert!(k > 0, "ndcg@k needs k > 0");
    let k = k.min(gains.len());
    if k == 0 {
        return 0.0;
    }
    let dcg: f64 = gains[..k]
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = gains.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let idcg: f64 = ideal[..k]
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Relative improvement of `new` over `baseline`, in percent. A +34%
/// improvement means "a third more interesting stories in the front".
/// Returns 0 when the baseline is 0 and `new` is too; +∞ never occurs
/// (a zero baseline with positive `new` reports `new * 100` as if from a
/// unit baseline, keeping the harness total).
pub fn relative_improvement_pct(new: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        (new - baseline) / baseline * 100.0
    } else if new > 0.0 {
        new * 100.0
    } else {
        0.0
    }
}

/// Summary of one ranking evaluated against a baseline ordering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingComparison {
    /// Precision@k of the evaluated ranking.
    pub precision: f64,
    /// Precision@k of the baseline ordering.
    pub baseline_precision: f64,
    /// Relative improvement, percent.
    pub improvement_pct: f64,
    /// The cutoff used.
    pub k: usize,
}

/// Compare a ranking against a baseline ordering at cutoff `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn compare_at_k(ranked: &[bool], baseline: &[bool], k: usize) -> RankingComparison {
    let precision = precision_at_k(ranked, k);
    let baseline_precision = precision_at_k(baseline, k);
    RankingComparison {
        precision,
        baseline_precision,
        improvement_pct: relative_improvement_pct(precision, baseline_precision),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_at_k_counts_front_hits() {
        let rel = [true, false, true, true, false];
        assert!((precision_at_k(&rel, 1) - 1.0).abs() < 1e-9);
        assert!((precision_at_k(&rel, 2) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&rel, 4) - 0.75).abs() < 1e-9);
        // k beyond length clamps.
        assert!((precision_at_k(&rel, 100) - 0.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn precision_rejects_zero_k() {
        let _ = precision_at_k(&[true], 0);
    }

    #[test]
    fn r_precision_uses_relevant_count() {
        let rel = [true, true, false, false];
        assert!((r_precision(&rel) - 1.0).abs() < 1e-9);
        let rel2 = [false, false, true, true];
        assert!((r_precision(&rel2) - 0.0).abs() < 1e-9);
        assert_eq!(r_precision(&[false, false]), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        assert!((average_precision(&[true, true, false, false]) - 1.0).abs() < 1e-9);
        let ap = average_precision(&[false, false, true, true]);
        // Hits at ranks 3 and 4: (1/3 + 2/4) / 2.
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-9);
        assert_eq!(average_precision(&[false, false]), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_ideal_ordering() {
        assert!((ndcg_at_k(&[3.0, 2.0, 1.0, 0.0], 4) - 1.0).abs() < 1e-9);
        assert!(ndcg_at_k(&[0.0, 1.0, 2.0, 3.0], 4) < 1.0);
        assert_eq!(ndcg_at_k(&[0.0, 0.0], 2), 0.0);
    }

    #[test]
    fn improvement_percentage() {
        assert!((relative_improvement_pct(0.4, 0.3) - 33.333333).abs() < 1e-3);
        assert!((relative_improvement_pct(0.3, 0.3)).abs() < 1e-9);
        assert!(relative_improvement_pct(0.2, 0.3) < 0.0);
        assert_eq!(relative_improvement_pct(0.0, 0.0), 0.0);
    }

    #[test]
    fn compare_at_k_combines_metrics() {
        let ranked = [true, true, false, false];
        let baseline = [false, true, true, false];
        let c = compare_at_k(&ranked, &baseline, 2);
        assert!((c.precision - 1.0).abs() < 1e-9);
        assert!((c.baseline_precision - 0.5).abs() < 1e-9);
        assert!((c.improvement_pct - 100.0).abs() < 1e-9);
        assert_eq!(c.k, 2);
    }
}
