//! Okapi BM25 ranking (Robertson & Walker), the ranking function the paper
//! used for the video-news experiment (§3.3, footnote 2).

use crate::corpus::{Corpus, DocId, TermId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// BM25 free parameters.
///
/// The defaults are the standard `k1 = 1.2`, `b = 0.75`; the paper trained
/// its parameters on prior relevance-feedback experiments \[9\], which we
/// approximate with the standard values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength (0 = none, 1 = full).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A weighted query: `(term, weight)` pairs. Weights scale each term's
/// contribution — Reef feeds Offer-Weight-selected terms in with their
/// selection weights.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Query terms with weights.
    pub terms: Vec<(TermId, f64)>,
}

impl Query {
    /// Build an unweighted query from term ids.
    pub fn from_terms<I: IntoIterator<Item = TermId>>(terms: I) -> Self {
        Query {
            terms: terms.into_iter().map(|t| (t, 1.0)).collect(),
        }
    }

    /// Build a weighted query.
    pub fn weighted<I: IntoIterator<Item = (TermId, f64)>>(terms: I) -> Self {
        Query {
            terms: terms.into_iter().collect(),
        }
    }

    /// Resolve a list of term strings against a corpus dictionary,
    /// silently dropping out-of-vocabulary terms.
    pub fn from_strs<'a, I: IntoIterator<Item = &'a str>>(corpus: &Corpus, terms: I) -> Self {
        Query {
            terms: terms
                .into_iter()
                .filter_map(|t| corpus.term_id(t))
                .map(|t| (t, 1.0))
                .collect(),
        }
    }

    /// Number of query terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Robertson-Sparck-Jones style IDF with the +1 floor that keeps weights
/// positive: `ln(1 + (N - n + 0.5) / (n + 0.5))`.
pub fn idf(doc_count: usize, doc_frequency: u32) -> f64 {
    let n = doc_count as f64;
    let df = f64::from(doc_frequency);
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// Score one document against a query.
pub fn score_doc(corpus: &Corpus, params: Bm25Params, query: &Query, doc: DocId) -> f64 {
    let avgdl = corpus.avg_doc_len();
    let dl = f64::from(corpus.doc_len(doc));
    let mut score = 0.0;
    for (term, weight) in &query.terms {
        let tf = f64::from(corpus.term_frequency(doc, *term));
        if tf == 0.0 {
            continue;
        }
        let idf = idf(corpus.doc_count(), corpus.doc_frequency(*term));
        let norm = if avgdl > 0.0 {
            params.k1 * (1.0 - params.b + params.b * dl / avgdl)
        } else {
            params.k1
        };
        score += weight * idf * tf * (params.k1 + 1.0) / (tf + norm);
    }
    score
}

/// Rank every document in the corpus against `query`, best first. Ties are
/// broken by ascending [`DocId`] so rankings are deterministic.
///
/// Uses the postings lists, so cost is proportional to the total postings
/// of the query terms, not the corpus size.
///
/// # Examples
///
/// ```
/// use reef_textindex::{Bm25Params, Corpus, Query, Tokenizer, rank};
///
/// let mut corpus = Corpus::new();
/// let tok = Tokenizer::new();
/// corpus.add_text(&tok, "events route through brokers");
/// corpus.add_text(&tok, "cooking with garlic");
/// let q = Query::from_strs(&corpus, ["broker"].into_iter().map(|s| s).collect::<Vec<_>>());
/// let ranked = rank(&corpus, Bm25Params::default(), &q);
/// assert_eq!(ranked[0].0 .0, 0);
/// ```
pub fn rank(corpus: &Corpus, params: Bm25Params, query: &Query) -> Vec<(DocId, f64)> {
    let avgdl = corpus.avg_doc_len();
    let mut scores: HashMap<DocId, f64> = HashMap::new();
    for (term, weight) in &query.terms {
        let idf = idf(corpus.doc_count(), corpus.doc_frequency(*term));
        for (doc, tf) in corpus.postings(*term) {
            let tf = f64::from(*tf);
            let dl = f64::from(corpus.doc_len(*doc));
            let norm = if avgdl > 0.0 {
                params.k1 * (1.0 - params.b + params.b * dl / avgdl)
            } else {
                params.k1
            };
            *scores.entry(*doc).or_insert(0.0) +=
                weight * idf * tf * (params.k1 + 1.0) / (tf + norm);
        }
    }
    let mut out: Vec<(DocId, f64)> = scores.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

/// Rank *all* documents: documents matching no query term are appended in
/// id order with score 0. This produces a total order over the corpus, as
/// the video-news experiment needs (every story gets a position).
pub fn rank_all(corpus: &Corpus, params: Bm25Params, query: &Query) -> Vec<(DocId, f64)> {
    let mut ranked = rank(corpus, params, query);
    let mut seen = vec![false; corpus.doc_count()];
    for (doc, _) in &ranked {
        seen[doc.0 as usize] = true;
    }
    for (i, seen) in seen.iter().enumerate() {
        if !seen {
            ranked.push((DocId(i as u32), 0.0));
        }
    }
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let tok = Tokenizer::plain();
        c.add_text(&tok, "broker broker broker event");
        c.add_text(&tok, "broker event subscription");
        c.add_text(&tok, "cooking garlic dinner recipe");
        c.add_text(&tok, "event");
        c
    }

    #[test]
    fn tf_increases_score_with_saturation() {
        let c = corpus();
        let q = Query::from_strs(&c, vec!["broker"]);
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let s0 = score_doc(&c, p, &q, DocId(0));
        let s1 = score_doc(&c, p, &q, DocId(1));
        assert!(s0 > s1);
        // Saturation: tripling tf must not triple the score.
        assert!(s0 < s1 * 3.0);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let c = corpus();
        assert!(
            idf(c.doc_count(), c.doc_frequency(c.term_id("garlic").unwrap()))
                > idf(c.doc_count(), c.doc_frequency(c.term_id("event").unwrap()))
        );
    }

    #[test]
    fn length_normalization_penalizes_long_docs() {
        let mut c = Corpus::new();
        let tok = Tokenizer::plain();
        c.add_text(
            &tok,
            "topic filler filler filler filler filler filler filler",
        );
        c.add_text(&tok, "topic filler");
        let q = Query::from_strs(&c, vec!["topic"]);
        let p = Bm25Params { k1: 1.2, b: 0.75 };
        assert!(score_doc(&c, p, &q, DocId(1)) > score_doc(&c, p, &q, DocId(0)));
    }

    #[test]
    fn rank_orders_by_score_then_id() {
        let c = corpus();
        let q = Query::from_strs(&c, vec!["event"]);
        let ranked = rank(&c, Bm25Params::default(), &q);
        assert_eq!(ranked.len(), 3);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rank_all_covers_every_document() {
        let c = corpus();
        let q = Query::from_strs(&c, vec!["garlic"]);
        let ranked = rank_all(&c, Bm25Params::default(), &q);
        assert_eq!(ranked.len(), c.doc_count());
        assert_eq!(ranked[0].0, DocId(2));
        assert_eq!(ranked.last().unwrap().1, 0.0);
    }

    #[test]
    fn weighted_terms_scale_contribution() {
        let c = corpus();
        let garlic = c.term_id("garlic").unwrap();
        let q1 = Query::weighted(vec![(garlic, 1.0)]);
        let q2 = Query::weighted(vec![(garlic, 2.0)]);
        let s1 = score_doc(&c, Bm25Params::default(), &q1, DocId(2));
        let s2 = score_doc(&c, Bm25Params::default(), &q2, DocId(2));
        assert!((s2 - 2.0 * s1).abs() < 1e-9);
    }

    #[test]
    fn empty_query_scores_zero() {
        let c = corpus();
        assert_eq!(
            score_doc(&c, Bm25Params::default(), &Query::default(), DocId(0)),
            0.0
        );
        assert!(rank(&c, Bm25Params::default(), &Query::default()).is_empty());
    }

    #[test]
    fn out_of_vocabulary_terms_are_dropped() {
        let c = corpus();
        let q = Query::from_strs(&c, vec!["zzz", "broker"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn idf_is_positive_even_for_ubiquitous_terms() {
        assert!(idf(10, 10) > 0.0);
        assert!(idf(10, 1) > idf(10, 5));
    }
}
