//! Robertson term selection: picking the terms that represent a user's
//! interests.
//!
//! The paper extracts "the most important terms" from a user's browsing
//! history "using a modified version of Robertson's Offer Weight formula
//! which integrates the term frequency measure into the ranking process"
//! (§3.3, footnote 1, citing Robertson & Sparck Jones, *Simple proven
//! approaches to text retrieval*). Both the classic Offer Weight and the
//! TF-integrated modification are implemented; experiment **E2** reports
//! the ablation between them.
//!
//! Framing: the user's history documents form the *relevant set* R inside
//! a combined collection (history + background corpus). For each term,
//!
//! * `r` — history documents containing the term,
//! * `R` — history documents,
//! * `n` — all documents containing the term,
//! * `N` — all documents,
//!
//! the Robertson/Sparck-Jones relevance weight is
//! `rw = ln( ((r+0.5)(N-n-R+r+0.5)) / ((n-r+0.5)(R-r+0.5)) )` and the
//! classic Offer Weight is `OW = r · rw`. The TF-integrated variant
//! replaces the document count `r` with saturated term-frequency mass
//! `Σ_d tf/(tf+k)`, rewarding terms the user saw *often*, not merely
//! *widely*.

use crate::corpus::{Corpus, TermId};
use serde::{Deserialize, Serialize};

/// Which Offer-Weight variant to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OfferWeightMode {
    /// Classic `r · rw` (document counts only).
    Classic,
    /// The paper's modification: saturated TF mass replaces `r`.
    #[default]
    TfIntegrated,
}

/// Saturation constant for the TF-integrated mode.
pub const TF_SATURATION_K: f64 = 1.5;

/// The Robertson/Sparck-Jones relevance weight with 0.5 smoothing.
///
/// All counts are clamped into valid ranges, so the function is total.
pub fn relevance_weight(r: f64, big_r: f64, n: f64, big_n: f64) -> f64 {
    let r = r.max(0.0).min(big_r).min(n);
    let numerator = (r + 0.5) * (big_n - n - big_r + r + 0.5).max(0.5);
    let denominator = (n - r + 0.5).max(0.5) * (big_r - r + 0.5).max(0.5);
    (numerator / denominator).ln()
}

/// One selected term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectedTerm {
    /// The term string (from the history corpus dictionary).
    pub term: String,
    /// Offer weight.
    pub weight: f64,
    /// History documents containing the term.
    pub history_df: u32,
    /// Background documents containing the term.
    pub background_df: u32,
}

/// Select the top `n` terms of `history` by Offer Weight against
/// `background`.
///
/// Terms with non-positive weight are excluded; ties are broken
/// alphabetically so selection is deterministic.
///
/// # Examples
///
/// ```
/// use reef_textindex::{Corpus, Tokenizer, select_terms, OfferWeightMode};
///
/// let tok = Tokenizer::new();
/// let mut history = Corpus::new();
/// history.add_text(&tok, "brokers brokers routing");
/// let mut background = Corpus::new();
/// background.add_text(&tok, "weather cooking gardens");
/// background.add_text(&tok, "weather sports");
/// let top = select_terms(&history, &background, 2, OfferWeightMode::TfIntegrated);
/// assert_eq!(top[0].term, "broker");
/// ```
pub fn select_terms(
    history: &Corpus,
    background: &Corpus,
    n: usize,
    mode: OfferWeightMode,
) -> Vec<SelectedTerm> {
    let big_r = history.doc_count() as f64;
    let big_n = (history.doc_count() + background.doc_count()) as f64;
    let mut selected: Vec<SelectedTerm> = Vec::with_capacity(history.term_count());
    for (term_id, term) in history.terms() {
        let history_df = history.doc_frequency(term_id);
        if history_df == 0 {
            continue;
        }
        let background_df = background
            .term_id(term)
            .map_or(0, |t| background.doc_frequency(t));
        let r = f64::from(history_df);
        let n_t = r + f64::from(background_df);
        let rw = relevance_weight(r, big_r, n_t, big_n);
        let mass = match mode {
            OfferWeightMode::Classic => r,
            OfferWeightMode::TfIntegrated => saturated_tf_mass(history, term_id),
        };
        let weight = mass * rw;
        if weight > 0.0 {
            selected.push(SelectedTerm {
                term: term.to_owned(),
                weight,
                history_df,
                background_df,
            });
        }
    }
    selected.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.term.cmp(&b.term))
    });
    selected.truncate(n);
    selected
}

/// Saturated term-frequency mass of a term over the history corpus:
/// `Σ_d tf/(tf + k)`.
fn saturated_tf_mass(history: &Corpus, term: TermId) -> f64 {
    history
        .postings(term)
        .iter()
        .map(|(_, tf)| {
            let tf = f64::from(*tf);
            tf / (tf + TF_SATURATION_K)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn corpora() -> (Corpus, Corpus) {
        let tok = Tokenizer::plain();
        let mut history = Corpus::new();
        history.add_text(&tok, "rust brokers events");
        history.add_text(&tok, "rust brokers filters");
        history.add_text(&tok, "rust weather");
        let mut background = Corpus::new();
        background.add_text(&tok, "weather cooking");
        background.add_text(&tok, "weather gardens");
        background.add_text(&tok, "cooking sports");
        background.add_text(&tok, "sports scores");
        (history, background)
    }

    #[test]
    fn history_specific_terms_rank_above_shared_ones() {
        let (history, background) = corpora();
        let top = select_terms(&history, &background, 10, OfferWeightMode::Classic);
        let rank_of = |t: &str| top.iter().position(|s| s.term == t);
        assert!(rank_of("rust").unwrap() < rank_of("weather").unwrap_or(usize::MAX));
        assert!(rank_of("brokers").unwrap() < rank_of("weather").unwrap_or(usize::MAX));
    }

    #[test]
    fn truncates_to_n() {
        let (history, background) = corpora();
        assert!(select_terms(&history, &background, 2, OfferWeightMode::Classic).len() <= 2);
    }

    #[test]
    fn weights_are_descending() {
        let (history, background) = corpora();
        let top = select_terms(&history, &background, 10, OfferWeightMode::TfIntegrated);
        for w in top.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn tf_integration_rewards_repeated_terms() {
        let tok = Tokenizer::plain();
        let mut history = Corpus::new();
        // "loud" appears 5 times in one doc; "wide" once in one doc.
        history.add_text(&tok, "loud loud loud loud loud");
        history.add_text(&tok, "wide quiet");
        let background = {
            let mut b = Corpus::new();
            b.add_text(&tok, "filler noise");
            b.add_text(&tok, "other stuff");
            b
        };
        let classic = select_terms(&history, &background, 10, OfferWeightMode::Classic);
        let tf_mode = select_terms(&history, &background, 10, OfferWeightMode::TfIntegrated);
        let w = |list: &[SelectedTerm], t: &str| {
            list.iter()
                .find(|s| s.term == t)
                .map(|s| s.weight)
                .unwrap_or(0.0)
        };
        // Classic mode sees identical document counts, so equal weights;
        // TF mode must favour the repeated term.
        assert!((w(&classic, "loud") - w(&classic, "wide")).abs() < 1e-9);
        assert!(w(&tf_mode, "loud") > w(&tf_mode, "wide"));
    }

    #[test]
    fn relevance_weight_is_total_on_edge_cases() {
        assert!(relevance_weight(0.0, 0.0, 0.0, 0.0).is_finite());
        assert!(relevance_weight(5.0, 3.0, 2.0, 1.0).is_finite());
        assert!(relevance_weight(1.0, 1.0, 1.0, 1.0).is_finite());
    }

    #[test]
    fn relevance_weight_grows_with_relevance_concentration() {
        // Term in all relevant docs, none elsewhere, big collection.
        let concentrated = relevance_weight(10.0, 10.0, 10.0, 1000.0);
        // Term spread evenly.
        let spread = relevance_weight(10.0, 10.0, 500.0, 1000.0);
        assert!(concentrated > spread);
    }

    #[test]
    fn empty_history_selects_nothing() {
        let (_, background) = corpora();
        let empty = Corpus::new();
        assert!(select_terms(&empty, &background, 5, OfferWeightMode::Classic).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let (history, background) = corpora();
        let a = select_terms(&history, &background, 5, OfferWeightMode::TfIntegrated);
        let b = select_terms(&history, &background, 5, OfferWeightMode::TfIntegrated);
        assert_eq!(a, b);
    }
}
