//! # reef-textindex — the information-retrieval engine behind Reef
//!
//! The paper's content-based subscriptions (§3.3) are built with classic
//! probabilistic IR: terms are selected from a user's browsing history
//! with *Robertson's Offer Weight* (modified to integrate term frequency,
//! footnote 1) and video stories are ranked with *BM25* (footnote 2). This
//! crate implements that pipeline from scratch:
//!
//! * [`Tokenizer`] — splitting, lowercasing, stopword removal
//!   ([`stopwords`]), and the full Porter stemmer ([`stem::porter_stem`]);
//! * [`Corpus`] — document index with term/document frequencies and
//!   postings;
//! * [`select_terms`] — classic and TF-integrated Offer Weight term
//!   selection;
//! * [`rank`] / [`rank_all`] — Okapi BM25 ranking with weighted queries;
//! * [`metrics`] — precision@k, R-precision, average precision, nDCG, and
//!   the relative-improvement measure the paper reports.
//!
//! ```
//! use reef_textindex::{Corpus, Tokenizer, select_terms, OfferWeightMode};
//!
//! let tok = Tokenizer::new();
//! let mut history = Corpus::new();
//! history.add_text(&tok, "publish subscribe brokers routing events");
//! let mut background = Corpus::new();
//! background.add_text(&tok, "cooking weather sports");
//! let terms = select_terms(&history, &background, 3, OfferWeightMode::TfIntegrated);
//! assert!(!terms.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bm25;
pub mod corpus;
pub mod metrics;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod weight;

pub use bm25::{idf, rank, rank_all, score_doc, Bm25Params, Query};
pub use corpus::{Corpus, DocId, TermId};
pub use metrics::{
    average_precision, compare_at_k, ndcg_at_k, precision_at_k, r_precision,
    relative_improvement_pct, RankingComparison,
};
pub use stem::porter_stem;
pub use tokenize::Tokenizer;
pub use weight::{relevance_weight, select_terms, OfferWeightMode, SelectedTerm};
