//! Stopword list used by the tokenizer.
//!
//! A compact English function-word list in the tradition of the van
//! Rijsbergen / SMART lists. It is a superset of the words the simulated
//! Web injects into generated text, so stopword removal does real work in
//! the reproduction experiments.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The stopword list, alphabetical.
pub const STOPWORDS: [&str; 121] = [
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each", "few",
    "for", "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him",
    "his", "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "me", "more",
    "most", "my", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other",
    "our", "ours", "out", "over", "own", "same", "she", "should", "so", "some", "such", "than",
    "that", "the", "their", "theirs", "them", "then", "there", "these", "they", "this", "those",
    "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what", "when",
    "where", "which", "while", "who", "whom", "why", "will", "with", "would", "you", "your",
    "yours", "yourself",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// `true` when `word` (already lowercase) is a stopword.
///
/// # Examples
///
/// ```
/// assert!(reef_textindex::stopwords::is_stopword("the"));
/// assert!(!reef_textindex::stopwords::is_stopword("broker"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "of", "to", "is", "was", "there", "which"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["subscription", "broker", "event", "video"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_sorted_and_unique() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), STOPWORDS.len());
    }

    #[test]
    fn covers_simweb_injected_stopwords() {
        // reef-simweb injects these 40 function words into generated text;
        // the tokenizer must strip all of them.
        let simweb = [
            "the", "a", "an", "of", "to", "and", "in", "is", "it", "that", "for", "on", "was",
            "with", "as", "by", "at", "from", "this", "are", "be", "or", "not", "have", "has",
            "had", "but", "they", "you", "we", "his", "her", "its", "were", "been", "their",
            "which", "will", "would", "there",
        ];
        for w in simweb {
            assert!(is_stopword(w), "simweb stopword {w} missing");
        }
    }
}
