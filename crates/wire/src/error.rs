//! Error type shared by the wire client and server.

use std::fmt;
use std::io;

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent bytes that are not a valid frame or message.
    Protocol(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version this endpoint speaks.
        ours: u8,
        /// Version found on the incoming frame.
        theirs: u8,
    },
    /// A frame exceeded [`crate::frame::MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The server answered a request with an error response.
    Remote(String),
    /// The connection is closed (clean EOF or already shut down).
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak v{ours}, peer sent v{theirs}"
                )
            }
            WireError::FrameTooLarge(len) => write!(f, "frame of {len} bytes exceeds limit"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<serde_json::Error> for WireError {
    fn from(e: serde_json::Error) -> Self {
        WireError::Protocol(e.to_string())
    }
}
