//! Wire codecs: pluggable encodings for the protocol enums.
//!
//! A [`WireCodec`] turns [`ClientFrame`]s, [`ServerFrame`]s and
//! [`PeerMsg`]s into [`Frame`]s and back. Two implementations exist:
//!
//! * [`JsonCodec`] — protocol **version 1**, the original JSON encoding.
//!   Byte-compatible with pre-codec builds: requests travel as bare
//!   [`Request`] JSON and server traffic as [`ServerMessage`] JSON, so
//!   old clients keep connecting unchanged. Correlation ids do not exist
//!   on the v1 wire; request/reply pairing is by order.
//! * [`BinaryCodec`] — protocol **version 2**, a compact hand-rolled
//!   tag/varint encoding (the build environment has no registry access,
//!   so no serde-binary crate is available). Every frame carries an
//!   explicit correlation id; strings are length-delimited, integers are
//!   LEB128 varints (zigzag for signed), floats are 8-byte
//!   little-endian IEEE 754 bit patterns, and enum variants are single
//!   tag bytes.
//!
//! The codec of a connection is **negotiated by the frame version byte**:
//! whatever version the first frame (`Hello` / `PeerHello`) carries is
//! the codec both directions speak for the connection's lifetime. See
//! [`crate::frame`] for the negotiation rules.
//!
//! # v2 tag assignments
//!
//! Enum variants travel as single tag bytes. Tags are append-only — new
//! variants take the next free number and existing tags never renumber,
//! so older v2 parties reject unknown traffic cleanly instead of
//! misreading it:
//!
//! | enum | tag → variant |
//! |---|---|
//! | `Request` | 0 `Hello`, 1 `Subscribe`, 2 `Unsubscribe`, 3 `Publish`, 4 `UploadClicks`, 5 `Stats`, 6 `Ping`, 7 `Bye`, 8 `PeerHello`, 9 `AutoSubscribe`, 10 `AutoUnsubscribe` |
//! | `Response` | 0 `Hello`, 1 `Subscribed`, 2 `Unsubscribed`, 3 `Published`, 4 `ClicksAccepted`, 5 `Stats`, 6 `Pong`, 7 `Bye`, 8 `PeerWelcome`, 9 `Error`, 10 `AutoSubscribed`, 11 `AutoUnsubscribed` |
//! | `ServerFrame` | 0 `Reply`, 1 `Deliver`, 2 `FeedChanged` |
//! | `PeerMsg` | 0 `SubFwd`, 1 `UnsubFwd`, 2 `EventFwd` |
//! | `Value` | 0 `Str`, 1 `Int`, 2 `Float`, 3 `Bool` |
//! | `AutoSubMode` | 0 `Topic`, 1 `Content` |
//!
//! `Op` travels as its index in `Op::ALL`, and the auto-subscription
//! payloads (`AutoSubPolicy`, `AutoSubReceipt`, `FeedChange`) are plain
//! field sequences in declaration order, entries length-prefixed like
//! every other vector.

use crate::error::WireError;
use crate::frame::{Frame, PROTOCOL_V1_JSON, PROTOCOL_V2_BINARY};
use crate::protocol::{
    AutoSubEntry, AutoSubPolicy, AutoSubReceipt, ClientFrame, Deliver, FeedChange, Request,
    Response, ServerFrame, ServerMessage,
};
use crate::stats::{CodecStatsSnapshot, FederationStatsSnapshot, WireStatsSnapshot};
use reef_attention::{Click, ClickBatch, UploadReceipt};
use reef_core::AutoSubMode;
use reef_pubsub::{
    BrokerStatsSnapshot, Event, EventId, Filter, GlobalSubId, Op, PeerMsg, Predicate,
    PublishedEvent, SubscriptionId, Value,
};
use reef_simweb::UserId;

/// Which encoding a connection speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Protocol v1: JSON payloads, pairing by order (legacy-compatible).
    Json,
    /// Protocol v2: compact tag/varint binary payloads with correlation
    /// ids (the default for new connections).
    #[default]
    Binary,
}

impl CodecKind {
    /// The frame version byte this codec stamps on its frames.
    pub fn version(self) -> u8 {
        match self {
            CodecKind::Json => PROTOCOL_V1_JSON,
            CodecKind::Binary => PROTOCOL_V2_BINARY,
        }
    }

    /// Human-readable codec name (`json` / `binary`).
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Json => "json",
            CodecKind::Binary => "binary",
        }
    }

    /// The codec negotiated by a frame carrying `version`, if any.
    pub fn for_version(version: u8) -> Option<CodecKind> {
        match version {
            PROTOCOL_V1_JSON => Some(CodecKind::Json),
            PROTOCOL_V2_BINARY => Some(CodecKind::Binary),
            _ => None,
        }
    }

    /// Parse a `--codec` flag value.
    pub fn parse(raw: &str) -> Option<CodecKind> {
        match raw {
            "json" | "v1" => Some(CodecKind::Json),
            "binary" | "bin" | "v2" => Some(CodecKind::Binary),
            _ => None,
        }
    }

    /// The codec implementation for this kind.
    pub fn codec(self) -> &'static dyn WireCodec {
        match self {
            CodecKind::Json => &JsonCodec,
            CodecKind::Binary => &BinaryCodec,
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Encode/decode of the protocol enums to and from [`Frame`] payloads.
///
/// All methods are object-safe so connections can hold a negotiated
/// `&'static dyn WireCodec` picked at handshake time.
pub trait WireCodec: Send + Sync {
    /// Which codec this is.
    fn kind(&self) -> CodecKind;

    /// Frame version byte stamped on every frame of this codec.
    fn version(&self) -> u8 {
        self.kind().version()
    }

    /// Encode one client → server frame (request plus correlation id).
    fn encode_client(&self, frame: &ClientFrame) -> Result<Frame, WireError>;

    /// Decode one client → server frame.
    fn decode_client(&self, frame: &Frame) -> Result<ClientFrame, WireError>;

    /// Encode one server → client frame (reply or delivery).
    fn encode_server(&self, frame: &ServerFrame) -> Result<Frame, WireError>;

    /// Encode one delivery straight from a borrowed event.
    ///
    /// This is the hot path of event fan-out: the broker hands transports
    /// a shared `Arc<PublishedEvent>` per matching subscriber, and this
    /// method frames it without ever building an owned
    /// [`ServerFrame::Deliver`] (which would deep-clone the event per
    /// subscriber).
    fn encode_deliver(&self, event: &PublishedEvent) -> Result<Frame, WireError>;

    /// Decode one server → client frame.
    fn decode_server(&self, frame: &Frame) -> Result<ServerFrame, WireError>;

    /// Encode one broker ↔ broker routing message.
    fn encode_peer(&self, msg: &PeerMsg) -> Result<Frame, WireError>;

    /// Decode one broker ↔ broker routing message.
    fn decode_peer(&self, frame: &Frame) -> Result<PeerMsg, WireError>;
}

/// Reject frames whose version byte does not match the codec decoding
/// them: a negotiated connection must never switch encodings mid-stream.
fn check_version(codec: &dyn WireCodec, frame: &Frame) -> Result<(), WireError> {
    if frame.version != codec.version() {
        return Err(WireError::VersionMismatch {
            ours: codec.version(),
            theirs: frame.version,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON (protocol v1)

/// The original JSON encoding, byte-compatible with pre-codec builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

/// Borrowed mirror of [`ServerMessage`] so encoding a v1 server frame
/// does not deep-clone the response or the delivered event (the delivery
/// pump pays this per event per v1 subscriber). Serializes to byte-
/// identical JSON: the derive encodes a newtype variant as a one-entry
/// map and the `Deliver` struct as a one-field map, both mirrored here
/// by hand.
enum ServerMessageRef<'a> {
    Reply(&'a Response),
    Deliver(&'a PublishedEvent),
    FeedChanged(&'a FeedChange),
}

impl serde::Serialize for ServerMessageRef<'_> {
    fn to_value(&self) -> serde::Value {
        let (tag, value) = match self {
            ServerMessageRef::Reply(response) => ("Reply", response.to_value()),
            ServerMessageRef::Deliver(event) => (
                "Deliver",
                serde::Value::Map(vec![("event".to_string(), event.to_value())]),
            ),
            ServerMessageRef::FeedChanged(change) => ("FeedChanged", change.to_value()),
        };
        serde::Value::Map(vec![(tag.to_string(), value)])
    }
}

impl WireCodec for JsonCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Json
    }

    fn encode_client(&self, frame: &ClientFrame) -> Result<Frame, WireError> {
        // v1 has no correlation ids on the wire: the request travels bare
        // and replies pair up by order.
        Ok(Frame {
            version: PROTOCOL_V1_JSON,
            payload: serde_json::to_vec(&frame.request)?,
        })
    }

    fn decode_client(&self, frame: &Frame) -> Result<ClientFrame, WireError> {
        check_version(self, frame)?;
        Ok(ClientFrame {
            corr: 0,
            request: serde_json::from_slice(&frame.payload)?,
        })
    }

    fn encode_server(&self, frame: &ServerFrame) -> Result<Frame, WireError> {
        let message = match frame {
            ServerFrame::Reply { response, .. } => ServerMessageRef::Reply(response),
            ServerFrame::Deliver(deliver) => ServerMessageRef::Deliver(&deliver.event),
            ServerFrame::FeedChanged(change) => ServerMessageRef::FeedChanged(change),
        };
        Ok(Frame {
            version: PROTOCOL_V1_JSON,
            payload: serde_json::to_vec(&message)?,
        })
    }

    fn encode_deliver(&self, event: &PublishedEvent) -> Result<Frame, WireError> {
        Ok(Frame {
            version: PROTOCOL_V1_JSON,
            payload: serde_json::to_vec(&ServerMessageRef::Deliver(event))?,
        })
    }

    fn decode_server(&self, frame: &Frame) -> Result<ServerFrame, WireError> {
        check_version(self, frame)?;
        Ok(
            match serde_json::from_slice::<ServerMessage>(&frame.payload)? {
                ServerMessage::Reply(response) => ServerFrame::Reply { corr: 0, response },
                ServerMessage::Deliver(deliver) => ServerFrame::Deliver(deliver),
                ServerMessage::FeedChanged(change) => ServerFrame::FeedChanged(change),
            },
        )
    }

    fn encode_peer(&self, msg: &PeerMsg) -> Result<Frame, WireError> {
        Ok(Frame {
            version: PROTOCOL_V1_JSON,
            payload: serde_json::to_vec(msg)?,
        })
    }

    fn decode_peer(&self, frame: &Frame) -> Result<PeerMsg, WireError> {
        check_version(self, frame)?;
        Ok(serde_json::from_slice(&frame.payload)?)
    }
}

// ---------------------------------------------------------------------------
// Binary (protocol v2)

/// Compact hand-rolled tag/varint encoding, protocol version 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

impl WireCodec for BinaryCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Binary
    }

    fn encode_client(&self, frame: &ClientFrame) -> Result<Frame, WireError> {
        let mut w = Writer::new();
        w.u64(frame.corr);
        put_request(&mut w, &frame.request);
        Ok(Frame {
            version: PROTOCOL_V2_BINARY,
            payload: w.into_bytes(),
        })
    }

    fn decode_client(&self, frame: &Frame) -> Result<ClientFrame, WireError> {
        check_version(self, frame)?;
        let mut r = Reader::new(&frame.payload);
        let corr = r.u64()?;
        let request = get_request(&mut r)?;
        r.finish()?;
        Ok(ClientFrame { corr, request })
    }

    fn encode_server(&self, frame: &ServerFrame) -> Result<Frame, WireError> {
        let mut w = Writer::new();
        match frame {
            ServerFrame::Reply { corr, response } => {
                w.tag(0);
                w.u64(*corr);
                put_response(&mut w, response);
            }
            ServerFrame::Deliver(deliver) => {
                w.tag(1);
                put_published(&mut w, &deliver.event);
            }
            ServerFrame::FeedChanged(change) => {
                w.tag(2);
                put_feed_change(&mut w, change);
            }
        }
        Ok(Frame {
            version: PROTOCOL_V2_BINARY,
            payload: w.into_bytes(),
        })
    }

    fn encode_deliver(&self, event: &PublishedEvent) -> Result<Frame, WireError> {
        let mut w = Writer::new();
        w.tag(1);
        put_published(&mut w, event);
        Ok(Frame {
            version: PROTOCOL_V2_BINARY,
            payload: w.into_bytes(),
        })
    }

    fn decode_server(&self, frame: &Frame) -> Result<ServerFrame, WireError> {
        check_version(self, frame)?;
        let mut r = Reader::new(&frame.payload);
        let out = match r.tag("ServerFrame")? {
            0 => {
                let corr = r.u64()?;
                let response = get_response(&mut r)?;
                ServerFrame::Reply { corr, response }
            }
            1 => ServerFrame::Deliver(Deliver {
                event: get_published(&mut r)?,
            }),
            2 => ServerFrame::FeedChanged(get_feed_change(&mut r)?),
            t => return Err(bad_tag("ServerFrame", t)),
        };
        r.finish()?;
        Ok(out)
    }

    fn encode_peer(&self, msg: &PeerMsg) -> Result<Frame, WireError> {
        let mut w = Writer::new();
        match msg {
            PeerMsg::SubFwd { sub, filter } => {
                w.tag(0);
                w.u64(sub.0);
                put_filter(&mut w, filter);
            }
            PeerMsg::UnsubFwd { sub } => {
                w.tag(1);
                w.u64(sub.0);
            }
            PeerMsg::EventFwd { event, hops } => {
                w.tag(2);
                put_published(&mut w, event);
                w.u64(u64::from(*hops));
            }
            PeerMsg::SubAdv { sub, filter, path } => {
                w.tag(3);
                w.u64(sub.0);
                put_filter(&mut w, filter);
                w.u64(path.len() as u64);
                for hop in path {
                    w.u64(u64::from(*hop));
                }
            }
            PeerMsg::Ping { nonce } => {
                w.tag(4);
                w.u64(*nonce);
            }
            PeerMsg::Pong { nonce } => {
                w.tag(5);
                w.u64(*nonce);
            }
        }
        Ok(Frame {
            version: PROTOCOL_V2_BINARY,
            payload: w.into_bytes(),
        })
    }

    fn decode_peer(&self, frame: &Frame) -> Result<PeerMsg, WireError> {
        check_version(self, frame)?;
        let mut r = Reader::new(&frame.payload);
        let out = match r.tag("PeerMsg")? {
            0 => PeerMsg::SubFwd {
                sub: GlobalSubId(r.u64()?),
                filter: get_filter(&mut r)?,
            },
            1 => PeerMsg::UnsubFwd {
                sub: GlobalSubId(r.u64()?),
            },
            2 => PeerMsg::EventFwd {
                event: get_published(&mut r)?,
                hops: r.u32()?,
            },
            3 => {
                let sub = GlobalSubId(r.u64()?);
                let filter = get_filter(&mut r)?;
                let len = r.u64()? as usize;
                let mut path = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    path.push(r.u32()?);
                }
                PeerMsg::SubAdv { sub, filter, path }
            }
            4 => PeerMsg::Ping { nonce: r.u64()? },
            5 => PeerMsg::Pong { nonce: r.u64()? },
            t => return Err(bad_tag("PeerMsg", t)),
        };
        r.finish()?;
        Ok(out)
    }
}

impl BinaryCodec {
    /// Encode a client frame using the **pre-compression** v2 click-batch
    /// layout (absolute days/ticks, full URL and referrer strings).
    /// Non-upload requests encode identically to
    /// [`WireCodec::encode_client`].
    ///
    /// Benchmark/migration reference only: frames produced here do *not*
    /// decode through [`WireCodec::decode_client`] — pair them with
    /// [`BinaryCodec::decode_client_uncompressed`].
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors the trait surface.
    pub fn encode_client_uncompressed(&self, frame: &ClientFrame) -> Result<Frame, WireError> {
        match &frame.request {
            Request::UploadClicks { batch } => {
                let mut w = Writer::new();
                w.u64(frame.corr);
                w.tag(UPLOAD_CLICKS_TAG);
                put_batch_plain(&mut w, batch);
                Ok(Frame {
                    version: PROTOCOL_V2_BINARY,
                    payload: w.into_bytes(),
                })
            }
            _ => self.encode_client(frame),
        }
    }

    /// Decode a frame produced by
    /// [`BinaryCodec::encode_client_uncompressed`].
    ///
    /// # Errors
    ///
    /// The same protocol errors as [`WireCodec::decode_client`].
    pub fn decode_client_uncompressed(&self, frame: &Frame) -> Result<ClientFrame, WireError> {
        check_version(self, frame)?;
        let mut r = Reader::new(&frame.payload);
        let corr = r.u64()?;
        if r.tag("Request")? != UPLOAD_CLICKS_TAG {
            return self.decode_client(frame);
        }
        let batch = get_batch_plain(&mut r)?;
        r.finish()?;
        Ok(ClientFrame {
            corr,
            request: Request::UploadClicks { batch },
        })
    }
}

// ---------------------------------------------------------------------------
// Binary primitives

/// Byte-buffer writer for the v2 encoding.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn tag(&mut self, tag: u8) {
        self.buf.push(tag);
    }

    /// LEB128 unsigned varint.
    fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-mapped signed varint.
    fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// IEEE 754 bit pattern, little-endian, all 8 bytes (bit-exact, NaN
    /// payloads included).
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Length-delimited UTF-8.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a v2 payload; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> WireError {
    WireError::Protocol(format!("binary payload truncated reading {what}"))
}

fn bad_tag(what: &str, tag: u8) -> WireError {
    WireError::Protocol(format!("unknown {what} tag {tag}"))
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn byte(&mut self, what: &str) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn tag(&mut self, what: &str) -> Result<u8, WireError> {
        self.byte(what)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte("varint")?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Protocol("varint overflows u64".into()));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Protocol("varint longer than 10 bytes".into()));
            }
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64()?).map_err(|_| WireError::Protocol("varint overflows u32".into()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| truncated("f64"))?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.byte("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Protocol(format!("invalid bool byte {b}"))),
        }
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u64()? as usize;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| truncated("string"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| WireError::Protocol("string is not valid UTF-8".into()))?
            .to_owned();
        self.pos = end;
        Ok(s)
    }

    /// Every byte of the payload must be consumed; trailing garbage means
    /// the two ends disagree about the message layout.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after binary message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain types

fn put_value(w: &mut Writer, value: &Value) {
    match value {
        Value::Str(s) => {
            w.tag(0);
            w.str(s);
        }
        Value::Int(i) => {
            w.tag(1);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.tag(2);
            w.f64(*f);
        }
        Value::Bool(b) => {
            w.tag(3);
            w.bool(*b);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    Ok(match r.tag("Value")? {
        0 => Value::Str(r.str()?),
        1 => Value::Int(r.i64()?),
        2 => Value::Float(r.f64()?),
        3 => Value::Bool(r.bool()?),
        t => return Err(bad_tag("Value", t)),
    })
}

/// Operators are encoded as their index in [`Op::ALL`], which is a stable
/// order.
fn put_op(w: &mut Writer, op: Op) {
    let tag = Op::ALL
        .iter()
        .position(|o| *o == op)
        .expect("Op::ALL lists every operator") as u8;
    w.tag(tag);
}

fn get_op(r: &mut Reader<'_>) -> Result<Op, WireError> {
    let tag = r.tag("Op")?;
    Op::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| bad_tag("Op", tag))
}

fn put_filter(w: &mut Writer, filter: &Filter) {
    w.u64(filter.predicates().len() as u64);
    for p in filter.predicates() {
        w.str(&p.attr);
        put_op(w, p.op);
        put_value(w, &p.operand);
    }
}

fn get_filter(r: &mut Reader<'_>) -> Result<Filter, WireError> {
    let n = r.u64()?;
    let mut predicates = Vec::new();
    for _ in 0..n {
        let attr = r.str()?;
        let op = get_op(r)?;
        let operand = get_value(r)?;
        predicates.push(Predicate::new(attr, op, operand));
    }
    Ok(predicates.into_iter().collect())
}

fn put_event(w: &mut Writer, event: &Event) {
    w.u64(event.len() as u64);
    for (name, value) in event.iter() {
        w.str(name);
        put_value(w, value);
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<Event, WireError> {
    let n = r.u64()?;
    let mut attrs = Vec::new();
    for _ in 0..n {
        let name = r.str()?;
        let value = get_value(r)?;
        attrs.push((name, value));
    }
    Ok(attrs.into_iter().collect())
}

fn put_published(w: &mut Writer, published: &PublishedEvent) {
    w.u64(published.id.0);
    w.u64(published.published_at);
    put_event(w, &published.event);
}

fn get_published(r: &mut Reader<'_>) -> Result<PublishedEvent, WireError> {
    Ok(PublishedEvent {
        id: EventId(r.u64()?),
        published_at: r.u64()?,
        event: get_event(r)?,
    })
}

// -- click batches ----------------------------------------------------------
//
// Click uploads are the fattest frames on the wire and their content is
// massively redundant: consecutive clicks share URI prefixes (same site),
// referrers repeat earlier URLs, ticks and days are near-monotonic, and
// the per-click user cookie almost always equals the batch's. The v2
// layout therefore delta-codes each click against its predecessor:
//
// * a flags byte (`CLICK_*` bits below);
// * the user cookie only when it differs from the batch user;
// * day and tick as zigzag varint deltas from the previous click
//   (wrapping, so arbitrary values still round-trip bit-exactly);
// * the URL as `shared-prefix-length + suffix` against the previous
//   click's URL;
// * the referrer (when present) as `shared-prefix-length + suffix`
//   against either the previous click's URL or the previous referrer —
//   whichever shares more — selected by a flag bit (a two-entry
//   dictionary covering both "referrer is the page I came from" and
//   "same referrer as last time").
//
// The pre-compression layout survives as `put_batch_plain`, reachable
// through [`BinaryCodec::encode_client_uncompressed`], so the size win
// stays measurable in `benches/broker.rs`.

/// Upper bound on the cumulative decoded URL + referrer bytes of one
/// click batch. Prefix reuse means a small frame can expand to far more
/// string bytes than it carries on the wire; without a cap a malicious
/// 16 MiB frame could demand terabytes of allocations. Real recorder
/// batches are kilobytes; 32 MiB is orders of magnitude of headroom and
/// stays below the WAL's per-record limit.
const MAX_DECODED_CLICK_BYTES: usize = 32 * 1024 * 1024;

/// Flag bit: the click carries a referrer.
const CLICK_HAS_REFERRER: u8 = 1 << 0;
/// Flag bit: the click's user cookie differs from the batch user.
const CLICK_USER_DIFFERS: u8 = 1 << 1;
/// Flag bit: the referrer prefix references the previous referrer
/// instead of the previous click's URL.
const CLICK_REF_VS_PREV_REFERRER: u8 = 1 << 2;

/// Longest shared byte prefix of `a` and `b` that ends on a char
/// boundary. (Equal prefix bytes form complete UTF-8 sequences in both
/// strings, so a boundary in one is a boundary in the other.)
fn common_prefix(a: &str, b: &str) -> usize {
    let mut n = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    while !a.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// Decode a `prefix length + suffix` string against its reference.
fn get_prefixed_str(r: &mut Reader<'_>, reference: &str) -> Result<String, WireError> {
    let prefix = r.u64()? as usize;
    if prefix > reference.len() || !reference.is_char_boundary(prefix) {
        return Err(WireError::Protocol(
            "string prefix length exceeds its reference".into(),
        ));
    }
    let suffix = r.str()?;
    let mut out = String::with_capacity(prefix + suffix.len());
    out.push_str(&reference[..prefix]);
    out.push_str(&suffix);
    Ok(out)
}

fn put_batch(w: &mut Writer, batch: &ClickBatch) {
    w.u64(u64::from(batch.user.0));
    w.u64(batch.clicks.len() as u64);
    let (mut prev_url, mut prev_ref) = ("", "");
    let (mut prev_day, mut prev_tick) = (0u32, 0u64);
    for click in &batch.clicks {
        let mut flags = 0u8;
        let user_differs = click.user != batch.user;
        if user_differs {
            flags |= CLICK_USER_DIFFERS;
        }
        let mut referrer_vs_prev_ref = false;
        if let Some(referrer) = &click.referrer {
            flags |= CLICK_HAS_REFERRER;
            referrer_vs_prev_ref =
                common_prefix(referrer, prev_ref) > common_prefix(referrer, prev_url);
            if referrer_vs_prev_ref {
                flags |= CLICK_REF_VS_PREV_REFERRER;
            }
        }
        w.tag(flags);
        if user_differs {
            w.u64(u64::from(click.user.0));
        }
        w.i64(click.day.wrapping_sub(prev_day) as i32 as i64);
        w.i64(click.tick.wrapping_sub(prev_tick) as i64);
        let url_prefix = common_prefix(&click.url, prev_url);
        w.u64(url_prefix as u64);
        w.str(&click.url[url_prefix..]);
        if let Some(referrer) = &click.referrer {
            let reference = if referrer_vs_prev_ref {
                prev_ref
            } else {
                prev_url
            };
            let ref_prefix = common_prefix(referrer, reference);
            w.u64(ref_prefix as u64);
            w.str(&referrer[ref_prefix..]);
            prev_ref = referrer;
        }
        prev_url = &click.url;
        prev_day = click.day;
        prev_tick = click.tick;
    }
}

fn get_batch(r: &mut Reader<'_>) -> Result<ClickBatch, WireError> {
    let user = UserId(r.u32()?);
    let n = r.u64()?;
    let mut clicks: Vec<Click> = Vec::new();
    let (mut prev_url, mut prev_ref) = (String::new(), String::new());
    let (mut prev_day, mut prev_tick) = (0u32, 0u64);
    let mut decoded_bytes = 0usize;
    for _ in 0..n {
        let flags = r.tag("Click flags")?;
        if flags & !(CLICK_HAS_REFERRER | CLICK_USER_DIFFERS | CLICK_REF_VS_PREV_REFERRER) != 0 {
            return Err(bad_tag("Click flags", flags));
        }
        let click_user = if flags & CLICK_USER_DIFFERS != 0 {
            UserId(r.u32()?)
        } else {
            user
        };
        let day_delta = r.i64()?;
        let day_delta = i32::try_from(day_delta)
            .map_err(|_| WireError::Protocol("day delta overflows u32".into()))?;
        let day = prev_day.wrapping_add(day_delta as u32);
        let tick = prev_tick.wrapping_add(r.i64()? as u64);
        let url = get_prefixed_str(r, &prev_url)?;
        let referrer = if flags & CLICK_HAS_REFERRER != 0 {
            let reference = if flags & CLICK_REF_VS_PREV_REFERRER != 0 {
                &prev_ref
            } else {
                &prev_url
            };
            let referrer = get_prefixed_str(r, reference)?;
            prev_ref.clone_from(&referrer);
            Some(referrer)
        } else {
            None
        };
        decoded_bytes += url.len() + referrer.as_ref().map_or(0, String::len);
        if decoded_bytes > MAX_DECODED_CLICK_BYTES {
            return Err(WireError::Protocol(format!(
                "click batch expands past {MAX_DECODED_CLICK_BYTES} decoded bytes"
            )));
        }
        prev_url.clone_from(&url);
        prev_day = day;
        prev_tick = tick;
        clicks.push(Click {
            user: click_user,
            day,
            tick,
            url,
            referrer,
        });
    }
    Ok(ClickBatch { user, clicks })
}

/// The pre-compression v2 click-batch layout: absolute fields, full
/// strings. Kept so the compression win is measurable.
fn put_batch_plain(w: &mut Writer, batch: &ClickBatch) {
    w.u64(u64::from(batch.user.0));
    w.u64(batch.clicks.len() as u64);
    for click in &batch.clicks {
        w.u64(u64::from(click.user.0));
        w.u64(u64::from(click.day));
        w.u64(click.tick);
        w.str(&click.url);
        match &click.referrer {
            Some(referrer) => {
                w.bool(true);
                w.str(referrer);
            }
            None => w.bool(false),
        }
    }
}

fn get_batch_plain(r: &mut Reader<'_>) -> Result<ClickBatch, WireError> {
    let user = UserId(r.u32()?);
    let n = r.u64()?;
    let mut clicks = Vec::new();
    for _ in 0..n {
        clicks.push(Click {
            user: UserId(r.u32()?),
            day: r.u32()?,
            tick: r.u64()?,
            url: r.str()?,
            referrer: if r.bool()? { Some(r.str()?) } else { None },
        });
    }
    Ok(ClickBatch { user, clicks })
}

fn put_receipt(w: &mut Writer, receipt: &UploadReceipt) {
    w.u64(u64::from(receipt.user.0));
    w.u64(receipt.accepted);
    w.u64(receipt.rejected);
    w.u64(receipt.wire_bytes);
    w.u64(receipt.total_stored);
}

fn get_receipt(r: &mut Reader<'_>) -> Result<UploadReceipt, WireError> {
    Ok(UploadReceipt {
        user: UserId(r.u32()?),
        accepted: r.u64()?,
        rejected: r.u64()?,
        wire_bytes: r.u64()?,
        total_stored: r.u64()?,
    })
}

/// `AutoSubMode` travels as a single tag byte.
fn put_mode(w: &mut Writer, mode: AutoSubMode) {
    w.tag(match mode {
        AutoSubMode::Topic => 0,
        AutoSubMode::Content => 1,
    });
}

fn get_mode(r: &mut Reader<'_>) -> Result<AutoSubMode, WireError> {
    Ok(match r.tag("AutoSubMode")? {
        0 => AutoSubMode::Topic,
        1 => AutoSubMode::Content,
        t => return Err(bad_tag("AutoSubMode", t)),
    })
}

fn put_policy(w: &mut Writer, policy: &AutoSubPolicy) {
    put_mode(w, policy.recommender);
    w.u64(u64::from(policy.max_filters));
    w.f64(policy.half_life_secs);
    w.f64(policy.min_score);
}

fn get_policy(r: &mut Reader<'_>) -> Result<AutoSubPolicy, WireError> {
    Ok(AutoSubPolicy {
        recommender: get_mode(r)?,
        max_filters: r.u32()?,
        half_life_secs: r.f64()?,
        min_score: r.f64()?,
    })
}

fn put_autosub_entries(w: &mut Writer, entries: &[AutoSubEntry]) {
    w.u64(entries.len() as u64);
    for entry in entries {
        put_filter(w, &entry.filter);
        w.str(&entry.reason);
        w.f64(entry.score);
    }
}

fn get_autosub_entries(r: &mut Reader<'_>) -> Result<Vec<AutoSubEntry>, WireError> {
    let len = r.u64()?;
    let mut entries = Vec::with_capacity(len.min(1024) as usize);
    for _ in 0..len {
        entries.push(AutoSubEntry {
            filter: get_filter(r)?,
            reason: r.str()?,
            score: r.f64()?,
        });
    }
    Ok(entries)
}

fn put_autosub_receipt(w: &mut Writer, receipt: &AutoSubReceipt) {
    w.u64(u64::from(receipt.user.0));
    put_autosub_entries(w, &receipt.entries);
}

fn get_autosub_receipt(r: &mut Reader<'_>) -> Result<AutoSubReceipt, WireError> {
    Ok(AutoSubReceipt {
        user: UserId(r.u32()?),
        entries: get_autosub_entries(r)?,
    })
}

fn put_feed_change(w: &mut Writer, change: &FeedChange) {
    w.u64(u64::from(change.user.0));
    put_autosub_entries(w, &change.installed);
    put_autosub_entries(w, &change.retired);
}

fn get_feed_change(r: &mut Reader<'_>) -> Result<FeedChange, WireError> {
    Ok(FeedChange {
        user: UserId(r.u32()?),
        installed: get_autosub_entries(r)?,
        retired: get_autosub_entries(r)?,
    })
}

fn put_broker_stats(w: &mut Writer, s: &BrokerStatsSnapshot) {
    w.u64(s.events_published);
    w.u64(s.deliveries);
    w.u64(s.drops);
    w.u64(s.subscribes);
    w.u64(s.unsubscribes);
}

fn get_broker_stats(r: &mut Reader<'_>) -> Result<BrokerStatsSnapshot, WireError> {
    Ok(BrokerStatsSnapshot {
        events_published: r.u64()?,
        deliveries: r.u64()?,
        drops: r.u64()?,
        subscribes: r.u64()?,
        unsubscribes: r.u64()?,
    })
}

fn put_codec_stats(w: &mut Writer, s: &CodecStatsSnapshot) {
    w.u64(s.frames_in);
    w.u64(s.frames_out);
    w.u64(s.bytes_in);
    w.u64(s.bytes_out);
}

fn get_codec_stats(r: &mut Reader<'_>) -> Result<CodecStatsSnapshot, WireError> {
    Ok(CodecStatsSnapshot {
        frames_in: r.u64()?,
        frames_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
    })
}

// NOTE: the stats payloads below are diagnostics, not a stable contract:
// fields are read positionally, so adding a counter changes the v2 layout
// without a version-byte bump. Two daemons from different builds exchange
// garbled/failing `Stats` replies only — the protocol paths (publish,
// subscribe, deliver, peer routing) are unaffected. A cross-build-stable
// stats encoding (tagged fields) is future work if mixed-build
// federations ever need remote stats.
fn put_wire_stats(w: &mut Writer, s: &WireStatsSnapshot) {
    w.u64(s.connections_opened);
    w.u64(s.connections_closed);
    w.u64(s.frames_in);
    w.u64(s.frames_out);
    w.u64(s.bytes_in);
    w.u64(s.bytes_out);
    w.u64(s.requests);
    w.u64(s.deliveries);
    w.u64(s.delivery_drops);
    w.u64(s.errors);
    w.u64(s.loop_wakeups);
    w.u64(s.loop_read_events);
    w.u64(s.loop_write_events);
    w.u64(s.writes_coalesced);
    w.u64(s.wal_bytes);
    w.u64(s.wal_segments);
    w.u64(s.wal_snapshots);
    w.u64(s.recovered_clicks);
    w.u64(s.wal_truncated_bytes);
    w.u64(s.autosub_users);
    w.u64(s.autosub_active);
    w.u64(s.autosub_derived);
    w.u64(s.autosub_retired);
    w.u64(s.autosub_last_refresh_us);
    w.u64(s.matcher_swaps);
    put_codec_stats(w, &s.json);
    put_codec_stats(w, &s.binary);
    w.u64(s.loops.len() as u64);
    for shard in &s.loops {
        w.u64(shard.loop_id);
        w.u64(shard.wakeups);
        w.u64(shard.read_events);
        w.u64(shard.write_events);
        w.u64(shard.writes_coalesced);
        w.u64(shard.connections);
    }
}

fn get_wire_stats(r: &mut Reader<'_>) -> Result<WireStatsSnapshot, WireError> {
    Ok(WireStatsSnapshot {
        connections_opened: r.u64()?,
        connections_closed: r.u64()?,
        frames_in: r.u64()?,
        frames_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        requests: r.u64()?,
        deliveries: r.u64()?,
        delivery_drops: r.u64()?,
        errors: r.u64()?,
        loop_wakeups: r.u64()?,
        loop_read_events: r.u64()?,
        loop_write_events: r.u64()?,
        writes_coalesced: r.u64()?,
        wal_bytes: r.u64()?,
        wal_segments: r.u64()?,
        wal_snapshots: r.u64()?,
        recovered_clicks: r.u64()?,
        wal_truncated_bytes: r.u64()?,
        autosub_users: r.u64()?,
        autosub_active: r.u64()?,
        autosub_derived: r.u64()?,
        autosub_retired: r.u64()?,
        autosub_last_refresh_us: r.u64()?,
        matcher_swaps: r.u64()?,
        json: get_codec_stats(r)?,
        binary: get_codec_stats(r)?,
        loops: {
            let len = r.u64()? as usize;
            // Bound the pre-allocation against a hostile length prefix.
            let mut loops = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                loops.push(crate::stats::LoopStatsSnapshot {
                    loop_id: r.u64()?,
                    wakeups: r.u64()?,
                    read_events: r.u64()?,
                    write_events: r.u64()?,
                    writes_coalesced: r.u64()?,
                    connections: r.u64()?,
                });
            }
            loops
        },
    })
}

fn put_federation_stats(w: &mut Writer, s: &FederationStatsSnapshot) {
    w.u64(u64::from(s.broker_id));
    w.u64(s.peers);
    w.u64(s.routing_entries);
    w.u64(s.advertisements);
    w.u64(s.subs_forwarded);
    w.u64(s.subs_aggregated);
    w.u64(s.events_forwarded);
    w.u64(s.events_received);
    w.u64(s.events_dropped);
    w.u64(s.mesh_alternates);
    w.u64(s.mesh_reroutes);
    w.u64(s.mesh_duplicates_suppressed);
    put_codec_stats(w, &s.json);
    put_codec_stats(w, &s.binary);
}

fn get_federation_stats(r: &mut Reader<'_>) -> Result<FederationStatsSnapshot, WireError> {
    Ok(FederationStatsSnapshot {
        broker_id: r.u32()?,
        peers: r.u64()?,
        routing_entries: r.u64()?,
        advertisements: r.u64()?,
        subs_forwarded: r.u64()?,
        subs_aggregated: r.u64()?,
        events_forwarded: r.u64()?,
        events_received: r.u64()?,
        events_dropped: r.u64()?,
        mesh_alternates: r.u64()?,
        mesh_reroutes: r.u64()?,
        mesh_duplicates_suppressed: r.u64()?,
        json: get_codec_stats(r)?,
        binary: get_codec_stats(r)?,
    })
}

/// Request-enum tag of `UploadClicks`, shared with the uncompressed
/// encode path.
const UPLOAD_CLICKS_TAG: u8 = 4;

fn put_request(w: &mut Writer, request: &Request) {
    match request {
        Request::Hello { version, client } => {
            w.tag(0);
            w.u64(u64::from(*version));
            w.str(client);
        }
        Request::Subscribe { filter } => {
            w.tag(1);
            put_filter(w, filter);
        }
        Request::Unsubscribe { subscription } => {
            w.tag(2);
            w.u64(subscription.0);
        }
        Request::Publish { event } => {
            w.tag(3);
            put_event(w, event);
        }
        Request::UploadClicks { batch } => {
            w.tag(UPLOAD_CLICKS_TAG);
            put_batch(w, batch);
        }
        Request::AutoSubscribe { user, policy } => {
            w.tag(9);
            w.u64(u64::from(user.0));
            match policy {
                Some(policy) => {
                    w.bool(true);
                    put_policy(w, policy);
                }
                None => w.bool(false),
            }
        }
        Request::AutoUnsubscribe { user } => {
            w.tag(10);
            w.u64(u64::from(user.0));
        }
        Request::Stats => w.tag(5),
        Request::Ping => w.tag(6),
        Request::Bye => w.tag(7),
        Request::PeerHello {
            version,
            broker,
            broker_id,
        } => {
            w.tag(8);
            w.u64(u64::from(*version));
            w.str(broker);
            w.u64(u64::from(*broker_id));
        }
    }
}

fn get_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    Ok(match r.tag("Request")? {
        0 => Request::Hello {
            version: u8::try_from(r.u64()?)
                .map_err(|_| WireError::Protocol("Hello version overflows u8".into()))?,
            client: r.str()?,
        },
        1 => Request::Subscribe {
            filter: get_filter(r)?,
        },
        2 => Request::Unsubscribe {
            subscription: SubscriptionId(r.u64()?),
        },
        3 => Request::Publish {
            event: get_event(r)?,
        },
        4 => Request::UploadClicks {
            batch: get_batch(r)?,
        },
        5 => Request::Stats,
        6 => Request::Ping,
        7 => Request::Bye,
        8 => Request::PeerHello {
            version: u8::try_from(r.u64()?)
                .map_err(|_| WireError::Protocol("PeerHello version overflows u8".into()))?,
            broker: r.str()?,
            broker_id: r.u32()?,
        },
        9 => Request::AutoSubscribe {
            user: UserId(r.u32()?),
            policy: if r.bool()? {
                Some(get_policy(r)?)
            } else {
                None
            },
        },
        10 => Request::AutoUnsubscribe {
            user: UserId(r.u32()?),
        },
        t => return Err(bad_tag("Request", t)),
    })
}

fn put_response(w: &mut Writer, response: &Response) {
    match response {
        Response::Hello {
            version,
            server,
            subscriber,
        } => {
            w.tag(0);
            w.u64(u64::from(*version));
            w.str(server);
            w.u64(*subscriber);
        }
        Response::Subscribed { subscription } => {
            w.tag(1);
            w.u64(subscription.0);
        }
        Response::Unsubscribed { filter } => {
            w.tag(2);
            put_filter(w, filter);
        }
        Response::Published {
            id,
            delivered,
            dropped,
        } => {
            w.tag(3);
            w.u64(id.0);
            w.u64(*delivered);
            w.u64(*dropped);
        }
        Response::ClicksAccepted { receipt } => {
            w.tag(4);
            put_receipt(w, receipt);
        }
        Response::Stats {
            broker,
            wire,
            federation,
        } => {
            w.tag(5);
            put_broker_stats(w, broker);
            put_wire_stats(w, wire);
            put_federation_stats(w, federation);
        }
        Response::Pong => w.tag(6),
        Response::Bye => w.tag(7),
        Response::PeerWelcome {
            version,
            broker,
            broker_id,
        } => {
            w.tag(8);
            w.u64(u64::from(*version));
            w.str(broker);
            w.u64(u64::from(*broker_id));
        }
        Response::Error { message } => {
            w.tag(9);
            w.str(message);
        }
        Response::AutoSubscribed { receipt } => {
            w.tag(10);
            put_autosub_receipt(w, receipt);
        }
        Response::AutoUnsubscribed { receipt } => {
            w.tag(11);
            put_autosub_receipt(w, receipt);
        }
    }
}

fn get_response(r: &mut Reader<'_>) -> Result<Response, WireError> {
    Ok(match r.tag("Response")? {
        0 => Response::Hello {
            version: u8::try_from(r.u64()?)
                .map_err(|_| WireError::Protocol("Hello version overflows u8".into()))?,
            server: r.str()?,
            subscriber: r.u64()?,
        },
        1 => Response::Subscribed {
            subscription: SubscriptionId(r.u64()?),
        },
        2 => Response::Unsubscribed {
            filter: get_filter(r)?,
        },
        3 => Response::Published {
            id: EventId(r.u64()?),
            delivered: r.u64()?,
            dropped: r.u64()?,
        },
        4 => Response::ClicksAccepted {
            receipt: get_receipt(r)?,
        },
        5 => Response::Stats {
            broker: get_broker_stats(r)?,
            wire: get_wire_stats(r)?,
            federation: get_federation_stats(r)?,
        },
        6 => Response::Pong,
        7 => Response::Bye,
        8 => Response::PeerWelcome {
            version: u8::try_from(r.u64()?)
                .map_err(|_| WireError::Protocol("PeerWelcome version overflows u8".into()))?,
            broker: r.str()?,
            broker_id: r.u32()?,
        },
        9 => Response::Error { message: r.str()? },
        10 => Response::AutoSubscribed {
            receipt: get_autosub_receipt(r)?,
        },
        11 => Response::AutoUnsubscribed {
            receipt: get_autosub_receipt(r)?,
        },
        t => return Err(bad_tag("Response", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reef_pubsub::Op;

    fn both() -> [&'static dyn WireCodec; 2] {
        [CodecKind::Json.codec(), CodecKind::Binary.codec()]
    }

    #[test]
    fn varints_round_trip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.u64(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.u64().unwrap(), v);
            r.finish().unwrap();
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            let mut w = Writer::new();
            w.i64(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.i64().unwrap(), v);
        }
    }

    #[test]
    fn client_frames_round_trip_in_binary_with_corr() {
        let frame = ClientFrame {
            corr: u64::MAX - 3,
            request: Request::Publish {
                event: Event::builder()
                    .attr("price", 12.5)
                    .attr("sym", "ACME")
                    .attr("neg", -7)
                    .attr("up", true)
                    .build(),
            },
        };
        let encoded = BinaryCodec.encode_client(&frame).unwrap();
        assert_eq!(encoded.version, PROTOCOL_V2_BINARY);
        let back = BinaryCodec.decode_client(&encoded).unwrap();
        assert_eq!(back.corr, frame.corr);
        assert_eq!(back.request, frame.request);
    }

    #[test]
    fn json_server_frames_match_the_owned_servermessage_bytes() {
        // The borrowed mirror must stay byte-identical to the owned
        // `ServerMessage` encoding — that equality IS the v1 guarantee.
        let event = PublishedEvent {
            id: EventId(5),
            published_at: 9,
            event: Event::topical("t", "b"),
        };
        let cases = [
            (
                JsonCodec
                    .encode_server(&ServerFrame::Reply {
                        corr: 3,
                        response: Response::Pong,
                    })
                    .unwrap(),
                serde_json::to_vec(&ServerMessage::Reply(Response::Pong)).unwrap(),
            ),
            (
                JsonCodec
                    .encode_server(&ServerFrame::Deliver(Deliver {
                        event: event.clone(),
                    }))
                    .unwrap(),
                serde_json::to_vec(&ServerMessage::Deliver(Deliver { event })).unwrap(),
            ),
        ];
        for (frame, owned_bytes) in cases {
            assert_eq!(frame.payload, owned_bytes);
        }
    }

    #[test]
    fn json_client_frames_stay_v1_bare_requests() {
        let frame = ClientFrame {
            corr: 42,
            request: Request::Ping,
        };
        let encoded = JsonCodec.encode_client(&frame).unwrap();
        assert_eq!(encoded.version, PROTOCOL_V1_JSON);
        // Byte-compatible: the payload is the bare JSON `Request`, exactly
        // what a pre-codec client sends.
        let legacy: Request = serde_json::from_slice(&encoded.payload).unwrap();
        assert_eq!(legacy, Request::Ping);
        // The correlation id does not survive v1 (pairing is by order).
        assert_eq!(JsonCodec.decode_client(&encoded).unwrap().corr, 0);
    }

    #[test]
    fn server_frames_round_trip_through_both_codecs() {
        let reply = ServerFrame::Reply {
            corr: 9,
            response: Response::Stats {
                broker: BrokerStatsSnapshot {
                    events_published: 5,
                    deliveries: 4,
                    drops: 3,
                    subscribes: 2,
                    unsubscribes: 1,
                },
                wire: WireStatsSnapshot::default(),
                federation: FederationStatsSnapshot::default(),
            },
        };
        let deliver = ServerFrame::Deliver(Deliver {
            event: PublishedEvent {
                id: EventId(1 << 40),
                published_at: 77,
                event: Event::topical("news", "hello"),
            },
        });
        for codec in both() {
            for frame in [&reply, &deliver] {
                let encoded = codec.encode_server(frame).unwrap();
                let back = codec.decode_server(&encoded).unwrap();
                match (&back, frame) {
                    (
                        ServerFrame::Reply { corr, response },
                        ServerFrame::Reply {
                            corr: want_corr,
                            response: want,
                        },
                    ) => {
                        assert_eq!(response, want);
                        if codec.kind() == CodecKind::Binary {
                            assert_eq!(corr, want_corr);
                        }
                    }
                    (ServerFrame::Deliver(got), ServerFrame::Deliver(want)) => {
                        assert_eq!(got, want)
                    }
                    other => panic!("frame kind changed in transit: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn peer_msgs_round_trip_through_both_codecs() {
        let msgs = [
            PeerMsg::SubFwd {
                sub: GlobalSubId((u32::MAX as u64) << 32 | 7),
                filter: Filter::new()
                    .and("price", Op::Gt, 10.0)
                    .and("sym", Op::Prefix, "AC"),
            },
            PeerMsg::UnsubFwd {
                sub: GlobalSubId(3),
            },
            PeerMsg::EventFwd {
                event: PublishedEvent {
                    id: EventId(4),
                    published_at: 77,
                    event: Event::topical("news", "hello"),
                },
                hops: 2,
            },
        ];
        for codec in both() {
            for msg in &msgs {
                let encoded = codec.encode_peer(msg).unwrap();
                assert_eq!(encoded.version, codec.version());
                assert_eq!(&codec.decode_peer(&encoded).unwrap(), msg);
            }
        }
    }

    #[test]
    fn binary_publish_frames_are_smaller_than_json() {
        let frame = ClientFrame {
            corr: 1,
            request: Request::Publish {
                event: Event::builder()
                    .attr("symbol", "ACME")
                    .attr("price", 12.5)
                    .attr("volume", 90_000)
                    .attr("halted", false)
                    .build(),
            },
        };
        let json = JsonCodec.encode_client(&frame).unwrap();
        let binary = BinaryCodec.encode_client(&frame).unwrap();
        assert!(
            binary.wire_len() < json.wire_len(),
            "binary {} must beat json {}",
            binary.wire_len(),
            json.wire_len()
        );
    }

    #[test]
    fn encode_deliver_matches_owned_deliver_bytes() {
        // The borrow-based fan-out path must stay byte-identical to the
        // owned `ServerFrame::Deliver` encoding under both codecs.
        let event = PublishedEvent {
            id: EventId(1 << 40),
            published_at: 9,
            event: Event::builder()
                .attr("price", 12.5)
                .attr("sym", "ACME")
                .build(),
        };
        for codec in both() {
            let borrowed = codec.encode_deliver(&event).unwrap();
            let owned = codec
                .encode_server(&ServerFrame::Deliver(Deliver {
                    event: event.clone(),
                }))
                .unwrap();
            assert_eq!(borrowed, owned, "{} deliver bytes diverge", codec.kind());
        }
    }

    fn upload_frame(batch: ClickBatch) -> ClientFrame {
        ClientFrame {
            corr: 9,
            request: Request::UploadClicks { batch },
        }
    }

    #[test]
    fn compressed_click_batches_round_trip_edge_cases() {
        use reef_attention::{Click, ClickBatch};
        let batches = [
            // Empty batch.
            ClickBatch {
                user: UserId(0),
                clicks: vec![],
            },
            // Shared prefixes, repeated referrers, forged cookie,
            // multi-byte UTF-8 diverging inside a character, wrapping
            // tick deltas.
            ClickBatch {
                user: UserId(7),
                clicks: vec![
                    Click {
                        user: UserId(7),
                        day: 3,
                        tick: u64::MAX - 1,
                        url: "http://news.example/a/α".into(),
                        referrer: None,
                    },
                    Click {
                        user: UserId(7),
                        day: 3,
                        tick: 2, // wraps past u64::MAX
                        url: "http://news.example/a/β".into(),
                        referrer: Some("http://news.example/a/α".into()),
                    },
                    Click {
                        user: UserId(9), // forged cookie still encodes
                        day: 0,          // day goes backwards
                        tick: 1,
                        url: "completely-different".into(),
                        referrer: Some("http://news.example/a/α".into()),
                    },
                    Click {
                        user: UserId(7),
                        day: u32::MAX,
                        tick: 0,
                        url: String::new(),
                        referrer: Some(String::new()),
                    },
                ],
            },
        ];
        for batch in batches {
            let frame = upload_frame(batch);
            let encoded = BinaryCodec.encode_client(&frame).unwrap();
            let back = BinaryCodec.decode_client(&encoded).unwrap();
            assert_eq!(back.request, frame.request);
            assert_eq!(back.corr, frame.corr);
        }
    }

    #[test]
    fn compressed_click_batches_beat_plain_v2_and_json() {
        use reef_attention::{Click, ClickBatch};
        // A realistic browsing batch: one site, sequential ticks, the
        // referrer chain following the clicks.
        let clicks: Vec<Click> = (0..20)
            .map(|i| Click {
                user: UserId(42),
                day: 3,
                tick: 1_000 + i,
                url: format!("http://news.example/story-{i}.html"),
                referrer: (i > 0).then(|| format!("http://news.example/story-{}.html", i - 1)),
            })
            .collect();
        let frame = upload_frame(ClickBatch {
            user: UserId(42),
            clicks,
        });
        let compressed = BinaryCodec.encode_client(&frame).unwrap();
        let plain = BinaryCodec.encode_client_uncompressed(&frame).unwrap();
        let json = JsonCodec.encode_client(&frame).unwrap();
        assert!(
            compressed.wire_len() < plain.wire_len(),
            "compressed {} must beat plain v2 {}",
            compressed.wire_len(),
            plain.wire_len()
        );
        assert!(
            plain.wire_len() < json.wire_len(),
            "plain v2 {} must beat json {}",
            plain.wire_len(),
            json.wire_len()
        );
        // Both v2 layouts decode to the identical batch.
        let back_plain = BinaryCodec.decode_client_uncompressed(&plain).unwrap();
        assert_eq!(back_plain.request, frame.request);
        assert_eq!(
            BinaryCodec.decode_client(&compressed).unwrap().request,
            frame.request
        );
    }

    #[test]
    fn decoder_caps_prefix_amplification() {
        use reef_attention::{Click, ClickBatch};
        // 150 clicks sharing one 300 KiB URL: a few hundred KiB on the
        // wire, ~45 MiB decoded — past the amplification cap. The
        // decoder must fail cleanly instead of allocating it all
        // (a hostile frame could push the ratio arbitrarily high).
        let url = format!("http://big.example/{}", "x".repeat(300 * 1024));
        let frame = upload_frame(ClickBatch {
            user: UserId(1),
            clicks: (0..150)
                .map(|i| Click {
                    user: UserId(1),
                    day: 0,
                    tick: i,
                    url: url.clone(),
                    referrer: None,
                })
                .collect(),
        });
        let encoded = BinaryCodec.encode_client(&frame).unwrap();
        assert!(encoded.payload.len() < 2 * 1024 * 1024, "wire stays small");
        assert!(matches!(
            BinaryCodec.decode_client(&encoded),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn corrupt_prefix_lengths_are_protocol_errors() {
        use reef_attention::{Click, ClickBatch};
        let frame = upload_frame(ClickBatch {
            user: UserId(1),
            clicks: vec![Click {
                user: UserId(1),
                day: 0,
                tick: 0,
                url: "http://a.example/".into(),
                referrer: None,
            }],
        });
        let encoded = BinaryCodec.encode_client(&frame).unwrap();
        // Fuzz every byte: decoding must fail cleanly or produce some
        // batch — never panic (prefix lengths are validated against
        // their reference strings).
        for i in 0..encoded.payload.len() {
            let mut corrupt = encoded.clone();
            corrupt.payload[i] = corrupt.payload[i].wrapping_add(0x41);
            let _ = BinaryCodec.decode_client(&corrupt);
        }
    }

    #[test]
    fn codec_rejects_foreign_version_frames() {
        let encoded = BinaryCodec
            .encode_peer(&PeerMsg::UnsubFwd {
                sub: GlobalSubId(1),
            })
            .unwrap();
        assert!(matches!(
            JsonCodec.decode_peer(&encoded),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncated_and_trailing_bytes_are_protocol_errors() {
        let encoded = BinaryCodec
            .encode_client(&ClientFrame {
                corr: 5,
                request: Request::Subscribe {
                    filter: Filter::topic("t"),
                },
            })
            .unwrap();
        let mut cut = encoded.clone();
        cut.payload.truncate(cut.payload.len() - 1);
        assert!(matches!(
            BinaryCodec.decode_client(&cut),
            Err(WireError::Protocol(_))
        ));
        let mut padded = encoded;
        padded.payload.push(0);
        assert!(matches!(
            BinaryCodec.decode_client(&padded),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn negotiation_helpers_map_versions_and_names() {
        assert_eq!(CodecKind::for_version(1), Some(CodecKind::Json));
        assert_eq!(CodecKind::for_version(2), Some(CodecKind::Binary));
        assert_eq!(CodecKind::for_version(9), None);
        assert_eq!(CodecKind::parse("json"), Some(CodecKind::Json));
        assert_eq!(CodecKind::parse("binary"), Some(CodecKind::Binary));
        assert_eq!(CodecKind::parse("xml"), None);
        assert_eq!(CodecKind::Binary.codec().version(), 2);
        assert_eq!(CodecKind::Json.name(), "json");
    }
}
