//! # reef-wire — the networked face of the Reef broker
//!
//! The paper's deployed Reef ran over the real Internet: a browser
//! extension uploaded attention data to a server, and notifications flowed
//! back (§3). This crate gives the reproduction that missing half — real
//! processes exchanging real bytes over TCP — where the rest of the
//! workspace simulates everything in-process:
//!
//! * [`frame`] — a versioned, length-prefixed framing layer ([`Frame`]);
//!   the frame version byte doubles as the **codec negotiation** channel;
//! * [`codec`] — the [`WireCodec`] trait with two implementations:
//!   [`codec::JsonCodec`] (protocol v1, byte-compatible with old
//!   clients) and [`codec::BinaryCodec`] (protocol v2, compact
//!   hand-rolled tag/varint encoding with correlation ids);
//! * [`protocol`] — the message vocabulary ([`Request`], [`Response`],
//!   [`Deliver`], correlation-carrying [`ClientFrame`]/[`ServerFrame`]),
//!   reusing the serde impls already on [`reef_pubsub::Event`],
//!   [`reef_pubsub::Filter`], [`reef_pubsub::PublishedEvent`] and
//!   [`reef_attention::ClickBatch`];
//! * [`server`] — [`BrokerServer`], a TCP daemon around a shared
//!   [`reef_pubsub::Broker`] with two cores behind one protocol
//!   ([`TransportKind`]): an **epoll event loop** (Linux, the default —
//!   every socket on one readiness thread, incremental frame decoding
//!   via [`FrameDecoder`], per-connection outbound buffers that coalesce
//!   delivery bursts) and the original **thread-per-connection** core;
//!   graceful shutdown, per-connection and aggregate [`WireStats`] with
//!   per-codec frame/byte and event-loop counters;
//! * [`poll`] — the minimal Linux `epoll`/`eventfd` bindings the event
//!   loop stands on (no `libc` in the offline build, so the handful of
//!   syscalls are declared directly);
//! * [`federation`] — broker-to-broker links: [`TcpTransport`] implements
//!   [`reef_pubsub::Transport`] so the sans-io
//!   [`reef_pubsub::BrokerNode`] routing core (subscription forwarding,
//!   covering pruning, reverse-path event routing) runs unchanged over OS
//!   sockets; daemons peer via `reefd --peer ADDR`, re-dial dead links
//!   with `--peer-retry`, and aggregate identical local filters into one
//!   refcounted advertisement;
//! * [`client`] — [`Client`], a pipelined client with the familiar
//!   blocking subscribe / unsubscribe / publish / upload-clicks surface,
//!   a batch-friendly [`Client::publish_nowait`], and an iterator over
//!   deliveries;
//! * [`autosub`] — the server-side **automatic subscription** engine
//!   (the paper's headline loop, §2.2): clients enroll users with
//!   [`Request::AutoSubscribe`], the daemon runs the `reef-core`
//!   recommenders over uploaded clicks on a background refresh task and
//!   installs/retires the derived filters as real broker subscriptions,
//!   pushing [`protocol::FeedChange`] notices as the set changes;
//! * the `reefd` binary — the standalone daemon (`cargo run --bin reefd`).
//!
//! # Quickstart
//!
//! ```
//! use reef_pubsub::{Event, Filter, Op};
//! use reef_wire::{BrokerServer, Client};
//! use std::time::Duration;
//!
//! // A daemon on an ephemeral port, and two real socket clients.
//! let server = BrokerServer::bind("127.0.0.1:0").unwrap();
//! let alice = Client::connect_as(server.local_addr(), "alice").unwrap();
//! let bob = Client::connect_as(server.local_addr(), "bob").unwrap();
//!
//! alice.subscribe(Filter::new().and("price", Op::Gt, 10.0)).unwrap();
//! bob.publish(Event::builder().attr("price", 12.5).build()).unwrap();
//!
//! let delivery = alice.recv_delivery(Duration::from_secs(5)).unwrap();
//! assert_eq!(delivery.event.get("price").unwrap().as_f64(), Some(12.5));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autosub;
pub mod client;
pub mod codec;
pub mod error;
#[cfg(target_os = "linux")]
mod event_loop;
pub mod federation;
pub mod frame;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod protocol;
pub mod server;
pub mod stats;

pub use autosub::AutosubOptions;
pub use client::{
    Client, ClientBuilder, Deliveries, PendingPublish, RemotePublishOutcome, ServerStats,
};
pub use codec::{CodecKind, WireCodec};
pub use error::WireError;
pub use federation::{Federation, FederationConfig, TcpTransport, LOCAL_NODE};
pub use frame::{
    Frame, FrameDecoder, MAX_FRAME_LEN, PROTOCOL_V1_JSON, PROTOCOL_V2_BINARY, PROTOCOL_VERSION,
};
pub use protocol::{
    AutoSubEntry, AutoSubPolicy, AutoSubReceipt, ClientFrame, Deliver, FeedChange, Request,
    Response, ServerFrame, ServerMessage,
};
pub use server::{BrokerServer, BrokerServerBuilder, TransportKind};
pub use stats::{
    AutosubGauges, CodecStatsSnapshot, ConnectionStatsSnapshot, FederationStatsSnapshot,
    LoopStatsSnapshot, PeerStatsSnapshot, WireStats, WireStatsSnapshot,
};
