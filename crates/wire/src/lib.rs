//! # reef-wire — the networked face of the Reef broker
//!
//! The paper's deployed Reef ran over the real Internet: a browser
//! extension uploaded attention data to a server, and notifications flowed
//! back (§3). This crate gives the reproduction that missing half — real
//! processes exchanging real bytes over TCP — where the rest of the
//! workspace simulates everything in-process:
//!
//! * [`frame`] — a versioned, length-prefixed JSON framing layer
//!   ([`Frame`], [`PROTOCOL_VERSION`]);
//! * [`protocol`] — the message vocabulary ([`Request`], [`Response`],
//!   [`Deliver`]), reusing the serde impls already on
//!   [`reef_pubsub::Event`], [`reef_pubsub::Filter`],
//!   [`reef_pubsub::PublishedEvent`] and [`reef_attention::ClickBatch`];
//! * [`server`] — [`BrokerServer`], a threaded TCP daemon around a shared
//!   [`reef_pubsub::Broker`]: one reader thread per connection, a delivery
//!   pump draining each connection's subscriber queue to its socket,
//!   graceful shutdown, per-connection and aggregate [`WireStats`];
//! * [`federation`] — broker-to-broker links: [`TcpTransport`] implements
//!   [`reef_pubsub::Transport`] so the sans-io
//!   [`reef_pubsub::BrokerNode`] routing core (subscription forwarding,
//!   covering pruning, reverse-path event routing) runs unchanged over OS
//!   sockets; daemons peer via `reefd --peer ADDR`;
//! * [`client`] — [`Client`], a blocking client with
//!   subscribe / unsubscribe / publish / upload-clicks calls and an
//!   iterator over deliveries;
//! * the `reefd` binary — the standalone daemon (`cargo run --bin reefd`).
//!
//! # Quickstart
//!
//! ```
//! use reef_pubsub::{Event, Filter, Op};
//! use reef_wire::{BrokerServer, Client};
//! use std::time::Duration;
//!
//! // A daemon on an ephemeral port, and two real socket clients.
//! let server = BrokerServer::bind("127.0.0.1:0").unwrap();
//! let alice = Client::connect_as(server.local_addr(), "alice").unwrap();
//! let bob = Client::connect_as(server.local_addr(), "bob").unwrap();
//!
//! alice.subscribe(Filter::new().and("price", Op::Gt, 10.0)).unwrap();
//! bob.publish(Event::builder().attr("price", 12.5).build()).unwrap();
//!
//! let delivery = alice.recv_delivery(Duration::from_secs(5)).unwrap();
//! assert_eq!(delivery.event.get("price").unwrap().as_f64(), Some(12.5));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod error;
pub mod federation;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, Deliveries, RemotePublishOutcome, ServerStats};
pub use error::WireError;
pub use federation::{Federation, FederationConfig, TcpTransport, LOCAL_NODE};
pub use frame::{Frame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use protocol::{Deliver, Request, Response, ServerMessage};
pub use server::{BrokerServer, BrokerServerBuilder};
pub use stats::{
    ConnectionStatsSnapshot, FederationStatsSnapshot, PeerStatsSnapshot, WireStats,
    WireStatsSnapshot,
};
