//! Transport counters, kept per connection and aggregated per server.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free transport counters. The server keeps one aggregate instance
/// plus one per live connection; every record call updates both.
#[derive(Debug, Default)]
pub struct WireStats {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    deliveries: AtomicU64,
    delivery_drops: AtomicU64,
    errors: AtomicU64,
}

impl WireStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count a connection opening.
    pub fn record_open(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection closing.
    pub fn record_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one received frame of `bytes` total wire bytes.
    pub fn record_frame_in(&self, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Count one written frame of `bytes` total wire bytes.
    pub fn record_frame_out(&self, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Count one handled request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one pushed delivery.
    pub fn record_delivery(&self) {
        self.deliveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one delivery lost on the wire path (write failure or
    /// timeout on a backpressured socket, or a full peer-link queue).
    pub fn record_delivery_drop(&self) {
        self.delivery_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one error response or protocol failure.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> WireStatsSnapshot {
        WireStatsSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            delivery_drops: self.delivery_drops.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`WireStats`], also used inside
/// [`crate::protocol::Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WireStatsSnapshot {
    /// Connections accepted since the server started.
    pub connections_opened: u64,
    /// Connections that have finished.
    pub connections_closed: u64,
    /// Frames read off sockets.
    pub frames_in: u64,
    /// Frames written to sockets.
    pub frames_out: u64,
    /// Total bytes read (headers included).
    pub bytes_in: u64,
    /// Total bytes written (headers included).
    pub bytes_out: u64,
    /// Requests handled.
    pub requests: u64,
    /// Deliveries pushed.
    pub deliveries: u64,
    /// Deliveries lost on the wire path (socket write failures/timeouts
    /// and full peer-link queues).
    pub delivery_drops: u64,
    /// Errors returned or suffered.
    pub errors: u64,
}

impl std::fmt::Display for WireStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns={}/{} frames={}in/{}out bytes={}in/{}out requests={} deliveries={} drops={} errors={}",
            self.connections_opened,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.requests,
            self.deliveries,
            self.delivery_drops,
            self.errors,
        )
    }
}

/// Per-connection stats snapshot, labelled with who the connection is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionStatsSnapshot {
    /// Peer address as reported by the OS.
    pub peer: String,
    /// Client name from the `Hello` request, if one was sent.
    pub client: String,
    /// Broker subscriber id backing this connection.
    pub subscriber: u64,
    /// The connection's transport counters.
    pub wire: WireStatsSnapshot,
}

/// Point-in-time view of a broker's federation state: peer links and the
/// sans-io routing core's table sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FederationStatsSnapshot {
    /// This broker's federation-wide id (namespaces its subscription ids).
    pub broker_id: u32,
    /// Live peer links.
    pub peers: u64,
    /// Routing-table entries in the sans-io core (local wire
    /// subscriptions plus covering-pruned peer advertisements).
    pub routing_entries: u64,
    /// Advertisements currently held toward peers.
    pub advertisements: u64,
    /// Subscription advertisements sent to peers.
    pub subs_forwarded: u64,
    /// Events forwarded to peers.
    pub events_forwarded: u64,
    /// Events received from peers.
    pub events_received: u64,
    /// Events lost because a peer link's bounded queue was full.
    pub events_dropped: u64,
}

impl std::fmt::Display for FederationStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peers={} routing={} ads={} subs_fwd={} events={}out/{}in drops={}",
            self.peers,
            self.routing_entries,
            self.advertisements,
            self.subs_forwarded,
            self.events_forwarded,
            self.events_received,
            self.events_dropped,
        )
    }
}

/// Per-peer-link stats snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerStatsSnapshot {
    /// The remote broker's announced name.
    pub broker: String,
    /// Peer address as reported by the OS.
    pub addr: String,
    /// Local link id of this peer in the routing core.
    pub link: u32,
    /// The link's transport counters.
    pub wire: WireStatsSnapshot,
}
