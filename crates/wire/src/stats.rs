//! Transport counters, kept per connection and aggregated per server.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::frame::{PROTOCOL_V1_JSON, PROTOCOL_V2_BINARY};

/// Frame and byte counters for one codec (one protocol version).
#[derive(Debug, Default)]
pub struct CodecStats {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl CodecStats {
    fn record_in(&self, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_out(&self, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of the codec's counters.
    pub fn snapshot(&self) -> CodecStatsSnapshot {
        CodecStatsSnapshot {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`CodecStats`]: the traffic one codec carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CodecStatsSnapshot {
    /// Frames read under this codec.
    pub frames_in: u64,
    /// Frames written under this codec.
    pub frames_out: u64,
    /// Bytes read under this codec (headers included).
    pub bytes_in: u64,
    /// Bytes written under this codec (headers included).
    pub bytes_out: u64,
}

impl CodecStatsSnapshot {
    /// Average wire bytes per written frame, 0 when no frames were
    /// counted.
    pub fn bytes_per_frame_out(&self) -> u64 {
        self.bytes_out.checked_div(self.frames_out).unwrap_or(0)
    }
}

impl std::fmt::Display for CodecStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frames={}in/{}out bytes={}in/{}out",
            self.frames_in, self.frames_out, self.bytes_in, self.bytes_out,
        )
    }
}

/// Lock-free transport counters. The server keeps one aggregate instance
/// plus one per live connection; every record call updates both. Frame
/// and byte totals are additionally broken down per codec so the JSON
/// vs binary trade is measurable from `Response::Stats`.
#[derive(Debug, Default)]
pub struct WireStats {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    deliveries: AtomicU64,
    delivery_drops: AtomicU64,
    errors: AtomicU64,
    loop_wakeups: AtomicU64,
    loop_read_events: AtomicU64,
    loop_write_events: AtomicU64,
    writes_coalesced: AtomicU64,
    wal_bytes: AtomicU64,
    wal_segments: AtomicU64,
    wal_snapshots: AtomicU64,
    recovered_clicks: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    autosub_users: AtomicU64,
    autosub_active: AtomicU64,
    autosub_derived: AtomicU64,
    autosub_retired: AtomicU64,
    autosub_last_refresh_us: AtomicU64,
    matcher_swaps: AtomicU64,
    json: CodecStats,
    binary: CodecStats,
    /// Per-shard event-loop counters, registered by the epoll transport
    /// when its loops spawn. Empty on the threaded transport and on
    /// per-connection / per-link instances.
    loops: Mutex<Vec<Arc<LoopStats>>>,
}

impl WireStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count a connection opening.
    pub fn record_open(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection closing.
    pub fn record_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one received frame of `bytes` total wire bytes, sent under
    /// protocol `version` (which attributes it to a codec).
    pub fn record_frame_in(&self, version: u8, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        match version {
            PROTOCOL_V1_JSON => self.json.record_in(bytes),
            PROTOCOL_V2_BINARY => self.binary.record_in(bytes),
            _ => {}
        }
    }

    /// Count one written frame of `bytes` total wire bytes under
    /// protocol `version`.
    pub fn record_frame_out(&self, version: u8, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
        match version {
            PROTOCOL_V1_JSON => self.json.record_out(bytes),
            PROTOCOL_V2_BINARY => self.binary.record_out(bytes),
            _ => {}
        }
    }

    /// Count one handled request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one pushed delivery.
    pub fn record_delivery(&self) {
        self.deliveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one delivery lost on the wire path (write failure or
    /// timeout on a backpressured socket, or a full peer-link queue).
    pub fn record_delivery_drop(&self) {
        self.delivery_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one error response or protocol failure.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one event-loop wakeup (an `epoll_wait` return that reported
    /// at least one readiness event or a pending wake signal).
    pub fn record_loop_wakeup(&self) {
        self.loop_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Count read-readiness events handed to the event loop.
    pub fn record_loop_read_events(&self, n: u64) {
        self.loop_read_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Count write-readiness events handed to the event loop.
    pub fn record_loop_write_events(&self, n: u64) {
        self.loop_write_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one coalesced write: a single socket flush that carried more
    /// than one frame.
    pub fn record_write_coalesced(&self) {
        self.writes_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the click store's persistence gauges (WAL size, segment
    /// and snapshot counts, recovery numbers). Unlike the counters above
    /// these are set, not incremented — the persistence layer owns the
    /// running totals.
    pub fn record_persist(&self, persist: &reef_attention::PersistStats) {
        self.wal_bytes.store(persist.wal_bytes, Ordering::Relaxed);
        self.wal_segments.store(persist.segments, Ordering::Relaxed);
        self.wal_snapshots
            .store(persist.snapshots, Ordering::Relaxed);
        self.recovered_clicks
            .store(persist.recovered_clicks, Ordering::Relaxed);
        self.wal_truncated_bytes
            .store(persist.truncated_bytes, Ordering::Relaxed);
    }

    /// Publish the auto-subscription engine's gauges after a refresh
    /// pass. Like [`WireStats::record_persist`] these are set, not
    /// incremented — the engine owns the running totals.
    pub fn record_autosub(&self, gauges: &AutosubGauges) {
        self.autosub_users.store(gauges.users, Ordering::Relaxed);
        self.autosub_active.store(gauges.active, Ordering::Relaxed);
        self.autosub_derived
            .store(gauges.derived, Ordering::Relaxed);
        self.autosub_retired
            .store(gauges.retired, Ordering::Relaxed);
        self.autosub_last_refresh_us
            .store(gauges.last_refresh_us, Ordering::Relaxed);
    }

    /// Publish the broker's matcher snapshot-swap count. A gauge like
    /// the persistence numbers: the broker owns the running total, the
    /// stats paths copy it in when a snapshot is taken.
    pub fn record_matcher_swaps(&self, swaps: u64) {
        self.matcher_swaps.store(swaps, Ordering::Relaxed);
    }

    /// Register one event-loop shard's counter set, so aggregate
    /// snapshots carry the per-shard breakdown.
    pub(crate) fn register_loop(&self, stats: Arc<LoopStats>) {
        self.loops.lock().push(stats);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> WireStatsSnapshot {
        WireStatsSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            delivery_drops: self.delivery_drops.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            loop_read_events: self.loop_read_events.load(Ordering::Relaxed),
            loop_write_events: self.loop_write_events.load(Ordering::Relaxed),
            writes_coalesced: self.writes_coalesced.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_segments: self.wal_segments.load(Ordering::Relaxed),
            wal_snapshots: self.wal_snapshots.load(Ordering::Relaxed),
            recovered_clicks: self.recovered_clicks.load(Ordering::Relaxed),
            wal_truncated_bytes: self.wal_truncated_bytes.load(Ordering::Relaxed),
            autosub_users: self.autosub_users.load(Ordering::Relaxed),
            autosub_active: self.autosub_active.load(Ordering::Relaxed),
            autosub_derived: self.autosub_derived.load(Ordering::Relaxed),
            autosub_retired: self.autosub_retired.load(Ordering::Relaxed),
            autosub_last_refresh_us: self.autosub_last_refresh_us.load(Ordering::Relaxed),
            matcher_swaps: self.matcher_swaps.load(Ordering::Relaxed),
            json: self.json.snapshot(),
            binary: self.binary.snapshot(),
            loops: self.loops.lock().iter().map(|l| l.snapshot()).collect(),
        }
    }
}

/// Counters one event-loop shard owns: its wakeups, readiness events,
/// coalesced writes, and a live-connection gauge. The shard records into
/// these *and* the server aggregate, so totals stay comparable with the
/// single-loop numbers of older builds.
#[derive(Debug, Default)]
pub(crate) struct LoopStats {
    loop_id: u64,
    wakeups: AtomicU64,
    read_events: AtomicU64,
    write_events: AtomicU64,
    writes_coalesced: AtomicU64,
    connections: AtomicU64,
}

impl LoopStats {
    /// A zeroed counter set for shard `loop_id`.
    pub(crate) fn new(loop_id: u64) -> Self {
        LoopStats {
            loop_id,
            ..Default::default()
        }
    }

    /// Count one `epoll_wait` return that reported readiness.
    pub(crate) fn record_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Count read-readiness events this shard handled.
    pub(crate) fn record_read_events(&self, n: u64) {
        self.read_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Count write-readiness events this shard handled.
    pub(crate) fn record_write_events(&self, n: u64) {
        self.write_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one socket flush that carried more than one frame.
    pub(crate) fn record_write_coalesced(&self) {
        self.writes_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection joined this shard.
    pub(crate) fn conn_added(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left this shard (close or migration).
    pub(crate) fn conn_removed(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LoopStatsSnapshot {
        LoopStatsSnapshot {
            loop_id: self.loop_id,
            wakeups: self.wakeups.load(Ordering::Relaxed),
            read_events: self.read_events.load(Ordering::Relaxed),
            write_events: self.write_events.load(Ordering::Relaxed),
            writes_coalesced: self.writes_coalesced.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one event-loop shard's counters
/// ([`WireStatsSnapshot::loops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoopStatsSnapshot {
    /// Which shard (0-based; federation peer links are pinned to 0).
    pub loop_id: u64,
    /// `epoll_wait` returns that reported readiness on this shard.
    pub wakeups: u64,
    /// Read-readiness events this shard handled.
    pub read_events: u64,
    /// Write-readiness events this shard handled.
    pub write_events: u64,
    /// Socket flushes on this shard that carried more than one frame.
    pub writes_coalesced: u64,
    /// Connections currently owned by this shard.
    pub connections: u64,
}

/// Gauge values published by the auto-subscription engine after each
/// refresh pass (see [`WireStats::record_autosub`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutosubGauges {
    /// Users currently enrolled.
    pub users: u64,
    /// Derived filters currently installed as broker subscriptions.
    pub active: u64,
    /// Filters derived and installed since the server started.
    pub derived: u64,
    /// Filters retired (decay or displacement) since the server started.
    pub retired: u64,
    /// Wall-clock duration of the last refresh pass, in microseconds.
    pub last_refresh_us: u64,
}

/// Point-in-time copy of [`WireStats`], also used inside
/// [`crate::protocol::Response::Stats`]. (Not `Copy` since the per-shard
/// breakdown joined: `loops` owns a heap allocation.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WireStatsSnapshot {
    /// Connections accepted since the server started.
    pub connections_opened: u64,
    /// Connections that have finished.
    pub connections_closed: u64,
    /// Frames read off sockets.
    pub frames_in: u64,
    /// Frames written to sockets.
    pub frames_out: u64,
    /// Total bytes read (headers included).
    pub bytes_in: u64,
    /// Total bytes written (headers included).
    pub bytes_out: u64,
    /// Requests handled.
    pub requests: u64,
    /// Deliveries pushed.
    pub deliveries: u64,
    /// Deliveries lost on the wire path (socket write failures/timeouts
    /// and full peer-link queues).
    pub delivery_drops: u64,
    /// Errors returned or suffered.
    pub errors: u64,
    /// Event-loop wakeups (epoll transport only; zero under threads).
    pub loop_wakeups: u64,
    /// Read-readiness events the event loop handled.
    pub loop_read_events: u64,
    /// Write-readiness events the event loop handled.
    pub loop_write_events: u64,
    /// Socket flushes that carried more than one frame (delivery
    /// coalescing on the epoll transport).
    pub writes_coalesced: u64,
    /// Bytes currently held across the click store's live WAL segments
    /// (zero without `--data-dir`).
    pub wal_bytes: u64,
    /// Live WAL segment files of the click store.
    pub wal_segments: u64,
    /// Click-store snapshots written since the daemon started.
    pub wal_snapshots: u64,
    /// Clicks recovered from disk when the daemon started.
    pub recovered_clicks: u64,
    /// Bytes discarded at startup as a torn or corrupt WAL tail.
    pub wal_truncated_bytes: u64,
    /// Users currently enrolled in automatic subscriptions.
    pub autosub_users: u64,
    /// Derived filters currently installed as broker subscriptions.
    pub autosub_active: u64,
    /// Filters the auto-subscription engine installed since start.
    pub autosub_derived: u64,
    /// Filters the auto-subscription engine retired since start.
    pub autosub_retired: u64,
    /// Duration of the engine's last refresh pass, in microseconds.
    pub autosub_last_refresh_us: u64,
    /// Matcher snapshots the broker published (one per subscribe /
    /// unsubscribe / register / deregister batch; the read-mostly index's
    /// swap-on-write counter).
    pub matcher_swaps: u64,
    /// The subset of frame/byte traffic carried by the v1 JSON codec.
    pub json: CodecStatsSnapshot,
    /// The subset of frame/byte traffic carried by the v2 binary codec.
    pub binary: CodecStatsSnapshot,
    /// Per-shard event-loop counters (epoll transport; empty under
    /// threads and on per-connection snapshots).
    pub loops: Vec<LoopStatsSnapshot>,
}

impl std::fmt::Display for WireStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns={}/{} frames={}in/{}out bytes={}in/{}out (json {}in/{}out, binary {}in/{}out) requests={} deliveries={} drops={} errors={} loop={}wake/{}r/{}w/{}coal matcher_swaps={} wal={}B/{}seg/{}snap recovered={}clicks/{}torn-B autosub={}users/{}active/{}+/{}-/{}us",
            self.connections_opened,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.json.bytes_in,
            self.json.bytes_out,
            self.binary.bytes_in,
            self.binary.bytes_out,
            self.requests,
            self.deliveries,
            self.delivery_drops,
            self.errors,
            self.loop_wakeups,
            self.loop_read_events,
            self.loop_write_events,
            self.writes_coalesced,
            self.matcher_swaps,
            self.wal_bytes,
            self.wal_segments,
            self.wal_snapshots,
            self.recovered_clicks,
            self.wal_truncated_bytes,
            self.autosub_users,
            self.autosub_active,
            self.autosub_derived,
            self.autosub_retired,
            self.autosub_last_refresh_us,
        )?;
        if !self.loops.is_empty() {
            f.write_str(" shards=[")?;
            for (i, shard) in self.loops.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                write!(
                    f,
                    "{}:{}conns/{}wake/{}r/{}w/{}coal",
                    shard.loop_id,
                    shard.connections,
                    shard.wakeups,
                    shard.read_events,
                    shard.write_events,
                    shard.writes_coalesced,
                )?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// Per-connection stats snapshot, labelled with who the connection is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionStatsSnapshot {
    /// Peer address as reported by the OS.
    pub peer: String,
    /// Client name from the `Hello` request, if one was sent.
    pub client: String,
    /// Codec the connection negotiated (`json`, `binary`, or `-` before
    /// the first frame).
    pub codec: String,
    /// Broker subscriber id backing this connection.
    pub subscriber: u64,
    /// Which event-loop shard owns the socket; `None` on the threaded
    /// transport (no shards there).
    pub loop_id: Option<u32>,
    /// The connection's transport counters.
    pub wire: WireStatsSnapshot,
}

/// Point-in-time view of a broker's federation state: peer links and the
/// sans-io routing core's table sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FederationStatsSnapshot {
    /// This broker's federation-wide id (namespaces its subscription ids).
    pub broker_id: u32,
    /// Live peer links.
    pub peers: u64,
    /// Routing-table entries in the sans-io core (local wire
    /// subscriptions plus covering-pruned peer advertisements).
    pub routing_entries: u64,
    /// Advertisements currently held toward peers.
    pub advertisements: u64,
    /// Subscription advertisements sent to peers.
    pub subs_forwarded: u64,
    /// Local subscriptions merged into an existing identical
    /// advertisement instead of being forwarded again (count-based
    /// duplicate aggregation).
    pub subs_aggregated: u64,
    /// Events forwarded to peers.
    pub events_forwarded: u64,
    /// Events received from peers.
    pub events_received: u64,
    /// Events lost because a peer link's bounded queue was full.
    pub events_dropped: u64,
    /// Failover routes held beyond each subscription's fast path
    /// (mesh routing; 0 on tree federations).
    pub mesh_alternates: u64,
    /// Times a dead fast path was replaced by a surviving alternate
    /// (mesh routing; 0 on tree federations).
    pub mesh_reroutes: u64,
    /// Duplicate event copies dropped by the mesh seen-cache
    /// (mesh routing; 0 on tree federations).
    pub mesh_duplicates_suppressed: u64,
    /// Peer-link frame/byte traffic carried by the v1 JSON codec.
    pub json: CodecStatsSnapshot,
    /// Peer-link frame/byte traffic carried by the v2 binary codec.
    pub binary: CodecStatsSnapshot,
}

impl std::fmt::Display for FederationStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peers={} routing={} ads={} subs_fwd={} subs_agg={} events={}out/{}in drops={} alts={} reroutes={} dups={} json[{}] binary[{}]",
            self.peers,
            self.routing_entries,
            self.advertisements,
            self.subs_forwarded,
            self.subs_aggregated,
            self.events_forwarded,
            self.events_received,
            self.events_dropped,
            self.mesh_alternates,
            self.mesh_reroutes,
            self.mesh_duplicates_suppressed,
            self.json,
            self.binary,
        )
    }
}

/// Per-peer-link stats snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerStatsSnapshot {
    /// The remote broker's announced name.
    pub broker: String,
    /// Peer address as reported by the OS.
    pub addr: String,
    /// Local link id of this peer in the routing core.
    pub link: u32,
    /// Codec the link negotiated at handshake.
    pub codec: String,
    /// The link's transport counters.
    pub wire: WireStatsSnapshot,
}
