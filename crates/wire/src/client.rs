//! `Client`: a pipelined socket client for a [`crate::BrokerServer`].
//!
//! The client spawns one reader thread that demultiplexes the server's
//! stream by **correlation id**: every request goes out tagged with a
//! client-assigned id, and the matching reply — whenever it arrives,
//! whatever else is in flight — resolves that request's pending slot.
//! Deliveries flow into their own queue. Requests therefore never block
//! each other: any number can be on the wire at once, from any number of
//! threads sharing the `Client` behind an `Arc`.
//!
//! The familiar methods ([`Client::subscribe`], [`Client::publish`], …)
//! keep their blocking send-and-wait surface. The pipelined core shows
//! through in [`Client::publish_nowait`], which returns a
//! [`PendingPublish`] handle immediately — batch publishers fire a
//! window of requests and collect the outcomes afterwards.
//!
//! # Codecs
//!
//! A client speaks one [`CodecKind`] for the connection's lifetime,
//! chosen before connecting ([`ClientBuilder::codec`]; the default is
//! the compact v2 binary codec). On a v1 JSON connection correlation
//! ids do not exist on the wire and replies pair with requests by order
//! — the demux falls back to FIFO, which is sound because the server
//! answers in order.

use crate::codec::{CodecKind, WireCodec};
use crate::error::WireError;
use crate::frame::{Frame, PROTOCOL_V1_JSON};
use crate::protocol::{
    AutoSubPolicy, AutoSubReceipt, ClientFrame, Deliver, FeedChange, Request, Response, ServerFrame,
};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use reef_attention::{ClickBatch, UploadReceipt};
use reef_pubsub::{BrokerStatsSnapshot, Event, EventId, Filter, PublishedEvent, SubscriptionId};
use reef_simweb::UserId;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::stats::{FederationStatsSnapshot, WireStatsSnapshot};

/// How long blocking request methods wait for their reply before giving
/// up.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Outcome of a [`Client::publish`], mirroring the broker's
/// `PublishOutcome` across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePublishOutcome {
    /// Id the broker assigned to the event.
    pub id: EventId,
    /// Copies placed on subscriber queues.
    pub delivered: u64,
    /// Copies dropped to queue overflow.
    pub dropped: u64,
}

/// Combined server statistics returned by [`Client::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Broker operation counters.
    pub broker: BrokerStatsSnapshot,
    /// Transport counters (with per-codec frame/byte breakdown).
    pub wire: WireStatsSnapshot,
    /// Federation routing and peer-link counters.
    pub federation: FederationStatsSnapshot,
}

/// Requests that have been written to the socket but not yet answered.
/// Order is wire order, which is what v1 FIFO pairing relies on.
type PendingQueue = Mutex<VecDeque<(u64, Sender<Response>)>>;

/// Configures and connects a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    name: String,
    codec: CodecKind,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            name: "reef-wire-client".to_owned(),
            codec: CodecKind::default(),
        }
    }
}

impl ClientBuilder {
    /// Client name shown in server-side diagnostics.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Codec (and thereby protocol version) to speak. Defaults to
    /// [`CodecKind::Binary`] (v2); pick [`CodecKind::Json`] to talk like
    /// a v1 client.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Connect and perform the `Hello` handshake under the chosen codec.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the server is unreachable, or a protocol /
    /// version error when the handshake fails.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        Client::handshake(addr, &self.name, self.codec)
    }
}

/// A pipelined reef-wire client connection.
pub struct Client {
    codec: &'static dyn WireCodec,
    writer: Mutex<TcpStream>,
    pending: Arc<PendingQueue>,
    next_corr: AtomicU64,
    deliveries: Receiver<Deliver>,
    feed_changes: Receiver<FeedChange>,
    reader: Option<JoinHandle<()>>,
    subscriber: u64,
    server_name: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("subscriber", &self.subscriber)
            .field("server", &self.server_name)
            .field("codec", &self.codec.kind().name())
            .field("in_flight", &self.pending.lock().len())
            .finish()
    }
}

impl Client {
    /// Connect to a server with the default codec and perform the
    /// `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        Client::builder().connect(addr)
    }

    /// Connect with an explicit client name (shows up in server
    /// diagnostics).
    pub fn connect_as(addr: impl ToSocketAddrs, name: &str) -> Result<Client, WireError> {
        Client::builder().name(name).connect(addr)
    }

    /// Start configuring a client (name, codec).
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        name: &str,
        kind: CodecKind,
    ) -> Result<Client, WireError> {
        let codec = kind.codec();
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let pending: Arc<PendingQueue> = Arc::new(Mutex::new(VecDeque::new()));
        let (deliver_tx, deliveries) = channel::unbounded();
        let (feed_tx, feed_changes) = channel::unbounded();
        let reader_pending = Arc::clone(&pending);
        let reader = std::thread::Builder::new()
            .name("reef-wire-client-reader".into())
            .spawn(move || reader_loop(read_half, codec, reader_pending, deliver_tx, feed_tx))
            .expect("spawn client reader thread");

        let mut client = Client {
            codec,
            writer: Mutex::new(stream),
            pending,
            next_corr: AtomicU64::new(1),
            deliveries,
            feed_changes,
            reader: Some(reader),
            subscriber: 0,
            server_name: String::new(),
        };
        let hello = client
            .send_request(Request::Hello {
                version: codec.version(),
                client: name.to_owned(),
            })?
            .wait(REPLY_TIMEOUT)?;
        match hello {
            Response::Hello {
                version,
                server,
                subscriber,
            } => {
                if version != codec.version() {
                    return Err(WireError::VersionMismatch {
                        ours: codec.version(),
                        theirs: version,
                    });
                }
                client.subscriber = subscriber;
                client.server_name = server;
                Ok(client)
            }
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!(
                "unexpected Hello reply: {other:?}"
            ))),
        }
    }

    /// The subscriber id the server assigned to this connection.
    pub fn subscriber(&self) -> u64 {
        self.subscriber
    }

    /// The server's announced name.
    pub fn server_name(&self) -> &str {
        &self.server_name
    }

    /// The codec this connection negotiated.
    pub fn codec(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Number of requests written but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }

    /// Write one request to the socket and register its reply slot; the
    /// returned handle resolves when the reader thread sees the matching
    /// reply. Does not wait.
    fn send_request(&self, request: Request) -> Result<PendingReply, WireError> {
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        let frame = self.codec.encode_client(&ClientFrame { corr, request })?;
        let mut writer = self.writer.lock();
        // Register under the writer lock: queue order must equal wire
        // order, or v1's FIFO reply pairing would mismatch.
        self.pending.lock().push_back((corr, tx));
        if let Err(e) = frame.write_to(&mut *writer) {
            self.pending.lock().retain(|(c, _)| *c != corr);
            return Err(e);
        }
        Ok(PendingReply { rx })
    }

    /// Send one request and wait for its reply.
    fn request(&self, request: Request) -> Result<Response, WireError> {
        self.send_request(request)?.wait(REPLY_TIMEOUT)
    }

    /// Place a subscription; matching events start flowing to
    /// [`Client::recv_delivery`] / [`Client::deliveries`].
    pub fn subscribe(&self, filter: Filter) -> Result<SubscriptionId, WireError> {
        match self.request(Request::Subscribe { filter })? {
            Response::Subscribed { subscription } => Ok(subscription),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Remove a subscription previously placed on this connection;
    /// returns its filter.
    pub fn unsubscribe(&self, subscription: SubscriptionId) -> Result<Filter, WireError> {
        match self.request(Request::Unsubscribe { subscription })? {
            Response::Unsubscribed { filter } => Ok(filter),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Publish an event through the server's broker and wait for the
    /// outcome.
    pub fn publish(&self, event: Event) -> Result<RemotePublishOutcome, WireError> {
        self.publish_nowait(event)?.wait()
    }

    /// Publish without waiting: the request is on the wire when this
    /// returns, and the broker's outcome can be collected later from the
    /// returned handle (or dropped if the caller doesn't care).
    ///
    /// This is the batch-friendly path: fire a window of publishes back
    /// to back, then harvest the outcomes — the socket round-trip is
    /// paid once per window instead of once per event.
    pub fn publish_nowait(&self, event: Event) -> Result<PendingPublish, WireError> {
        Ok(PendingPublish {
            reply: self.send_request(Request::Publish { event })?,
        })
    }

    /// Upload a batch of attention data to the server's click store.
    pub fn upload_clicks(&self, batch: ClickBatch) -> Result<UploadReceipt, WireError> {
        match self.request(Request::UploadClicks { batch })? {
            Response::ClicksAccepted { receipt } => Ok(receipt),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Enroll `user` in the server-side automatic-subscription engine:
    /// the daemon mines the user's uploaded clicks with its recommenders
    /// and installs the derived filters as subscriptions owned by *this
    /// connection* — matching events arrive at [`Client::recv_delivery`]
    /// without any manual [`Client::subscribe`]. Pass `None` to accept
    /// the daemon's default policy. The receipt lists what the engine
    /// derives right now; later installs/retires arrive as unsolicited
    /// notices on [`Client::recv_feed_change`].
    pub fn auto_subscribe(
        &self,
        user: UserId,
        policy: Option<AutoSubPolicy>,
    ) -> Result<AutoSubReceipt, WireError> {
        match self.request(Request::AutoSubscribe { user, policy })? {
            Response::AutoSubscribed { receipt } => Ok(receipt),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Withdraw `user` from the automatic-subscription engine; every
    /// filter it had installed for the user is retired from the broker.
    /// The receipt lists what was just retired (empty if the user was
    /// not enrolled).
    pub fn auto_unsubscribe(&self, user: UserId) -> Result<AutoSubReceipt, WireError> {
        match self.request(Request::AutoUnsubscribe { user })? {
            Response::AutoUnsubscribed { receipt } => Ok(receipt),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Next autosub `FeedChanged` notice if one is already queued
    /// locally.
    pub fn try_feed_change(&self) -> Option<FeedChange> {
        self.feed_changes.try_recv().ok()
    }

    /// Wait up to `timeout` for the next autosub `FeedChanged` notice
    /// (only ever sent after [`Client::auto_subscribe`]).
    pub fn recv_feed_change(&self, timeout: Duration) -> Option<FeedChange> {
        self.feed_changes.recv_timeout(timeout).ok()
    }

    /// Fetch broker, transport and federation statistics from the server.
    pub fn stats(&self) -> Result<ServerStats, WireError> {
        match self.request(Request::Stats)? {
            Response::Stats {
                broker,
                wire,
                federation,
            } => Ok(ServerStats {
                broker,
                wire,
                federation,
            }),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), WireError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Next delivery if one is already queued locally.
    pub fn try_delivery(&self) -> Option<PublishedEvent> {
        self.deliveries.try_recv().ok().map(|d| d.event)
    }

    /// Wait up to `timeout` for the next delivery.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<PublishedEvent> {
        self.deliveries.recv_timeout(timeout).ok().map(|d| d.event)
    }

    /// Blocking iterator over deliveries; ends when the connection closes.
    pub fn deliveries(&self) -> Deliveries<'_> {
        Deliveries { client: self }
    }

    /// Orderly goodbye: tell the server, wait for its `Bye`, close the
    /// socket and join the reader thread.
    pub fn close(mut self) -> Result<(), WireError> {
        let outcome = match self.request(Request::Bye) {
            Ok(Response::Bye) => Ok(()),
            Ok(Response::Error { message }) => Err(WireError::Remote(message)),
            Ok(other) => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(e),
        };
        self.teardown();
        outcome
    }

    fn teardown(&mut self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// A reply slot for one in-flight request.
#[derive(Debug)]
struct PendingReply {
    rx: Receiver<Response>,
}

impl PendingReply {
    fn wait(self, timeout: Duration) -> Result<Response, WireError> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(channel::RecvTimeoutError::Timeout) => {
                Err(WireError::Protocol(format!("no reply within {timeout:?}")))
            }
            // The reader thread exited and dropped the pending queue.
            Err(channel::RecvTimeoutError::Disconnected) => Err(WireError::Closed),
        }
    }
}

/// Handle for a [`Client::publish_nowait`] still in flight. Dropping it
/// discards the outcome (the publish itself is already on the wire).
#[derive(Debug)]
pub struct PendingPublish {
    reply: PendingReply,
}

impl PendingPublish {
    /// Wait for the broker's outcome for this publish.
    pub fn wait(self) -> Result<RemotePublishOutcome, WireError> {
        match self.reply.wait(REPLY_TIMEOUT)? {
            Response::Published {
                id,
                delivered,
                dropped,
            } => Ok(RemotePublishOutcome {
                id,
                delivered,
                dropped,
            }),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }
}

/// Iterator returned by [`Client::deliveries`].
#[derive(Debug)]
pub struct Deliveries<'a> {
    client: &'a Client,
}

impl Iterator for Deliveries<'_> {
    type Item = PublishedEvent;

    fn next(&mut self) -> Option<PublishedEvent> {
        self.client.deliveries.recv().ok().map(|d| d.event)
    }
}

/// The client's reader thread: demultiplex replies (by correlation id,
/// or FIFO on v1) from deliveries.
fn reader_loop(
    stream: TcpStream,
    codec: &'static dyn WireCodec,
    pending: Arc<PendingQueue>,
    deliveries: Sender<Deliver>,
    feed_changes: Sender<FeedChange>,
) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
        match codec.decode_server(&frame) {
            Ok(ServerFrame::Reply { corr, response }) => {
                let slot = {
                    let mut queue = pending.lock();
                    if codec.version() == PROTOCOL_V1_JSON {
                        // v1 carries no ids; the server replies in
                        // request order.
                        queue.pop_front()
                    } else {
                        queue
                            .iter()
                            .position(|(c, _)| *c == corr)
                            .and_then(|i| queue.remove(i))
                    }
                };
                // An unmatched reply (caller gave up and its slot was
                // dropped) is discarded; a matched one whose receiver is
                // gone fails the send harmlessly.
                if let Some((_, tx)) = slot {
                    let _ = tx.send(response);
                }
            }
            Ok(ServerFrame::Deliver(deliver)) => {
                // A slow consumer only backs up its own local queue.
                if deliveries.send(deliver).is_err() {
                    break;
                }
            }
            Ok(ServerFrame::FeedChanged(change)) => {
                // Unsolicited autosub notices get their own queue so a
                // caller polling deliveries never swallows them.
                let _ = feed_changes.send(change);
            }
            Err(_) => break,
        }
    }
    // Unblock every waiter: dropping the senders turns their waits into
    // `WireError::Closed`.
    pending.lock().clear();
}
