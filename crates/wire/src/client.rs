//! `Client`: a blocking socket client for a [`crate::BrokerServer`].
//!
//! The client spawns one reader thread that splits the server's stream into
//! two queues: replies (matched one-to-one, in order, with requests) and
//! asynchronous deliveries. Request methods are fully synchronous — send
//! one frame, wait for its reply — and a mutex serializes concurrent
//! callers, so a `Client` can be shared behind an `Arc`.

use crate::error::WireError;
use crate::frame::{Frame, PROTOCOL_VERSION};
use crate::protocol::{Deliver, Request, Response, ServerMessage};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use reef_attention::{ClickBatch, UploadReceipt};
use reef_pubsub::{BrokerStatsSnapshot, Event, EventId, Filter, PublishedEvent, SubscriptionId};
use std::io::BufReader;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::stats::{FederationStatsSnapshot, WireStatsSnapshot};

/// How long request methods wait for their reply before giving up.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Outcome of a [`Client::publish`], mirroring the broker's
/// `PublishOutcome` across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePublishOutcome {
    /// Id the broker assigned to the event.
    pub id: EventId,
    /// Copies placed on subscriber queues.
    pub delivered: u64,
    /// Copies dropped to queue overflow.
    pub dropped: u64,
}

/// Combined server statistics returned by [`Client::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Broker operation counters.
    pub broker: BrokerStatsSnapshot,
    /// Transport counters.
    pub wire: WireStatsSnapshot,
    /// Federation routing and peer-link counters.
    pub federation: FederationStatsSnapshot,
}

/// A blocking reef-wire client connection.
pub struct Client {
    /// Held across send + receive so requests/replies stay paired.
    request_lane: Mutex<TcpStream>,
    replies: Receiver<Response>,
    deliveries: Receiver<Deliver>,
    reader: Option<JoinHandle<()>>,
    /// Set after a reply timeout: the pairing between requests and replies
    /// can no longer be trusted, so the connection is dead to us.
    poisoned: std::sync::atomic::AtomicBool,
    subscriber: u64,
    server_name: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("subscriber", &self.subscriber)
            .field("server", &self.server_name)
            .finish()
    }
}

impl Client {
    /// Connect to a server and perform the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        Self::connect_as(addr, "reef-wire-client")
    }

    /// Connect with an explicit client name (shows up in server
    /// diagnostics).
    pub fn connect_as(addr: impl ToSocketAddrs, name: &str) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let (reply_tx, replies) = channel::unbounded();
        let (deliver_tx, deliveries) = channel::unbounded();
        let reader = std::thread::Builder::new()
            .name("reef-wire-client-reader".into())
            .spawn(move || reader_loop(read_half, reply_tx, deliver_tx))
            .expect("spawn client reader thread");

        let mut client = Client {
            request_lane: Mutex::new(stream),
            replies,
            deliveries,
            reader: Some(reader),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            subscriber: 0,
            server_name: String::new(),
        };
        match client.request(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: name.to_owned(),
        })? {
            Response::Hello {
                version,
                server,
                subscriber,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                client.subscriber = subscriber;
                client.server_name = server;
                Ok(client)
            }
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!(
                "unexpected Hello reply: {other:?}"
            ))),
        }
    }

    /// The subscriber id the server assigned to this connection.
    pub fn subscriber(&self) -> u64 {
        self.subscriber
    }

    /// The server's announced name.
    pub fn server_name(&self) -> &str {
        &self.server_name
    }

    /// Send one request and wait for its reply.
    fn request(&self, request: &Request) -> Result<Response, WireError> {
        use std::sync::atomic::Ordering;
        let mut lane = self.request_lane.lock();
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        Frame::encode(request)?.write_to(&mut *lane)?;
        match self.replies.recv_timeout(REPLY_TIMEOUT) {
            Ok(response) => Ok(response),
            Err(e) => {
                // On a timeout the reply may still arrive later; if we kept
                // going, it would be handed to the *next* request and every
                // reply after it would be off by one. Poison the connection
                // instead: close the socket so the reader thread exits.
                self.poisoned.store(true, Ordering::SeqCst);
                let _ = lane.shutdown(Shutdown::Both);
                match e {
                    crossbeam::channel::RecvTimeoutError::Timeout => Err(WireError::Protocol(
                        format!("no reply within {REPLY_TIMEOUT:?}; connection poisoned"),
                    )),
                    crossbeam::channel::RecvTimeoutError::Disconnected => Err(WireError::Closed),
                }
            }
        }
    }

    /// Place a subscription; matching events start flowing to
    /// [`Client::recv_delivery`] / [`Client::deliveries`].
    pub fn subscribe(&self, filter: Filter) -> Result<SubscriptionId, WireError> {
        match self.request(&Request::Subscribe { filter })? {
            Response::Subscribed { subscription } => Ok(subscription),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Remove a subscription previously placed on this connection;
    /// returns its filter.
    pub fn unsubscribe(&self, subscription: SubscriptionId) -> Result<Filter, WireError> {
        match self.request(&Request::Unsubscribe { subscription })? {
            Response::Unsubscribed { filter } => Ok(filter),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Publish an event through the server's broker.
    pub fn publish(&self, event: Event) -> Result<RemotePublishOutcome, WireError> {
        match self.request(&Request::Publish { event })? {
            Response::Published {
                id,
                delivered,
                dropped,
            } => Ok(RemotePublishOutcome {
                id,
                delivered,
                dropped,
            }),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Upload a batch of attention data to the server's click store.
    pub fn upload_clicks(&self, batch: ClickBatch) -> Result<UploadReceipt, WireError> {
        match self.request(&Request::UploadClicks { batch })? {
            Response::ClicksAccepted { receipt } => Ok(receipt),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetch broker, transport and federation statistics from the server.
    pub fn stats(&self) -> Result<ServerStats, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats {
                broker,
                wire,
                federation,
            } => Ok(ServerStats {
                broker,
                wire,
                federation,
            }),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { message } => Err(WireError::Remote(message)),
            other => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Next delivery if one is already queued locally.
    pub fn try_delivery(&self) -> Option<PublishedEvent> {
        self.deliveries.try_recv().ok().map(|d| d.event)
    }

    /// Wait up to `timeout` for the next delivery.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<PublishedEvent> {
        self.deliveries.recv_timeout(timeout).ok().map(|d| d.event)
    }

    /// Blocking iterator over deliveries; ends when the connection closes.
    pub fn deliveries(&self) -> Deliveries<'_> {
        Deliveries { client: self }
    }

    /// Orderly goodbye: tell the server, wait for its `Bye`, close the
    /// socket and join the reader thread.
    pub fn close(mut self) -> Result<(), WireError> {
        let outcome = match self.request(&Request::Bye) {
            Ok(Response::Bye) => Ok(()),
            Ok(Response::Error { message }) => Err(WireError::Remote(message)),
            Ok(other) => Err(WireError::Protocol(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(e),
        };
        self.teardown();
        outcome
    }

    fn teardown(&mut self) {
        let _ = self.request_lane.lock().shutdown(Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Iterator returned by [`Client::deliveries`].
#[derive(Debug)]
pub struct Deliveries<'a> {
    client: &'a Client,
}

impl Iterator for Deliveries<'_> {
    type Item = PublishedEvent;

    fn next(&mut self) -> Option<PublishedEvent> {
        self.client.deliveries.recv().ok().map(|d| d.event)
    }
}

/// The client's reader thread: demultiplex replies from deliveries.
fn reader_loop(stream: TcpStream, replies: Sender<Response>, deliveries: Sender<Deliver>) {
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        match frame.decode::<ServerMessage>() {
            Ok(ServerMessage::Reply(response)) => {
                if replies.send(response).is_err() {
                    return;
                }
            }
            Ok(ServerMessage::Deliver(deliver)) => {
                // A slow consumer only backs up its own local queue.
                if deliveries.send(deliver).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
